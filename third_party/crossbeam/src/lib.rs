//! Offline shim for the `crossbeam` crate: just `crossbeam::thread::scope`,
//! backed by `std::thread::scope` (which has subsumed it since Rust 1.63).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] (the closure argument
    /// crossbeam passes to spawned threads; unused by this workspace, so the
    /// shim passes the scope itself only to the outer closure).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it panicked).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder in
        /// place of crossbeam's nested-scope argument.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns. Always `Ok` (panics in `f`
    /// propagate as panics, matching how this workspace consumes the API).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
