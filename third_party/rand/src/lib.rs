//! Offline shim for the `rand` crate: the subset of its API this workspace
//! uses, backed by xoshiro256++ (seeded via SplitMix64). Streams differ from
//! upstream `rand`'s ChaCha-based `StdRng`, but every use in this workspace
//! treats seeded RNGs as an arbitrary deterministic source, never asserting
//! on specific draws, so the substitution is behavior-preserving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator from OS entropy — the shim derives it from
    /// the current time instead (no OS RNG without the real crate).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types drawable uniformly from their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

/// A range admissible in [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // full domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any raw generator.
pub trait Rng: RngCore {
    /// Uniform draw over the type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core shared by the named generators.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro authors' recommendation
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Shim stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Shim stand-in for rand's `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Legacy re-export spot used by some call sites (`rand::prelude::*`).
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
