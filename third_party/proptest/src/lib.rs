//! Offline shim for the `proptest` crate: the subset of its API this
//! workspace uses. Cases are generated from a deterministic per-test RNG, so
//! runs are reproducible; failing inputs are reported via `Debug` but not
//! shrunk (shrinking is the main upstream feature this shim omits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.gen::<u128>() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.gen::<u128>() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<i128> {
        type Value = i128;

        fn generate(&self, rng: &mut StdRng) -> i128 {
            assert!(self.start < self.end, "strategy over empty range");
            let span = self.end.wrapping_sub(self.start) as u128;
            self.start.wrapping_add((rng.gen::<u128>() % span) as i128)
        }
    }

    impl Strategy for std::ops::Range<u128> {
        type Value = u128;

        fn generate(&self, rng: &mut StdRng) -> u128 {
            assert!(self.start < self.end, "strategy over empty range");
            self.start + rng.gen::<u128>() % (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeFrom<u128> {
        type Value = u128;

        fn generate(&self, rng: &mut StdRng) -> u128 {
            // uniform over start..=MAX; the span start..=MAX only overflows
            // u128 when start is 0, where the full-domain draw is the answer
            if self.start == 0 {
                rng.gen()
            } else {
                self.start + rng.gen::<u128>() % (u128::MAX - self.start + 1)
            }
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Full-domain strategy for types with an obvious uniform draw.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// `any::<T>()` — uniform over the type's whole domain.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Types supporting [`any`].
    pub trait ArbitraryValue {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_via_gen!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

    impl ArbitraryValue for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::sample::Index::new(rng.gen::<u64>())
        }
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    /// A size-agnostic index: resolved against a concrete length at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolves to an index in `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s; the length bound is best-effort (duplicates
    /// are dropped, as upstream does before retrying).
    pub struct HashSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::hash_set(element, len_range)`.
    pub fn hash_set<S>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case plumbing used by the macros.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Runs `cases` deterministic random cases of a property. Used by the
/// [`proptest!`] macro; callable directly when a closure is more convenient.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut case: impl FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    // deterministic per-test seed: FNV-1a over the test name
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    for i in 0..cases {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' case {i}/{cases} failed: {e}");
        }
    }
}

/// The `proptest!` block macro: wraps each contained function into a `#[test]`
/// that draws its arguments from the given strategies for N cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng; $($args)*);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Internal argument binder for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat_param in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $($crate::__proptest_bind!($rng; $($rest)*);)?
    };
}

/// `prop_assert!`: like `assert!` but surfaces the failure through the
/// proptest harness (non-unwinding return).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!`: equality assertion through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!`: inequality assertion through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

pub mod prop {
    //! The `prop::` path exposed by the prelude.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..10, y in -4i64..=4, (a, b) in (0u32..5, 1u64..9)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(a < 5 && (1..9).contains(&b));
        }

        #[test]
        fn collections_and_maps(
            v in crate::collection::vec(0u8..4, 1..6),
            s in crate::collection::hash_set(0usize..100, 0..10),
            neg in (1u32..5).prop_map(|n| -(n as i64)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(s.len() < 10);
            prop_assert!(neg < 0);
        }

        #[test]
        fn any_and_index(b in any::<bool>(), ix in any::<prop::sample::Index>()) {
            let _ = b;
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'inner' case")]
    fn failures_panic_with_context() {
        crate::run_cases("inner", 4, |_rng| {
            prop_assert!(false, "boom");
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
