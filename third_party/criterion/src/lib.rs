//! Offline shim for the `criterion` crate: the subset of its API the bench
//! suite uses. Each benchmark is timed with `Instant` over a fixed number of
//! warm-up + measured iterations and reported as plain text — no statistics,
//! plots, or saved baselines, but the same code compiles and produces
//! comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, printing mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: one call, also primes lazy state
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// A named set of benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's time budget is implied by
    /// the sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:.0} ns/iter", self.name, id.id, b.last_ns);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:.0} ns/iter",
            self.name,
            id.into_bench_id(),
            b.last_ns
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchId {
    /// The display id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Accepted for API compatibility (the shim has no CLI parsing).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last_ns: 0.0,
        };
        f(&mut b);
        println!("bench {name}: {:.0} ns/iter", b.last_ns);
        self
    }
}

/// Declares a benchmark group function set, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
