//! Offline shim for the `rayon` crate: the subset of its API this workspace
//! uses, backed by `std::thread::scope`. Parallelism is real (one OS thread
//! per chunk of work), only the work-stealing scheduler is missing, so
//! callers should parallelize over coarse chunks rather than single items —
//! which is exactly how the sweep engine and the naive enumeration use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel iterator will fan out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

pub mod iter {
    //! Parallel iterators over indexable sources.

    use super::current_num_threads;

    /// Types convertible into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type produced by the iterator.
        type Item: Send;
        /// Concrete parallel iterator type.
        type Iter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A materialized parallel iterator (items are split into per-thread
    /// contiguous chunks at the terminal operation).
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A parallel iterator with a map stage applied.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        /// Applies `f` to every item.
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item for its side effects.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            self.map(f).reduce(|| (), |(), ()| ());
        }
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Reduces the mapped items with `op`, seeding every thread-local
        /// accumulator with `identity`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
        where
            ID: Fn() -> R + Sync,
            OP: Fn(R, R) -> R + Sync,
        {
            let ParMap { mut items, f } = self;
            let threads = current_num_threads().max(1);
            if threads == 1 || items.len() <= 1 {
                return items.drain(..).fold(identity(), |acc, x| op(acc, f(x)));
            }
            let chunk = items.len().div_ceil(threads);
            let mut chunks: Vec<Vec<T>> = Vec::new();
            while !items.is_empty() {
                let rest = items.split_off(items.len().min(chunk));
                chunks.push(std::mem::replace(&mut items, rest));
            }
            let f = &f;
            let identity = &identity;
            let op = &op;
            let partials: Vec<R> = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| {
                        s.spawn(move || c.into_iter().fold(identity(), |acc, x| op(acc, f(x))))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });
            partials.into_iter().fold(identity(), &op)
        }

        /// Collects the mapped items, preserving input order.
        pub fn collect_vec(self) -> Vec<R> {
            let ParMap { items, f } = self;
            let threads = current_num_threads().max(1);
            if threads == 1 || items.len() <= 1 {
                return items.into_iter().map(f).collect();
            }
            let chunk = items.len().div_ceil(threads);
            let mut rest = items;
            let mut chunks: Vec<Vec<T>> = Vec::new();
            while !rest.is_empty() {
                let tail = rest.split_off(rest.len().min(chunk));
                chunks.push(std::mem::replace(&mut rest, tail));
            }
            let f = &f;
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            })
        }
    }

    macro_rules! range_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = ParIter<$t>;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    range_into_par!(u32, u64, usize, i32, i64);

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_serial() {
        let par: u64 = (0u64..1000)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        let ser: u64 = (0u64..1000).map(|x| x * x).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn collect_preserves_order() {
        let v = (0u32..100).into_par_iter().map(|x| x * 2).collect_vec();
        assert_eq!(v, (0u32..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
