//! Offline shim for the `serde` crate. The workspace only references serde
//! behind netgraph's default-off `serde` feature; this placeholder lets the
//! dependency graph resolve without a registry. Enabling that feature
//! requires restoring the real crate (the derive macros are not shimmed).

#![forbid(unsafe_code)]
