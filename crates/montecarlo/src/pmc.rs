//! Permutation Monte Carlo ("turnip") for the rare-event regime.
//!
//! Crude sampling of a system with unreliability `Q → 0` needs `~1/Q` samples
//! before it sees a single failure; its relative error diverges exactly where
//! reliable-system design cares most. Permutation Monte Carlo (Elperin–
//! Gertsbakh–Lomonosov; the "turnip" refinement per Botev–L'Ecuyer) removes
//! the rarity from the randomness: give link `e` an exponential *repair
//! clock* with rate `λ_e = −ln p_e`, so that at `t = 1` the link is up with
//! probability `1 − p_e`, exactly its availability. Sample only the repair
//! *order* π, find the critical number `b(π)` of repairs after which the
//! demand becomes feasible, and compute **exactly** the conditional
//! probability that the `b`-th repair happens after `t = 1`:
//!
//! ```text
//! X(π) = P(S_b > 1),   S_b = Exp(Λ_1) + … + Exp(Λ_b),
//! Λ_1 = Σ_e λ_e,  Λ_{i+1} = Λ_i − λ_{π(i)}
//! ```
//!
//! a hypoexponential tail, evaluated here by uniformization (all-nonnegative
//! arithmetic — no cancellation, unlike the textbook alternating-sum form).
//! `E[X] = Q` with variance bounded by `E[X²] ≤ E[X]·max X`, typically orders
//! of magnitude below crude sampling's `Q(1−Q)` because every sample yields a
//! smooth value instead of a 0/1 indicator.
//!
//! The critical number is found with `b` *incremental* max-flow calls per
//! sample: links are revived one at a time into the residual network
//! ([`maxflow::NetworkFlow::revive_edge`]) and only the *additional* flow is
//! augmented, reusing the routed flow and the solver workspace.

use maxflow::{build_flow, NetworkFlow, SolverKind, Workspace};
use netgraph::{EdgeMask, Network, NodeId, StateExpansion};
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::McError;
use crate::{check_edges, expand_multistate};

/// Validated sampling plan for the permutation estimator.
#[derive(Clone, Debug)]
pub(crate) struct PermPlan {
    /// Network link count.
    pub m: usize,
    /// Alive-bits of links with `p == 0` (never fail, alive in every sample).
    pub always_alive_bits: u64,
    /// `(link index, repair rate λ = −ln p)` for links with `0 < p < 1`.
    pub rates: Vec<(usize, f64)>,
    /// `Σ λ` over all random links.
    pub lambda_total: f64,
    /// Demand feasible with only the never-failing links: `R = 1` exactly.
    pub trivially_up: bool,
    /// Demand infeasible even with every non-`p==1` link alive: `R = 0`.
    pub never_up: bool,
    /// Flow evaluations spent on classification.
    pub classify_evals: u64,
}

impl PermPlan {
    /// Builds the plan and classifies the two trivial extremes (at most two
    /// flow evaluations).
    pub fn build(
        net: &Network,
        s: NodeId,
        t: NodeId,
        demand: u64,
        solver: SolverKind,
    ) -> Result<PermPlan, McError> {
        let m = check_edges(net)?;
        let mut always_alive_bits = 0u64;
        let mut possible_bits = 0u64;
        let mut rates = Vec::new();
        let mut lambda_total = 0.0f64;
        for (i, e) in net.edges().iter().enumerate() {
            let p = e.fail_prob;
            if p <= 0.0 {
                always_alive_bits |= 1 << i;
                possible_bits |= 1 << i;
            } else if p < 1.0 {
                let lam = -p.ln();
                rates.push((i, lam));
                lambda_total += lam;
                possible_bits |= 1 << i;
            }
            // p == 1.0: the link is never up; it stays disabled in every sample
        }
        let mut nf = build_flow(net, s, t);
        let mut ws = Workspace::new();
        let mut classify_evals = 0u64;
        let mut admits = |bits: u64, evals: &mut u64| -> bool {
            if demand == 0 {
                return true;
            }
            *evals += 1;
            nf.apply_mask(EdgeMask::from_bits(bits, m));
            solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
        };
        let trivially_up = admits(always_alive_bits, &mut classify_evals);
        let never_up = !trivially_up && !admits(possible_bits, &mut classify_evals);
        Ok(PermPlan {
            m,
            always_alive_bits,
            rates,
            lambda_total,
            trivially_up,
            never_up,
            classify_evals,
        })
    }

    /// Draws one permutation sample: returns the conditional unreliability
    /// `X(π) ∈ [0, 1]`. `evals` accrues the (incremental) flow evaluations.
    ///
    /// Only meaningful when neither [`PermPlan::trivially_up`] nor
    /// [`PermPlan::never_up`] holds; both are resolved exactly by the engine
    /// before any sampling.
    pub fn sample_one(
        &self,
        demand: u64,
        solver: SolverKind,
        nf: &mut NetworkFlow,
        ws: &mut Workspace,
        rng: &mut StdRng,
        evals: &mut u64,
    ) -> f64 {
        // repair times: Exp(λ) via inverse transform; ties broken by index
        // so the permutation is a deterministic function of the draws
        let mut order: Vec<(f64, usize)> = self
            .rates
            .iter()
            .enumerate()
            .map(|(pos, &(_, lam))| {
                let u: f64 = rng.gen();
                (-(1.0 - u).ln() / lam, pos)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // walk the permutation, reviving links until the demand is feasible;
        // each step augments only the missing flow on the warm residual graph
        nf.apply_mask(EdgeMask::from_bits(self.always_alive_bits, self.m));
        let mut got = if demand == 0 {
            return 0.0;
        } else {
            *evals += 1;
            solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, ws)
        };
        let mut chain: Vec<f64> = Vec::with_capacity(order.len());
        let mut lam_left = self.lambda_total;
        for &(_, pos) in &order {
            let (edge, lam) = self.rates[pos];
            chain.push(lam_left.max(f64::MIN_POSITIVE));
            lam_left -= lam;
            nf.revive_edge(edge);
            *evals += 1;
            got += solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand - got, ws);
            if got >= demand {
                return hypoexp_tail(&chain);
            }
        }
        // unreachable when `never_up` was ruled out; stay honest regardless
        1.0
    }
}

/// One independent repair clock of the multi-state permutation process: the
/// *gate* guarding one capacity tranche of one enumeration digit.
#[derive(Clone, Debug)]
struct Gate {
    /// Digit index in the expansion (one digit per fallible link).
    digit: usize,
    /// Tranche position within the digit, 0-based.
    tranche: usize,
    /// Repair rate `λ = −ln(p_i / S_i)`, so the gate is open at `t = 1`
    /// with probability `q_i = S_{i+1}/S_i` (conditional survival).
    lambda: f64,
}

/// The permutation estimator generalized to multi-state links: Botev's
/// capacity-ordered construction process over the tranche expansion.
///
/// Each tranche of a k-state link gets an independent exponential repair
/// clock whose rate is chosen so that the *prefix* of repaired tranches has
/// exactly the spectrum's marginals at `t = 1`: gate `i` opens by time 1
/// with probability `q_i = S_{i+1}/S_i` (`S_i` the spectrum's survival
/// `P(capacity ≥ c_i)`), so `P(tranches 1..=i all open) = S_i`. A link's
/// effective capacity at time `t` is `c_d` for the longest contiguous
/// prefix `d` of open gates — a fired gate above a still-closed one stays
/// *pending* and contributes no capacity until the gap closes. Feasibility
/// is monotone in the set of fired clocks, so the usual permutation
/// argument goes through unchanged: sample only the firing order, find the
/// critical count `b`, and evaluate the hypoexponential tail exactly.
/// Binary links degenerate to single-gate digits with the classic
/// `λ = −ln p`, but all-binary networks take [`PermPlan`] bit-for-bit.
#[derive(Clone, Debug)]
pub(crate) struct MultiPermPlan {
    /// The tranche expansion sampling operates on (flow graphs are built
    /// over `x.net`, never the original network).
    pub x: StateExpansion,
    /// Expanded arc count.
    m: usize,
    /// Arcs alive in every sample: pinned base arcs and perfect links.
    always_alive_bits: u64,
    /// One gate per tranche of every digit.
    gates: Vec<Gate>,
    /// `Σ λ` over all gates.
    lambda_total: f64,
    /// Demand feasible with only the pinned arcs: `R = 1` exactly.
    pub trivially_up: bool,
    /// Demand infeasible with every gate open: `R = 0` exactly.
    pub never_up: bool,
    /// Flow evaluations spent on classification.
    pub classify_evals: u64,
}

impl MultiPermPlan {
    /// Builds the plan over the tranche expansion and classifies the two
    /// trivial extremes (at most two flow evaluations).
    pub fn build(
        net: &Network,
        s: NodeId,
        t: NodeId,
        demand: u64,
        solver: SolverKind,
    ) -> Result<MultiPermPlan, McError> {
        let x = expand_multistate(net)?;
        let m = check_edges(&x.net)?;
        let mut gates = Vec::new();
        let mut lambda_total = 0.0f64;
        let mut possible_bits = x.pinned;
        for (d_idx, d) in x.digits.iter().enumerate() {
            // survival S_i = P(state ≥ i), computed as a running suffix sum;
            // validated spectra have every state probability in (0, 1), so
            // each conditional failure p_i/S_i stays in (0, 1) up to float
            // dust, which the clamp absorbs without changing valid inputs
            let mut survival = 1.0f64;
            for (ti, &p) in d.probs.iter().take(d.radix - 1).enumerate() {
                let fail = (p / survival).clamp(f64::MIN_POSITIVE, 1.0);
                let lambda = -fail.ln();
                gates.push(Gate {
                    digit: d_idx,
                    tranche: ti,
                    lambda,
                });
                lambda_total += lambda;
                possible_bits |= 1u64 << d.tranche_arcs[ti];
                survival -= p;
            }
        }
        let mut nf = build_flow(&x.net, s, t);
        let mut ws = Workspace::new();
        let mut classify_evals = 0u64;
        let mut admits = |bits: u64, evals: &mut u64| -> bool {
            if demand == 0 {
                return true;
            }
            *evals += 1;
            nf.apply_mask(EdgeMask::from_bits(bits, m));
            solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
        };
        let trivially_up = admits(x.pinned, &mut classify_evals);
        let never_up = !trivially_up && !admits(possible_bits, &mut classify_evals);
        let always_alive_bits = x.pinned;
        Ok(MultiPermPlan {
            x,
            m,
            always_alive_bits,
            gates,
            lambda_total,
            trivially_up,
            never_up,
            classify_evals,
        })
    }

    /// Draws one permutation sample of the construction process: returns the
    /// conditional unreliability `X(π) ∈ [0, 1]`. `nf` must be built over
    /// the expansion network [`MultiPermPlan::x`].
    pub fn sample_one(
        &self,
        demand: u64,
        solver: SolverKind,
        nf: &mut NetworkFlow,
        ws: &mut Workspace,
        rng: &mut StdRng,
        evals: &mut u64,
    ) -> f64 {
        let mut order: Vec<(f64, usize)> = self
            .gates
            .iter()
            .enumerate()
            .map(|(pos, g)| {
                let u: f64 = rng.gen();
                (-(1.0 - u).ln() / g.lambda, pos)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        nf.apply_mask(EdgeMask::from_bits(self.always_alive_bits, self.m));
        let mut got = if demand == 0 {
            return 0.0;
        } else {
            *evals += 1;
            solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, ws)
        };
        // per-digit construction state: the contiguous open prefix length,
        // and the set of fired (possibly pending) gates
        let mut up = vec![0usize; self.x.digits.len()];
        let mut fired = vec![0u64; self.x.digits.len()];
        let mut chain: Vec<f64> = Vec::with_capacity(order.len());
        let mut lam_left = self.lambda_total;
        for &(_, pos) in &order {
            let g = &self.gates[pos];
            // the rate chain records every firing, pending or not: the b-th
            // event time is hypoexponential in the full superposition
            chain.push(lam_left.max(f64::MIN_POSITIVE));
            lam_left -= g.lambda;
            fired[g.digit] |= 1u64 << g.tranche;
            let d = &self.x.digits[g.digit];
            let mut revived = false;
            while up[g.digit] < d.radix - 1 && (fired[g.digit] >> up[g.digit]) & 1 == 1 {
                nf.revive_edge(d.tranche_arcs[up[g.digit]]);
                up[g.digit] += 1;
                revived = true;
            }
            if revived {
                *evals += 1;
                got += solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand - got, ws);
                if got >= demand {
                    return hypoexp_tail(&chain);
                }
            }
        }
        // unreachable when `never_up` was ruled out; stay honest regardless
        1.0
    }
}

/// `P(Exp(r_1) + … + Exp(r_b) > 1)` for a decreasing rate chain, by
/// uniformization.
///
/// The sum is a phase-type sojourn: a chain of `b` transient stages, stage
/// `i` leaving at rate `r_i`. Uniformizing at `q = r_1` (the maximum) turns
/// it into a discrete chain subordinated to a Poisson(q) number of steps:
/// `P(S > 1) = Σ_n e^{−q} qⁿ/n! · P(chain not absorbed in n steps)`. Every
/// term is nonnegative — no catastrophic cancellation, in contrast to the
/// classic `Σ c_i e^{−r_i}` form whose coefficients alternate wildly when
/// rates are close. Truncated once the Poisson mass covered exceeds
/// `1 − 1e−15` or the surviving probability underflows `1e−18`.
pub(crate) fn hypoexp_tail(rates: &[f64]) -> f64 {
    let b = rates.len();
    if b == 0 {
        return 0.0;
    }
    let q = rates.iter().fold(0.0f64, |a, &r| a.max(r));
    if q <= 0.0 {
        return 1.0; // no repair pressure at all: the sum is infinite
    }
    let mut v = vec![0.0f64; b];
    v[0] = 1.0;
    let mut log_w = -q; // ln Poisson(0; q)
    let mut covered = log_w.exp();
    let mut total = covered; // n = 0: sum(v) = 1
    let mut n = 0u64;
    while covered < 1.0 - 1e-15 && n < 1_000_000 {
        n += 1;
        // one DTMC step, in place: descending order reads stage i−1's
        // pre-step mass; absorption drops off the end of the vector
        for i in (1..b).rev() {
            v[i] = v[i] * (1.0 - rates[i] / q) + v[i - 1] * (rates[i - 1] / q);
        }
        v[0] *= 1.0 - rates[0] / q;
        let alive: f64 = v.iter().sum();
        log_w += q.ln() - (n as f64).ln();
        let w = log_w.exp();
        covered += w;
        total += w * alive;
        if alive < 1e-18 {
            break; // survival mass can only shrink from here
        }
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn single_stage_matches_exponential_tail() {
        for lam in [0.1f64, 1.0, 5.0, 40.0] {
            let got = hypoexp_tail(&[lam]);
            let want = (-lam).exp();
            assert!(
                (got - want).abs() <= 1e-12 * want.max(1e-300),
                "lam={lam}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn two_stage_matches_closed_form() {
        // P(Exp(r1)+Exp(r2) > 1) = (r2 e^{-r1} - r1 e^{-r2}) / (r2 - r1)
        for (r1, r2) in [(3.0f64, 1.0f64), (10.0, 2.0), (5.0, 4.999)] {
            let got = hypoexp_tail(&[r1, r2]);
            let want = (r2 * (-r1).exp() - r1 * (-r2).exp()) / (r2 - r1);
            assert!(
                (got - want).abs() < 1e-10,
                "rates ({r1},{r2}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn tail_is_monotone_in_stages() {
        // adding a stage can only delay absorption
        let a = hypoexp_tail(&[4.0]);
        let b = hypoexp_tail(&[4.0, 3.0]);
        let c = hypoexp_tail(&[4.0, 3.0, 2.0]);
        assert!(a < b && b < c);
        assert!(c < 1.0);
    }

    #[test]
    fn degenerate_chains() {
        assert_eq!(hypoexp_tail(&[]), 0.0);
        assert_eq!(hypoexp_tail(&[0.0]), 1.0);
        // a huge rate makes the tail underflow toward 0 without panicking
        assert!(hypoexp_tail(&[2000.0]) < 1e-300);
    }

    #[test]
    fn plan_classifies_trivial_extremes() {
        // perfect link: R = 1 without sampling
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        let net = b.build();
        let plan = PermPlan::build(&net, NodeId(0), NodeId(1), 1, SolverKind::Dinic).unwrap();
        assert!(plan.trivially_up && !plan.never_up);

        // demand above total capacity: R = 0
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let plan = PermPlan::build(&net, NodeId(0), NodeId(1), 5, SolverKind::Dinic).unwrap();
        assert!(plan.never_up && !plan.trivially_up);
        assert!(plan.classify_evals <= 2);
    }

    #[test]
    fn multi_perm_gate_rates_reproduce_the_spectrum_marginals() {
        // {0: 0.2, 1: 0.3, 2: 0.5}: gate survivals q1 = 0.8, q2 = 0.625,
        // so λ1 = −ln 0.2 and λ2 = −ln 0.375 (conditional failure masses)
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        let net = b.build();
        let plan = MultiPermPlan::build(&net, NodeId(0), NodeId(1), 1, SolverKind::Dinic).unwrap();
        assert!(!plan.trivially_up && !plan.never_up);
        assert_eq!(plan.gates.len(), 2);
        assert!((plan.gates[0].lambda - (-0.2f64.ln())).abs() < 1e-12);
        assert!((plan.gates[1].lambda - (-0.375f64.ln())).abs() < 1e-12);
        // P(open by 1) = 1 − e^{−λ}: the conditional survivals
        assert!((1.0 - (-plan.gates[0].lambda).exp() - 0.8).abs() < 1e-12);
        assert!((1.0 - (-plan.gates[1].lambda).exp() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn multi_perm_mean_is_unbiased_with_pending_gates() {
        // single 3-state link, demand 1: Q = 0.2 exactly. When the upper
        // tranche's clock fires first it must stay pending (no capacity)
        // until the lower tranche opens — independent gates would give
        // Q = 0.2·0.375 = 0.075 instead.
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        let net = b.build();
        let solver = SolverKind::Dinic;
        let plan = MultiPermPlan::build(&net, NodeId(0), NodeId(1), 1, solver).unwrap();
        let mut nf = build_flow(&plan.x.net, NodeId(0), NodeId(1));
        let mut ws = Workspace::new();
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(crate::stream_seed(13, crate::STREAM_ENGINE));
        let mut evals = 0u64;
        let samples = 20_000;
        let mut sum = 0.0;
        for _ in 0..samples {
            let x = plan.sample_one(1, solver, &mut nf, &mut ws, &mut rng, &mut evals);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        let q_hat = sum / samples as f64;
        assert!(
            (q_hat - 0.2).abs() < 0.01,
            "multi-perm estimate {q_hat} should be near 0.2"
        );
    }

    #[test]
    fn sample_mean_is_unbiased_on_a_small_instance() {
        // two parallel links p = 0.1, demand 2: Q = 1 - 0.81 = 0.19
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let solver = SolverKind::Dinic;
        let plan = PermPlan::build(&net, NodeId(0), NodeId(1), 2, solver).unwrap();
        assert!(!plan.trivially_up && !plan.never_up);
        let mut nf = build_flow(&net, NodeId(0), NodeId(1));
        let mut ws = Workspace::new();
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(crate::stream_seed(9, crate::STREAM_ENGINE));
        let mut evals = 0u64;
        let samples = 20_000;
        let mut sum = 0.0;
        for _ in 0..samples {
            let x = plan.sample_one(2, solver, &mut nf, &mut ws, &mut rng, &mut evals);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        let q_hat = sum / samples as f64;
        assert!(
            (q_hat - 0.19).abs() < 0.01,
            "permutation estimate {q_hat} should be near 0.19"
        );
        assert!(evals > 0);
    }
}
