//! # montecarlo — statistical reliability estimation
//!
//! The exact algorithms are exponential; Monte-Carlo sampling is the only
//! practical path at scale and the natural baseline to compare the paper's
//! algorithm against. This crate provides two layers:
//!
//! **Basic estimators** (fixed experiment, no budget):
//!
//! * [`estimate`] — fixed-sample-count estimation;
//! * [`estimate_parallel`] — the same sweep fanned out over rayon workers,
//!   each with its own hash-derived RNG stream;
//! * [`estimate_until`] — a sequential stopping rule: sample until the
//!   Wilson 95% half-width falls below a target (or a sample budget is
//!   exhausted);
//! * [`estimate_antithetic`] — antithetic variates: negatively correlated
//!   sample pairs, never worse than plain sampling for this monotone system;
//! * [`estimate_stratified`] — stratify on a chosen link subset (naturally
//!   the bottleneck links of the paper's decomposition).
//!
//! **The estimation engine** ([`engine`]): budget-aware, checkpointable
//! estimation with variance-reduced estimators for the rare-event regime —
//! a conditional ("dagger") sampler over bottleneck-link strata and a
//! permutation ("turnip") estimator — driven by relative-error or CI-width
//! stopping targets. See [`engine::run`].
//!
//! ## Confidence intervals
//!
//! All intervals are **Wilson score intervals**, not the textbook normal
//! approximation: at an observed proportion of exactly 0 or 1 the normal
//! interval collapses to a point (claiming certainty after finitely many
//! samples), while the Wilson interval keeps a nonzero width of order
//! `z²/(n+z²)` until coverage is actually established. This is exactly the
//! regime that matters here, where reliabilities near 1 routinely produce
//! all-success batches.
//!
//! ## Determinism
//!
//! Sampling is deterministic per seed. Every worker/batch RNG stream is
//! derived with [`stream_seed`], a splitmix64-style hash of
//! `(seed, domain | index)`, so streams never collide across rounds,
//! workers, or estimators (plain `seed + i` offsets did: round `r` of the
//! sequential rule reused worker `i = r`'s stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod engine;
pub mod error;
pub mod pmc;
pub mod stratified;

pub use budget::{McBudget, McSentinel};
pub use engine::{
    EstimatorKind, McAccum, McCheckpoint, McOutcome, McReport, McSettings, StopTarget,
};
pub use error::McError;
pub use stratified::{estimate_stratified, StratifiedEstimate, MAX_STRATA_LINKS};

use maxflow::{build_flow, SolverKind, Workspace};
use netgraph::{EdgeMask, Network, NodeId, StateExpansion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// z-score of the two-sided 95% interval, matching the exact crates' docs.
pub(crate) const Z95: f64 = 1.96;

// Stream-domain tags for `stream_seed`: the high byte separates the users of
// the base seed so no two consumers can hash onto the same RNG stream.
pub(crate) const STREAM_CRUDE: u64 = 1 << 56;
pub(crate) const STREAM_WORKER: u64 = 2 << 56;
pub(crate) const STREAM_BATCH: u64 = 3 << 56;
pub(crate) const STREAM_ANTITHETIC: u64 = 4 << 56;
pub(crate) const STREAM_STRATIFIED: u64 = 5 << 56;
pub(crate) const STREAM_ENGINE: u64 = 6 << 56;
pub(crate) const STREAM_PLAN_LEAF: u64 = 7 << 56;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for stream `stream` of the base `seed`.
///
/// Splitmix64-style bit mixing: both stages are bijections, so distinct
/// streams of one seed never produce the same derived seed, unlike additive
/// `seed + i` schemes where worker `i` and batch round `r = i` collide.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// Derives the base seed for the Monte-Carlo estimator placed at plan-leaf
/// slot `slot` of a hybrid decomposition run with base seed `seed`.
///
/// Each sampled leaf gets its own stream *domain* (keyed by the leaf's DFS
/// slot index) before the engine fans that domain out into its per-run
/// crude/worker/batch streams. Without this extra level, two sampled leaves
/// of one plan would feed the identical base seed into the engine and draw
/// the *same* sample sequence — perfectly correlated leaves whose combined
/// interval is invalid.
pub fn plan_leaf_seed(seed: u64, slot: u64) -> u64 {
    stream_seed(seed, STREAM_PLAN_LEAF | (slot & 0x00FF_FFFF_FFFF_FFFF))
}

/// The Wilson score interval `(lo, hi)` for an observed proportion `mean`
/// over an (effective) sample size `n`, clamped to `[0, 1]`.
///
/// Unlike the normal approximation, the interval has nonzero width for every
/// finite `n`, even at `mean` 0 or 1 where it spans about `z²/(n+z²)` from
/// the boundary. `n` may be fractional: variance-reduced estimators pass the
/// effective sample size `mean(1−mean)/se²`.
pub fn wilson_interval(mean: f64, n: f64, z: f64) -> (f64, f64) {
    if n.is_nan() || n <= 0.0 || !mean.is_finite() {
        return (0.0, 1.0);
    }
    let mean = mean.clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (mean + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (mean * (1.0 - mean) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Unclamped Wilson half-width: the stopping statistic of the sequential
/// rules. Strictly positive for every finite `n`.
pub(crate) fn wilson_half(mean: f64, n: f64, z: f64) -> f64 {
    if n.is_nan() || n <= 0.0 || !mean.is_finite() {
        return f64::INFINITY;
    }
    let mean = mean.clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    (z / denom) * (mean * (1.0 - mean) / n + z2 / (4.0 * n * n)).sqrt()
}

/// Effective sample size backing a `(mean, std_error)` pair: the number of
/// Bernoulli samples whose binomial error would equal the measured one,
/// floored at the actual count so a noisy variance estimate can never claim
/// an interval narrower than plain sampling's... wider, rather: the floor
/// keeps variance-reduced estimators from *widening* past the plain Wilson
/// interval, which is a valid 95% interval for any `[0,1]`-valued estimator
/// because `Var(X) ≤ E[X](1−E[X])` for `X ∈ [0,1]`.
pub(crate) fn effective_n(mean: f64, samples: u64, std_error: f64) -> f64 {
    let binom_var = mean.clamp(0.0, 1.0) * (1.0 - mean.clamp(0.0, 1.0));
    if std_error > 0.0 && binom_var > 0.0 {
        (binom_var / (std_error * std_error)).max(samples as f64)
    } else {
        samples as f64
    }
}

/// A Monte-Carlo reliability estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean (the reliability estimate).
    pub mean: f64,
    /// Number of samples taken.
    pub samples: u64,
    /// Number of samples in which the demand was admitted.
    pub successes: u64,
    /// Standard error of the mean (binomial, or the estimator's measured
    /// standard error for variance-reduced estimators).
    pub std_error: f64,
}

impl Estimate {
    /// Builds an estimate from raw success/sample counts.
    pub fn from_counts(successes: u64, samples: u64) -> Result<Estimate, McError> {
        if samples == 0 {
            return Err(McError::NoSamples);
        }
        if successes > samples {
            return Err(McError::BadParameter {
                what: "successes",
                reason: format!("{successes} successes exceed {samples} samples"),
            });
        }
        let mean = successes as f64 / samples as f64;
        let std_error = (mean * (1.0 - mean) / samples as f64).sqrt();
        Ok(Estimate {
            mean,
            samples,
            successes,
            std_error,
        })
    }

    /// The 95% **Wilson score** confidence interval `(lo, hi)`, clamped to
    /// `[0, 1]`.
    ///
    /// Guarantee: the interval has nonzero width for every finite sample
    /// count — in particular it never collapses to a point at an observed
    /// mean of exactly 0 or 1, where it still spans roughly `z²/(n+z²)`.
    /// For estimators whose measured standard error beats the binomial one
    /// (antithetic pairs, stratification), the interval uses the effective
    /// sample size `mean(1−mean)/se²`; this stays conservative because a
    /// `[0,1]`-valued estimator's variance never exceeds `mean(1−mean)`.
    pub fn ci95(&self) -> (f64, f64) {
        wilson_interval(
            self.mean,
            effective_n(self.mean, self.samples, self.std_error),
            Z95,
        )
    }

    /// True when `value` lies inside the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        lo <= value && value <= hi
    }

    /// Merges two independent count-based estimates.
    pub fn merge(&self, other: &Estimate) -> Estimate {
        let successes = self.successes + other.successes;
        let samples = self.samples + other.samples;
        let mean = if samples == 0 {
            0.0
        } else {
            successes as f64 / samples as f64
        };
        let std_error = if samples == 0 {
            0.0
        } else {
            (mean * (1.0 - mean) / samples as f64).sqrt()
        };
        Estimate {
            mean,
            samples,
            successes,
            std_error,
        }
    }
}

/// Checks the network fits in a sampling mask and carries no capacity
/// spectra.
///
/// The binary samplers interpret a link's `fail_prob` as a two-point
/// distribution; silently running them on a multi-state network would
/// estimate the wrong model. The engine's crude and permutation estimators
/// support multi-state networks by sampling over the tranche expansion
/// instead (and call this check on the expanded, spectrum-free network).
pub(crate) fn check_edges(net: &Network) -> Result<usize, McError> {
    if net.has_multistate() {
        return Err(McError::MultiState {
            operation: "binary up/down sampling",
        });
    }
    let m = net.edge_count();
    if m > EdgeMask::MAX_EDGES {
        return Err(McError::TooManyEdges {
            count: m,
            max: EdgeMask::MAX_EDGES,
        });
    }
    Ok(m)
}

/// Builds the tranche expansion of a multi-state network for sampling,
/// mapping the expansion-size failure onto the sampling-mask error.
pub(crate) fn expand_multistate(net: &Network) -> Result<StateExpansion, McError> {
    StateExpansion::build(net).map_err(|e| match e {
        netgraph::GraphError::ExpansionTooLarge { arcs, max } => {
            McError::TooManyEdges { count: arcs, max }
        }
        other => McError::BadParameter {
            what: "network",
            reason: other.to_string(),
        },
    })
}

/// One sampling worker: draws `samples` failure configurations from the
/// given RNG stream and counts how many admit the demand. Builds the flow
/// graph once and reuses one [`Workspace`] across all solves.
fn sample_run(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    solver: SolverKind,
    samples: u64,
    stream: u64,
) -> u64 {
    let m = net.edge_count();
    let mut rng = StdRng::seed_from_u64(stream);
    let mut nf = build_flow(net, s, t);
    let mut ws = Workspace::new();
    let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();
    let mut successes = 0u64;
    for _ in 0..samples {
        let mut bits = 0u64;
        for (i, &p) in probs.iter().enumerate() {
            if rng.gen::<f64>() >= p {
                bits |= 1 << i;
            }
        }
        nf.apply_mask(EdgeMask::from_bits(bits, m));
        if demand == 0
            || solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
        {
            successes += 1;
        }
    }
    successes
}

/// Estimates the reliability from `samples` independent failure
/// configurations drawn with the given `seed`.
pub fn estimate(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    samples: u64,
    seed: u64,
) -> Result<Estimate, McError> {
    check_edges(net)?;
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let successes = sample_run(
        net,
        s,
        t,
        demand,
        SolverKind::Dinic,
        samples,
        stream_seed(seed, STREAM_CRUDE),
    );
    Estimate::from_counts(successes, samples)
}

/// As [`estimate`], with the sweep split over `threads` rayon workers.
/// Deterministic: worker `i` uses the hash-derived stream
/// `stream_seed(seed, WORKER | i)`, so the result depends only on
/// `(seed, threads, samples)` — never on scheduling.
pub fn estimate_parallel(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    samples: u64,
    seed: u64,
    threads: usize,
) -> Result<Estimate, McError> {
    check_edges(net)?;
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    use rayon::prelude::*;
    let threads = threads.clamp(1, samples.max(1) as usize);
    let per = samples / threads as u64;
    let extra = samples % threads as u64;
    let successes: u64 = (0..threads as u64)
        .into_par_iter()
        .map(|i| {
            let quota = per + u64::from(i < extra);
            sample_run(
                net,
                s,
                t,
                demand,
                SolverKind::Dinic,
                quota,
                stream_seed(seed, STREAM_WORKER | i),
            )
        })
        .reduce(|| 0, |a, b| a + b);
    Estimate::from_counts(successes, samples)
}

/// Antithetic-variates estimation: configurations are drawn in pairs
/// `(U, 1−U)` per link, inducing negative correlation between the pair's
/// outcomes. Because "admits the demand" is monotone in the link states,
/// the pair covariance is non-positive and the paired estimator's variance
/// never exceeds plain sampling's (often substantially less near the
/// reliability extremes). `pairs` pairs are drawn (`2·pairs` evaluations).
pub fn estimate_antithetic(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    pairs: u64,
    seed: u64,
) -> Result<Estimate, McError> {
    let m = check_edges(net)?;
    if pairs == 0 {
        return Err(McError::NoSamples);
    }
    let mut rng = StdRng::seed_from_u64(stream_seed(seed, STREAM_ANTITHETIC));
    let mut nf = build_flow(net, s, t);
    let mut ws = Workspace::new();
    let solver = SolverKind::Dinic;
    let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();
    let mut admits = |bits: u64, ws: &mut Workspace| -> bool {
        nf.apply_mask(EdgeMask::from_bits(bits, m));
        demand == 0 || solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, ws) >= demand
    };
    // pair sums: 0, 1 or 2 successes per pair
    let mut sum = 0u64;
    let mut sum_sq = 0u64;
    for _ in 0..pairs {
        let mut a = 0u64;
        let mut b = 0u64;
        for (i, &p) in probs.iter().enumerate() {
            let u: f64 = rng.gen();
            if u >= p {
                a |= 1 << i;
            }
            if (1.0 - u) >= p {
                b |= 1 << i;
            }
        }
        let pair = admits(a, &mut ws) as u64 + admits(b, &mut ws) as u64;
        sum += pair;
        sum_sq += pair * pair;
    }
    let n = pairs as f64;
    let mean_pair = sum as f64 / n / 2.0; // per-evaluation mean
                                          // variance of the per-pair average (pair/2), then of the mean over pairs
    let pair_avg_sq = sum_sq as f64 / n / 4.0;
    let var_pair_avg = (pair_avg_sq - mean_pair * mean_pair).max(0.0);
    let std_error = (var_pair_avg / n).sqrt();
    Ok(Estimate {
        mean: mean_pair,
        samples: pairs * 2,
        successes: sum,
        std_error,
    })
}

/// Samples in batches until the **Wilson** 95% half-width drops below
/// `target_half` or `max_samples` is reached. Returns the running estimate.
///
/// The stopping statistic is the Wilson half-width, not `1.96·se`: when a
/// batch sees 0 or `n` successes the binomial standard error is exactly 0,
/// and the normal-approximation rule would stop after one batch with a
/// zero-width "certain" interval — precisely wrong in the rare-event regime
/// this rule exists for. The Wilson half-width stays above `z²/(2(n+z²))`
/// at the extremes, so sampling continues until the target is genuinely met
/// or the budget runs out.
pub fn estimate_until(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    target_half: f64,
    max_samples: u64,
    seed: u64,
) -> Result<Estimate, McError> {
    check_edges(net)?;
    if max_samples == 0 {
        return Err(McError::NoSamples);
    }
    if !target_half.is_finite() || target_half <= 0.0 {
        return Err(McError::BadParameter {
            what: "target_half",
            reason: format!("want a finite positive CI half-width, got {target_half}"),
        });
    }
    const BATCH: u64 = 4096;
    let mut total = Estimate {
        mean: 0.0,
        samples: 0,
        successes: 0,
        std_error: 0.0,
    };
    let mut round = 0u64;
    loop {
        let quota = BATCH.min(max_samples - total.samples);
        let batch = Estimate::from_counts(
            sample_run(
                net,
                s,
                t,
                demand,
                SolverKind::Dinic,
                quota,
                stream_seed(seed, STREAM_BATCH | round),
            ),
            quota,
        )?;
        total = total.merge(&batch);
        round += 1;
        let half = wilson_half(total.mean, total.samples as f64, Z95);
        if half <= target_half || total.samples >= max_samples {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    /// Two parallel links p=0.1: R = 0.99 for d=1, 0.81 for d=2.
    fn two_parallel() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.build()
    }

    /// Two parallel near-perfect links: R = 1 - 1e-8 for d=1 — the
    /// rare-event regression instance.
    fn two_parallel_rare() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 1e-4).unwrap();
        b.add_edge(n[0], n[1], 1, 1e-4).unwrap();
        b.build()
    }

    #[test]
    fn estimate_converges_to_truth() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 1, 50_000, 7).unwrap();
        assert!(e.covers(0.99), "estimate {} should cover 0.99", e.mean);
        assert!((e.mean - 0.99).abs() < 0.01);
        let e2 = estimate(&net, NodeId(0), NodeId(1), 2, 50_000, 7).unwrap();
        assert!(e2.covers(0.81), "estimate {} should cover 0.81", e2.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = two_parallel();
        let a = estimate(&net, NodeId(0), NodeId(1), 1, 1000, 42).unwrap();
        let b = estimate(&net, NodeId(0), NodeId(1), 1, 1000, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_is_an_error_not_a_panic() {
        let net = two_parallel();
        assert_eq!(
            estimate(&net, NodeId(0), NodeId(1), 1, 0, 1),
            Err(McError::NoSamples)
        );
        assert_eq!(
            estimate_antithetic(&net, NodeId(0), NodeId(1), 1, 0, 1),
            Err(McError::NoSamples)
        );
        assert_eq!(Estimate::from_counts(1, 0), Err(McError::NoSamples));
        assert!(Estimate::from_counts(5, 3).is_err());
    }

    #[test]
    fn parallel_matches_structure() {
        let net = two_parallel();
        let e = estimate_parallel(&net, NodeId(0), NodeId(1), 1, 20_000, 3, 4).unwrap();
        assert_eq!(e.samples, 20_000);
        assert!(e.covers(0.99));
        // same (seed, threads) is reproducible
        let e2 = estimate_parallel(&net, NodeId(0), NodeId(1), 1, 20_000, 3, 4).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn stream_seeds_do_not_collide() {
        // the old scheme had worker i and batch round r = i share seed+i;
        // hash-derived streams are distinct across domains and indices
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(stream_seed(42, STREAM_WORKER | i)));
            assert!(seen.insert(stream_seed(42, STREAM_BATCH | i)));
        }
        // and deterministic
        assert_eq!(
            stream_seed(7, STREAM_WORKER | 3),
            stream_seed(7, STREAM_WORKER | 3)
        );
    }

    #[test]
    fn plan_leaf_seeds_are_distinct_per_slot_and_from_engine_domains() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..1000u64 {
            assert!(seen.insert(plan_leaf_seed(42, slot)));
            // a leaf's base seed never collides with the engine-internal
            // streams the same base seed fans out into
            assert!(seen.insert(stream_seed(42, STREAM_ENGINE | slot)));
            assert!(seen.insert(stream_seed(42, STREAM_BATCH | slot)));
        }
        assert_eq!(plan_leaf_seed(7, 3), plan_leaf_seed(7, 3));
    }

    #[test]
    fn stopping_rule_stops() {
        let net = two_parallel();
        let e = estimate_until(&net, NodeId(0), NodeId(1), 2, 0.02, 1_000_000, 5).unwrap();
        assert!(wilson_half(e.mean, e.samples as f64, Z95) <= 0.02 || e.samples == 1_000_000);
        // a fixed seed pins one sample path; assert a 3-sigma band rather
        // than the 95% CI so the test does not hinge on landing inside
        // +/-1.96 sigma exactly
        assert!((e.mean - 0.81).abs() <= 3.0 * e.std_error);
        // loose target stops immediately after one batch
        let quick = estimate_until(&net, NodeId(0), NodeId(1), 2, 0.5, 1_000_000, 5).unwrap();
        assert_eq!(quick.samples, 4096);
    }

    #[test]
    fn rare_event_does_not_stop_on_a_degenerate_batch() {
        // regression: p = 1e-4 two-link instance, true R = 1 - 1e-8. The
        // first 4096-sample batch is (for these seeds) all successes, so the
        // old `1.96·se > target` rule stopped immediately with the
        // zero-width interval [1, 1], which excludes the exact answer.
        let net = two_parallel_rare();
        let exact = 1.0 - 1e-8;
        let e = estimate_until(&net, NodeId(0), NodeId(1), 1, 1e-4, 50_000, 11).unwrap();
        assert!(
            e.samples > 4096,
            "Wilson stopping must keep sampling past one degenerate batch"
        );
        let (lo, hi) = e.ci95();
        assert!(hi > lo, "interval must never be zero-width");
        assert!(
            lo <= exact && exact <= hi,
            "[{lo}, {hi}] must cover {exact}"
        );
    }

    #[test]
    fn wilson_interval_properties() {
        // nonzero width at the extremes
        let (lo, hi) = wilson_interval(1.0, 4096.0, Z95);
        assert!(hi - lo > 0.0 && hi == 1.0 && lo < 1.0);
        let (lo0, hi0) = wilson_interval(0.0, 4096.0, Z95);
        assert!(hi0 - lo0 > 0.0 && lo0 == 0.0 && hi0 > 0.0);
        // symmetric counterparts mirror
        assert!((hi0 - (1.0 - lo)).abs() < 1e-12);
        // width shrinks with n
        assert!(
            wilson_half(1.0, 10_000.0, Z95) < wilson_half(1.0, 100.0, Z95),
            "half-width must shrink with n"
        );
        // degenerate n
        assert_eq!(wilson_interval(0.5, 0.0, Z95), (0.0, 1.0));
    }

    #[test]
    fn antithetic_converges_and_does_not_lose() {
        let net = two_parallel();
        let anti = estimate_antithetic(&net, NodeId(0), NodeId(1), 2, 25_000, 7).unwrap();
        assert!(
            anti.covers(0.81),
            "antithetic {} should cover 0.81",
            anti.mean
        );
        let plain = estimate(&net, NodeId(0), NodeId(1), 2, 50_000, 7).unwrap();
        assert!(
            anti.std_error <= plain.std_error * 1.1,
            "antithetic {} vs plain {}",
            anti.std_error,
            plain.std_error
        );
    }

    #[test]
    fn antithetic_deterministic_per_seed() {
        let net = two_parallel();
        let a = estimate_antithetic(&net, NodeId(0), NodeId(1), 1, 2_000, 5).unwrap();
        let b = estimate_antithetic(&net, NodeId(0), NodeId(1), 1, 2_000, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn basic_estimators_refuse_multistate_networks() {
        // the fixed-experiment samplers interpret fail_prob as binary and
        // would silently estimate the wrong model on a spectrum link
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        let net = b.build();
        let multistate =
            |r: Result<Estimate, McError>| matches!(r, Err(McError::MultiState { .. }));
        assert!(multistate(estimate(&net, NodeId(0), NodeId(1), 1, 100, 1)));
        assert!(multistate(estimate_parallel(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            100,
            1,
            2
        )));
        assert!(multistate(estimate_antithetic(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            100,
            1
        )));
        assert!(multistate(estimate_until(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            0.1,
            100,
            1
        )));
        assert!(matches!(
            estimate_stratified(
                &net,
                NodeId(0),
                NodeId(1),
                1,
                &[netgraph::EdgeId(0)],
                100,
                1
            ),
            Err(McError::MultiState { .. })
        ));
    }

    #[test]
    fn zero_demand_always_succeeds() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 0, 100, 1).unwrap();
        assert_eq!(e.mean, 1.0);
        assert_eq!(e.std_error, 0.0);
        // ...but the CI is still honest about the finite sample size
        let (lo, hi) = e.ci95();
        assert!(lo < 1.0 && hi > 1.0 - 1e-9);
    }

    #[test]
    fn ci_is_clamped() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 0, 10, 1).unwrap();
        let (lo, hi) = e.ci95();
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }
}
