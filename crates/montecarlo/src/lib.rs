//! # montecarlo — statistical reliability estimation
//!
//! The exact algorithms are exponential; Monte-Carlo sampling is the standard
//! practical alternative and the natural baseline to compare the paper's
//! algorithm against. This crate provides:
//!
//! * [`estimate`] — fixed-sample-count estimation with a normal-approximation
//!   confidence interval;
//! * [`estimate_parallel`] — the same sweep fanned out over crossbeam scoped
//!   threads, each with its own independently seeded RNG;
//! * [`estimate_until`] — a sequential stopping rule: sample until the
//!   half-width of the confidence interval falls below a target (or a sample
//!   budget is exhausted);
//! * [`estimate_antithetic`] — antithetic variates: negatively correlated
//!   sample pairs, never worse than plain sampling for this monotone system;
//! * [`estimate_stratified`] — stratify on a chosen link subset (naturally
//!   the bottleneck links of the paper's decomposition): each of the `2^k`
//!   availability configurations of those links becomes a stratum whose
//!   probability is computed exactly, and only the remaining links are
//!   sampled. This removes the strata links' variance contribution entirely.
//!
//! Sampling is deterministic per seed, so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stratified;

pub use stratified::{estimate_stratified, StratifiedEstimate};

use maxflow::{build_flow, SolverKind};
use netgraph::{EdgeMask, Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Monte-Carlo reliability estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean (the reliability estimate).
    pub mean: f64,
    /// Number of samples taken.
    pub samples: u64,
    /// Number of samples in which the demand was admitted.
    pub successes: u64,
    /// Standard error of the mean (binomial).
    pub std_error: f64,
}

impl Estimate {
    fn from_counts(successes: u64, samples: u64) -> Estimate {
        assert!(samples > 0, "at least one sample required");
        let mean = successes as f64 / samples as f64;
        let std_error = (mean * (1.0 - mean) / samples as f64).sqrt();
        Estimate {
            mean,
            samples,
            successes,
            std_error,
        }
    }

    /// The 95% confidence interval `(lo, hi)`, clamped to `[0, 1]`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        ((self.mean - half).max(0.0), (self.mean + half).min(1.0))
    }

    /// True when `value` lies inside the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        lo <= value && value <= hi
    }

    /// Merges two independent estimates.
    pub fn merge(&self, other: &Estimate) -> Estimate {
        Estimate::from_counts(
            self.successes + other.successes,
            self.samples + other.samples,
        )
    }
}

/// One sampling worker: draws `samples` failure configurations and counts how
/// many admit the demand.
fn sample_run(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    solver: SolverKind,
    samples: u64,
    seed: u64,
) -> u64 {
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "sampling masks support at most 64 links"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nf = build_flow(net, s, t);
    let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();
    let mut successes = 0u64;
    for _ in 0..samples {
        let mut bits = 0u64;
        for (i, &p) in probs.iter().enumerate() {
            if rng.gen::<f64>() >= p {
                bits |= 1 << i;
            }
        }
        nf.apply_mask(EdgeMask::from_bits(bits, m));
        if demand == 0 || solver.solve(&mut nf.graph, nf.source, nf.sink, demand) >= demand {
            successes += 1;
        }
    }
    successes
}

/// Estimates the reliability from `samples` independent failure
/// configurations drawn with the given `seed`.
pub fn estimate(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    samples: u64,
    seed: u64,
) -> Estimate {
    let successes = sample_run(net, s, t, demand, SolverKind::Dinic, samples, seed);
    Estimate::from_counts(successes, samples)
}

/// As [`estimate`], with the sweep split over `threads` crossbeam scoped
/// threads. Deterministic: worker `i` uses seed `seed + i`, so the result
/// depends only on `(seed, threads, samples)`.
pub fn estimate_parallel(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    samples: u64,
    seed: u64,
    threads: usize,
) -> Estimate {
    let threads = threads.max(1).min(samples.max(1) as usize);
    let per = samples / threads as u64;
    let extra = samples % threads as u64;
    let successes = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..threads {
            let quota = per + if (i as u64) < extra { 1 } else { 0 };
            let net_ref = &net;
            handles.push(scope.spawn(move |_| {
                sample_run(
                    net_ref,
                    s,
                    t,
                    demand,
                    SolverKind::Dinic,
                    quota,
                    seed + i as u64,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sampler panicked"))
            .sum::<u64>()
    })
    .expect("crossbeam scope");
    Estimate::from_counts(successes, samples)
}

/// Antithetic-variates estimation: configurations are drawn in pairs
/// `(U, 1−U)` per link, inducing negative correlation between the pair's
/// outcomes. Because "admits the demand" is monotone in the link states,
/// the pair covariance is non-positive and the paired estimator's variance
/// never exceeds plain sampling's (often substantially less near the
/// reliability extremes). `pairs` pairs are drawn (`2·pairs` evaluations).
pub fn estimate_antithetic(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    pairs: u64,
    seed: u64,
) -> Estimate {
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "sampling masks support at most 64 links"
    );
    assert!(pairs > 0, "at least one pair required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nf = build_flow(net, s, t);
    let solver = SolverKind::Dinic;
    let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();
    let mut admits = |bits: u64| -> bool {
        nf.apply_mask(EdgeMask::from_bits(bits, m));
        demand == 0 || solver.solve(&mut nf.graph, nf.source, nf.sink, demand) >= demand
    };
    // pair sums: 0, 1 or 2 successes per pair
    let mut sum = 0u64;
    let mut sum_sq = 0u64;
    for _ in 0..pairs {
        let mut a = 0u64;
        let mut b = 0u64;
        for (i, &p) in probs.iter().enumerate() {
            let u: f64 = rng.gen();
            if u >= p {
                a |= 1 << i;
            }
            if (1.0 - u) >= p {
                b |= 1 << i;
            }
        }
        let pair = admits(a) as u64 + admits(b) as u64;
        sum += pair;
        sum_sq += pair * pair;
    }
    let n = pairs as f64;
    let mean_pair = sum as f64 / n / 2.0; // per-evaluation mean
                                          // variance of the per-pair average (pair/2), then of the mean over pairs
    let pair_avg_sq = sum_sq as f64 / n / 4.0;
    let var_pair_avg = (pair_avg_sq - mean_pair * mean_pair).max(0.0);
    let std_error = (var_pair_avg / n).sqrt();
    Estimate {
        mean: mean_pair,
        samples: pairs * 2,
        successes: sum,
        std_error,
    }
}

/// Samples in batches until the 95% CI half-width drops below `target_half`
/// or `max_samples` is reached. Returns the running estimate.
pub fn estimate_until(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    target_half: f64,
    max_samples: u64,
    seed: u64,
) -> Estimate {
    const BATCH: u64 = 4096;
    let mut total = Estimate::from_counts(
        sample_run(
            net,
            s,
            t,
            demand,
            SolverKind::Dinic,
            BATCH.min(max_samples),
            seed,
        ),
        BATCH.min(max_samples),
    );
    let mut round = 1u64;
    while total.samples < max_samples && 1.96 * total.std_error > target_half {
        let quota = BATCH.min(max_samples - total.samples);
        let batch = Estimate::from_counts(
            sample_run(net, s, t, demand, SolverKind::Dinic, quota, seed + round),
            quota,
        );
        total = total.merge(&batch);
        round += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    /// Two parallel links p=0.1: R = 0.99 for d=1, 0.81 for d=2.
    fn two_parallel() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn estimate_converges_to_truth() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 1, 50_000, 7);
        assert!(e.covers(0.99), "estimate {} should cover 0.99", e.mean);
        assert!((e.mean - 0.99).abs() < 0.01);
        let e2 = estimate(&net, NodeId(0), NodeId(1), 2, 50_000, 7);
        assert!(e2.covers(0.81), "estimate {} should cover 0.81", e2.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = two_parallel();
        let a = estimate(&net, NodeId(0), NodeId(1), 1, 1000, 42);
        let b = estimate(&net, NodeId(0), NodeId(1), 1, 1000, 42);
        assert_eq!(a, b);
        let c = estimate(&net, NodeId(0), NodeId(1), 1, 1000, 43);
        assert_ne!(
            a.successes,
            c.successes + 1_000_000,
            "different seeds sample differently"
        );
    }

    #[test]
    fn parallel_matches_structure() {
        let net = two_parallel();
        let e = estimate_parallel(&net, NodeId(0), NodeId(1), 1, 20_000, 3, 4);
        assert_eq!(e.samples, 20_000);
        assert!(e.covers(0.99));
        // same (seed, threads) is reproducible
        let e2 = estimate_parallel(&net, NodeId(0), NodeId(1), 1, 20_000, 3, 4);
        assert_eq!(e, e2);
    }

    #[test]
    fn stopping_rule_stops() {
        let net = two_parallel();
        let e = estimate_until(&net, NodeId(0), NodeId(1), 2, 0.02, 1_000_000, 5);
        assert!(1.96 * e.std_error <= 0.02 || e.samples == 1_000_000);
        // a fixed seed pins one sample path; assert a 3-sigma band rather
        // than the 95% CI so the test does not hinge on landing inside
        // +/-1.96 sigma exactly
        assert!((e.mean - 0.81).abs() <= 3.0 * e.std_error);
        // loose target stops immediately after one batch
        let quick = estimate_until(&net, NodeId(0), NodeId(1), 2, 0.5, 1_000_000, 5);
        assert_eq!(quick.samples, 4096);
    }

    #[test]
    fn antithetic_converges_and_does_not_lose() {
        let net = two_parallel();
        let anti = estimate_antithetic(&net, NodeId(0), NodeId(1), 2, 25_000, 7);
        assert!(
            anti.covers(0.81),
            "antithetic {} should cover 0.81",
            anti.mean
        );
        let plain = estimate(&net, NodeId(0), NodeId(1), 2, 50_000, 7);
        assert!(
            anti.std_error <= plain.std_error * 1.1,
            "antithetic {} vs plain {}",
            anti.std_error,
            plain.std_error
        );
    }

    #[test]
    fn antithetic_deterministic_per_seed() {
        let net = two_parallel();
        let a = estimate_antithetic(&net, NodeId(0), NodeId(1), 1, 2_000, 5);
        let b = estimate_antithetic(&net, NodeId(0), NodeId(1), 1, 2_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_demand_always_succeeds() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 0, 100, 1);
        assert_eq!(e.mean, 1.0);
        assert_eq!(e.std_error, 0.0);
    }

    #[test]
    fn ci_is_clamped() {
        let net = two_parallel();
        let e = estimate(&net, NodeId(0), NodeId(1), 0, 10, 1);
        let (lo, hi) = e.ci95();
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }
}
