//! Errors of the statistical estimators.
//!
//! Mirrors the shape of `flowrel_core::ReliabilityError`: every way user
//! input can be rejected has its own variant, `Display` is informative, and
//! nothing in the library panics on bad input (enforced by the CI
//! `clippy::unwrap_used`/`expect_used` gate on this crate).

use std::fmt;

use netgraph::EdgeId;

/// Errors produced by the Monte-Carlo estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// The network has more links than a [`netgraph::EdgeMask`] can
    /// represent, so failure configurations cannot be sampled.
    TooManyEdges {
        /// Links in the network.
        count: usize,
        /// The mask capacity ([`netgraph::EdgeMask::MAX_EDGES`]).
        max: usize,
    },
    /// Zero samples (or sample pairs) were requested; an estimate needs at
    /// least one.
    NoSamples,
    /// A numeric parameter is out of its valid range.
    BadParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Too many strata links: `2^k` strata must stay enumerable.
    TooManyStrataLinks {
        /// Strata links requested.
        count: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The same link appears twice in the strata set.
    DuplicateStratumLink {
        /// The repeated link.
        link: EdgeId,
    },
    /// A strata link id does not exist in the network.
    StratumLinkOutOfRange {
        /// The offending link id.
        link: EdgeId,
        /// Links in the network.
        edges: usize,
    },
    /// A resume checkpoint is inconsistent with the instance or settings it
    /// is being resumed against.
    CheckpointMismatch {
        /// What disagreed.
        reason: String,
    },
    /// The network carries multi-state capacity spectra and the requested
    /// estimator only understands binary up/down links. The engine's crude
    /// and permutation estimators handle multi-state networks; the basic
    /// fixed-experiment samplers and the dagger estimator do not.
    MultiState {
        /// The estimator or sampler that refused the network.
        operation: &'static str,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::TooManyEdges { count, max } => {
                write!(
                    f,
                    "{count} links exceed the {max}-bit sampling-mask capacity"
                )
            }
            McError::NoSamples => write!(f, "at least one sample is required"),
            McError::BadParameter { what, reason } => write!(f, "bad {what}: {reason}"),
            McError::TooManyStrataLinks { count, max } => {
                write!(f, "{count} strata links exceed the maximum of {max}")
            }
            McError::DuplicateStratumLink { link } => {
                write!(f, "duplicate stratum link {link:?}")
            }
            McError::StratumLinkOutOfRange { link, edges } => {
                write!(
                    f,
                    "stratum link {link:?} out of range (network has {edges} links)"
                )
            }
            McError::CheckpointMismatch { reason } => {
                write!(f, "Monte-Carlo checkpoint does not match: {reason}")
            }
            McError::MultiState { operation } => {
                write!(
                    f,
                    "{operation} does not support multi-state capacity spectra; \
                     use the engine's crude or permutation estimator"
                )
            }
        }
    }
}

impl std::error::Error for McError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = McError::TooManyEdges { count: 70, max: 64 };
        assert!(e.to_string().contains("70"));
        let e = McError::BadParameter {
            what: "rel_err",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("rel_err"));
        let e = McError::StratumLinkOutOfRange {
            link: EdgeId(9),
            edges: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
