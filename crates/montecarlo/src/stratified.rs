//! Stratified sampling conditioned on a chosen link subset.
//!
//! Pick `k` strata links (naturally a bottleneck set, tying this estimator to
//! the paper's decomposition). Each of the `2^k` availability configurations
//! of the strata links is a stratum whose probability is a known product; the
//! estimator samples only the remaining links within each stratum and
//! combines: `R = Σ_j p_j · R_j`. The strata links contribute zero sampling
//! variance, and within-stratum variance is weighted by `p_j²/n_j < p_j/n`.
//!
//! [`StrataPlan`] is the shared foundation: it additionally *classifies* each
//! stratum by monotonicity — if the demand is infeasible with every free link
//! alive the stratum contributes exactly 0; if it is feasible with every free
//! link dead it contributes exactly its probability — so only genuinely
//! *mixed* strata are ever sampled. This is the conditional ("dagger")
//! decomposition the engine's rare-event estimator builds on: the exact mass
//! absorbs the overwhelming bulk of the probability near R → 1, leaving the
//! sampler to resolve only the strata where the answer is in doubt.

use maxflow::{build_flow, NetworkFlow, SolverKind, Workspace};
use netgraph::{EdgeId, EdgeMask, Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::McError;
use crate::{check_edges, effective_n, wilson_interval, Z95};

/// Maximum strata links: `2^k` strata must stay enumerable.
pub const MAX_STRATA_LINKS: usize = 16;

/// A stratified estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StratifiedEstimate {
    /// The combined reliability estimate.
    pub mean: f64,
    /// Standard error of the combined estimate.
    pub std_error: f64,
    /// Number of strata (`2^k`).
    pub strata: usize,
    /// Total samples drawn across all strata.
    pub samples: u64,
}

impl StratifiedEstimate {
    /// The 95% **Wilson** confidence interval, clamped to `[0, 1]`, using the
    /// effective sample size implied by the stratified standard error. Like
    /// [`crate::Estimate::ci95`], it never collapses to a point for a finite
    /// sample count unless the estimate is exactly known (zero variance with
    /// every stratum resolved exactly, reported as `std_error == 0` with
    /// `samples == 0`).
    pub fn ci95(&self) -> (f64, f64) {
        if self.samples == 0 {
            // fully exact: every stratum was classified, nothing was sampled
            return (self.mean, self.mean);
        }
        wilson_interval(
            self.mean,
            effective_n(self.mean, self.samples, self.std_error),
            Z95,
        )
    }

    /// True when `value` lies inside the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        lo <= value && value <= hi
    }
}

/// How a stratum resolved during classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StratumClass {
    /// Feasible even with every free link failed: contributes exactly `p`.
    AlwaysUp,
    /// Infeasible even with every free link alive: contributes exactly 0.
    AlwaysDown,
    /// Feasibility depends on the free links: must be sampled.
    Mixed,
}

/// A stratum that classification could not resolve and must be sampled.
#[derive(Clone, Debug)]
pub(crate) struct MixedStratum {
    /// Exact probability of the strata-link configuration.
    pub p: f64,
    /// Alive-bits of the strata links in this configuration.
    pub fixed_bits: u64,
}

/// Validated, classified sampling plan over the strata of `strata_links`.
///
/// Construction performs at most `2·2^k` flow evaluations to classify every
/// stratum (monotonicity gives one-sided shortcuts), recording the exact
/// probability mass of always-feasible strata in `exact_mass` and the list of
/// mixed strata left to sample.
#[derive(Clone, Debug)]
pub(crate) struct StrataPlan {
    /// Network link count.
    pub m: usize,
    /// Per-link failure probabilities.
    pub probs: Vec<f64>,
    /// Links not in the strata set, sampled within each stratum.
    pub free: Vec<usize>,
    /// Strata needing sampling, in ascending configuration order.
    pub mixed: Vec<MixedStratum>,
    /// Exact probability mass of strata proven always-feasible.
    pub exact_mass: f64,
    /// Flow evaluations spent on classification.
    pub classify_evals: u64,
    /// Total strata (`2^k`), for reporting.
    pub strata: usize,
}

impl StrataPlan {
    /// Validates the strata set and classifies every stratum.
    pub fn build(
        net: &Network,
        s: NodeId,
        t: NodeId,
        demand: u64,
        strata_links: &[EdgeId],
        solver: SolverKind,
    ) -> Result<StrataPlan, McError> {
        let m = check_edges(net)?;
        let k = strata_links.len();
        if k > MAX_STRATA_LINKS {
            return Err(McError::TooManyStrataLinks {
                count: k,
                max: MAX_STRATA_LINKS,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for &e in strata_links {
            if e.index() >= m {
                return Err(McError::StratumLinkOutOfRange { link: e, edges: m });
            }
            if !seen.insert(e) {
                return Err(McError::DuplicateStratumLink { link: e });
            }
        }
        let strata_set: Vec<usize> = strata_links.iter().map(|e| e.index()).collect();
        let free: Vec<usize> = (0..m).filter(|i| !strata_set.contains(i)).collect();
        let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();
        let free_bits: u64 = free.iter().fold(0u64, |acc, &i| acc | 1 << i);

        let mut nf = build_flow(net, s, t);
        let mut ws = Workspace::new();
        let mut admits = |bits: u64, evals: &mut u64| -> bool {
            if demand == 0 {
                return true;
            }
            *evals += 1;
            nf.apply_mask(EdgeMask::from_bits(bits, m));
            solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
        };

        let strata = 1usize << k;
        let mut mixed = Vec::new();
        let mut exact_mass = 0.0f64;
        let mut classify_evals = 0u64;
        for stratum in 0..strata {
            let mut p = 1.0f64;
            let mut fixed_bits = 0u64;
            for (bit, &ei) in strata_set.iter().enumerate() {
                if stratum >> bit & 1 == 1 {
                    p *= 1.0 - probs[ei];
                    fixed_bits |= 1 << ei;
                } else {
                    p *= probs[ei];
                }
            }
            if p == 0.0 {
                continue;
            }
            let class = if !admits(fixed_bits | free_bits, &mut classify_evals) {
                StratumClass::AlwaysDown
            } else if admits(fixed_bits, &mut classify_evals) {
                StratumClass::AlwaysUp
            } else {
                StratumClass::Mixed
            };
            match class {
                StratumClass::AlwaysUp => exact_mass += p,
                StratumClass::AlwaysDown => {}
                StratumClass::Mixed => mixed.push(MixedStratum { p, fixed_bits }),
            }
        }
        Ok(StrataPlan {
            m,
            probs,
            free,
            mixed,
            exact_mass,
            classify_evals,
            strata,
        })
    }

    /// Splits `batch` samples across the mixed strata proportionally to their
    /// probability (largest-remainder rounding, at least one sample each).
    /// Returns an empty vector when nothing needs sampling.
    pub fn alloc(&self, batch: u64) -> Vec<u64> {
        let k = self.mixed.len();
        if k == 0 {
            return Vec::new();
        }
        let total_p: f64 = self.mixed.iter().map(|s| s.p).sum();
        let batch = batch.max(k as u64);
        let mut alloc: Vec<u64> = Vec::with_capacity(k);
        let mut rems: Vec<(usize, f64)> = Vec::with_capacity(k);
        let mut assigned = 0u64;
        for (j, st) in self.mixed.iter().enumerate() {
            let share = if total_p > 0.0 {
                batch as f64 * st.p / total_p
            } else {
                batch as f64 / k as f64
            };
            let base = (share.floor() as u64).max(1);
            alloc.push(base);
            assigned += base;
            rems.push((j, share - share.floor()));
        }
        // distribute any shortfall to the largest remainders
        rems.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut left = batch.saturating_sub(assigned);
        for (j, _) in rems {
            if left == 0 {
                break;
            }
            alloc[j] += 1;
            left -= 1;
        }
        alloc
    }

    /// Draws `quota` conditional samples inside mixed stratum `j` using `rng`
    /// and counts successes. `evals` accrues the flow evaluations spent.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_stratum(
        &self,
        j: usize,
        quota: u64,
        demand: u64,
        solver: SolverKind,
        nf: &mut NetworkFlow,
        ws: &mut Workspace,
        rng: &mut StdRng,
        evals: &mut u64,
    ) -> u64 {
        let st = &self.mixed[j];
        let mut successes = 0u64;
        for _ in 0..quota {
            let mut bits = st.fixed_bits;
            for &i in &self.free {
                if rng.gen::<f64>() >= self.probs[i] {
                    bits |= 1 << i;
                }
            }
            nf.apply_mask(EdgeMask::from_bits(bits, self.m));
            *evals += 1;
            if demand == 0
                || solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, ws) >= demand
            {
                successes += 1;
            }
        }
        successes
    }
}

/// Stratified reliability estimation: `total_samples` are allocated to the
/// `2^k` strata proportionally to their probability (at least 2 each; strata
/// whose probability is 0 are skipped, and strata resolved exactly by
/// monotonicity are not sampled at all).
pub fn estimate_stratified(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    strata_links: &[EdgeId],
    total_samples: u64,
    seed: u64,
) -> Result<StratifiedEstimate, McError> {
    if total_samples == 0 {
        return Err(McError::NoSamples);
    }
    let solver = SolverKind::Dinic;
    let plan = StrataPlan::build(net, s, t, demand, strata_links, solver)?;
    let mut nf = build_flow(net, s, t);
    let mut ws = Workspace::new();
    let mut rng = StdRng::seed_from_u64(crate::stream_seed(seed, crate::STREAM_STRATIFIED));

    let mut mean = plan.exact_mass;
    let mut variance = 0.0f64;
    let mut samples_used = 0u64;
    let mut evals = 0u64;
    for (j, st) in plan.mixed.iter().enumerate() {
        let n_j = ((total_samples as f64 * st.p).round() as u64).max(2);
        let successes = plan.sample_stratum(
            j, n_j, demand, solver, &mut nf, &mut ws, &mut rng, &mut evals,
        );
        samples_used += n_j;
        let r_j = successes as f64 / n_j as f64;
        mean += st.p * r_j;
        variance += st.p * st.p * r_j * (1.0 - r_j) / n_j as f64;
    }
    Ok(StratifiedEstimate {
        mean,
        std_error: variance.sqrt(),
        strata: plan.strata,
        samples: samples_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    /// s -e0- a -e1- t with an unreliable middle link: stratifying on e1
    /// removes most of the variance.
    fn chain() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.4).unwrap();
        b.build()
    }

    #[test]
    fn matches_exact_value() {
        let net = chain();
        let exact = 0.9 * 0.6;
        let e =
            estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 20_000, 3).unwrap();
        assert!(e.covers(exact), "stratified {:?} misses exact {exact}", e);
        assert_eq!(e.strata, 2);
    }

    #[test]
    fn stratifying_all_links_is_exact() {
        // every link a stratum link: classification resolves every stratum
        // by monotonicity, nothing is left to sample, zero variance
        let net = chain();
        let e = estimate_stratified(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &[EdgeId(0), EdgeId(1)],
            100,
            1,
        )
        .unwrap();
        assert!((e.mean - 0.9 * 0.6).abs() < 1e-12);
        assert_eq!(e.std_error, 0.0);
        assert_eq!(e.samples, 0, "fully classified plans sample nothing");
        assert_eq!(e.ci95(), (e.mean, e.mean));
    }

    #[test]
    fn variance_not_worse_than_plain() {
        let net = chain();
        let plain = crate::estimate(&net, NodeId(0), NodeId(2), 1, 20_000, 9).unwrap();
        let strat =
            estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 20_000, 9).unwrap();
        assert!(
            strat.std_error <= plain.std_error * 1.05,
            "stratified {} vs plain {}",
            strat.std_error,
            plain.std_error
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let net = chain();
        let a = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 5_000, 4).unwrap();
        let b = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 5_000, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_duplicate_strata() {
        let net = chain();
        let e = estimate_stratified(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &[EdgeId(1), EdgeId(1)],
            100,
            1,
        );
        assert_eq!(e, Err(McError::DuplicateStratumLink { link: EdgeId(1) }));
        let e = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(7)], 100, 1);
        assert_eq!(
            e,
            Err(McError::StratumLinkOutOfRange {
                link: EdgeId(7),
                edges: 2
            })
        );
    }

    #[test]
    fn perfect_strata_links_skip_impossible_strata() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap(); // never fails
        let net = b.build();
        let e = estimate_stratified(&net, NodeId(0), NodeId(1), 1, &[EdgeId(0)], 100, 1).unwrap();
        assert_eq!(e.mean, 1.0);
        assert_eq!(e.std_error, 0.0);
    }

    #[test]
    fn classification_shortcuts_are_sound() {
        // two parallel links p=0.1, demand 1, stratify on e0:
        //   stratum e0-up   -> feasible with e1 dead  => AlwaysUp (mass 0.9)
        //   stratum e0-down -> mixed (depends on e1)
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let plan = StrataPlan::build(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &[EdgeId(0)],
            SolverKind::Dinic,
        )
        .unwrap();
        assert!((plan.exact_mass - 0.9).abs() < 1e-12);
        assert_eq!(plan.mixed.len(), 1);
        assert!((plan.mixed[0].p - 0.1).abs() < 1e-12);
        assert!(plan.classify_evals <= 4);
    }

    #[test]
    fn alloc_is_proportional_and_exhaustive() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.3).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap();
        b.add_edge(n[0], n[2], 1, 0.3).unwrap();
        let net = b.build();
        let plan = StrataPlan::build(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &[EdgeId(0), EdgeId(2)],
            SolverKind::Dinic,
        )
        .unwrap();
        if !plan.mixed.is_empty() {
            let alloc = plan.alloc(1000);
            assert_eq!(alloc.len(), plan.mixed.len());
            assert!(alloc.iter().all(|&a| a >= 1));
            assert!(alloc.iter().sum::<u64>() >= 1000.min(plan.mixed.len() as u64));
        }
    }
}
