//! Stratified sampling conditioned on a chosen link subset.
//!
//! Pick `k` strata links (naturally a bottleneck set, tying this estimator to
//! the paper's decomposition). Each of the `2^k` availability configurations
//! of the strata links is a stratum whose probability is a known product; the
//! estimator samples only the remaining links within each stratum and
//! combines: `R = Σ_j p_j · R_j`. The strata links contribute zero sampling
//! variance, and within-stratum variance is weighted by `p_j²/n_j < p_j/n`.

use maxflow::{build_flow, SolverKind};
use netgraph::{EdgeId, EdgeMask, Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stratified estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StratifiedEstimate {
    /// The combined reliability estimate.
    pub mean: f64,
    /// Standard error of the combined estimate.
    pub std_error: f64,
    /// Number of strata (`2^k`).
    pub strata: usize,
    /// Total samples drawn across all strata.
    pub samples: u64,
}

impl StratifiedEstimate {
    /// The 95% confidence interval, clamped to `[0, 1]`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        ((self.mean - half).max(0.0), (self.mean + half).min(1.0))
    }

    /// True when `value` lies inside the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        lo <= value && value <= hi
    }
}

/// Stratified reliability estimation: `total_samples` are allocated to the
/// `2^k` strata proportionally to their probability (at least 2 each; strata
/// whose probability is 0 are skipped).
///
/// # Panics
/// Panics when `strata_links` has more than 16 links, contains duplicates or
/// invalid ids, or when the network exceeds 64 links.
pub fn estimate_stratified(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    strata_links: &[EdgeId],
    total_samples: u64,
    seed: u64,
) -> StratifiedEstimate {
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "sampling masks support at most 64 links"
    );
    let k = strata_links.len();
    assert!(k <= 16, "too many strata links");
    let mut seen = std::collections::HashSet::new();
    for &e in strata_links {
        assert!(e.index() < m, "strata link out of range");
        assert!(seen.insert(e), "duplicate strata link");
    }
    let strata_set: Vec<usize> = strata_links.iter().map(|e| e.index()).collect();
    let free: Vec<usize> = (0..m).filter(|i| !strata_set.contains(i)).collect();
    let probs: Vec<f64> = net.edges().iter().map(|e| e.fail_prob).collect();

    let mut nf = build_flow(net, s, t);
    let solver = SolverKind::Dinic;
    let mut rng = StdRng::seed_from_u64(seed);

    let strata_count = 1usize << k;
    let mut mean = 0.0f64;
    let mut variance = 0.0f64;
    let mut samples_used = 0u64;

    for stratum in 0..strata_count {
        // exact stratum probability and fixed strata-link bits
        let mut p_stratum = 1.0f64;
        let mut fixed_bits = 0u64;
        for (bit, &ei) in strata_set.iter().enumerate() {
            if stratum >> bit & 1 == 1 {
                p_stratum *= 1.0 - probs[ei];
                fixed_bits |= 1 << ei;
            } else {
                p_stratum *= probs[ei];
            }
        }
        if p_stratum == 0.0 {
            continue;
        }
        let n_j = ((total_samples as f64 * p_stratum).round() as u64).max(2);
        let mut successes = 0u64;
        for _ in 0..n_j {
            let mut bits = fixed_bits;
            for &i in &free {
                if rng.gen::<f64>() >= probs[i] {
                    bits |= 1 << i;
                }
            }
            nf.apply_mask(EdgeMask::from_bits(bits, m));
            if demand == 0 || solver.solve(&mut nf.graph, nf.source, nf.sink, demand) >= demand {
                successes += 1;
            }
        }
        samples_used += n_j;
        let r_j = successes as f64 / n_j as f64;
        mean += p_stratum * r_j;
        variance += p_stratum * p_stratum * r_j * (1.0 - r_j) / n_j as f64;
    }
    StratifiedEstimate {
        mean,
        std_error: variance.sqrt(),
        strata: strata_count,
        samples: samples_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    /// s -e0- a -e1- t with an unreliable middle link: stratifying on e1
    /// removes most of the variance.
    fn chain() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.4).unwrap();
        b.build()
    }

    #[test]
    fn matches_exact_value() {
        let net = chain();
        let exact = 0.9 * 0.6;
        let e = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 20_000, 3);
        assert!(e.covers(exact), "stratified {:?} misses exact {exact}", e);
        assert_eq!(e.strata, 2);
    }

    #[test]
    fn stratifying_all_links_is_exact() {
        // every link a stratum link: nothing left to sample, zero variance
        let net = chain();
        let e = estimate_stratified(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &[EdgeId(0), EdgeId(1)],
            100,
            1,
        );
        assert!((e.mean - 0.9 * 0.6).abs() < 1e-12);
        assert_eq!(e.std_error, 0.0);
    }

    #[test]
    fn variance_not_worse_than_plain() {
        let net = chain();
        let plain = crate::estimate(&net, NodeId(0), NodeId(2), 1, 20_000, 9);
        let strat = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 20_000, 9);
        assert!(
            strat.std_error <= plain.std_error * 1.05,
            "stratified {} vs plain {}",
            strat.std_error,
            plain.std_error
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let net = chain();
        let a = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 5_000, 4);
        let b = estimate_stratified(&net, NodeId(0), NodeId(2), 1, &[EdgeId(1)], 5_000, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_strata() {
        let net = chain();
        estimate_stratified(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &[EdgeId(1), EdgeId(1)],
            100,
            1,
        );
    }

    #[test]
    fn perfect_strata_links_skip_impossible_strata() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap(); // never fails
        let net = b.build();
        let e = estimate_stratified(&net, NodeId(0), NodeId(1), 1, &[EdgeId(0)], 100, 1);
        assert_eq!(e.mean, 1.0);
        assert_eq!(e.std_error, 0.0);
    }
}
