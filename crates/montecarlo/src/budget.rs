//! Sampling budgets: wall-clock deadlines, per-run sample allowances, and
//! cooperative cancellation for the estimation engine.
//!
//! This mirrors `flowrel_core::Budget`, but stays independent of that crate
//! (the dependency points the other way: `core` wires its budget into this
//! one). The cancellation flag is a bare `Arc<AtomicBool>` so any caller —
//! core's `CancelToken`, a signal handler bridge, a test — can share one.
//!
//! A budget never changes *what* the engine computes, only *how far* it gets
//! before handing back a checkpoint: the sequence of batches, their RNG
//! streams, and the stopping decision are functions of the
//! [`crate::engine::McSettings`] alone, so an interrupted-and-resumed run
//! reproduces the uninterrupted estimate bit for bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one estimation run. The default is unlimited.
#[derive(Clone, Debug, Default)]
pub struct McBudget {
    /// Wall-clock limit, measured from [`McBudget::start`].
    pub time_limit: Option<Duration>,
    /// Maximum samples to draw *in this run* (an interrupted run's resume
    /// gets a fresh allowance, matching the exact sweeps' `max_configs`).
    pub max_samples: Option<u64>,
    /// Cooperative cancellation flag (e.g. shared with a Ctrl-C handler).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl McBudget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_samples.is_none() && self.cancel.is_none()
    }

    /// Arms the budget: the deadline clock starts now.
    pub fn start(&self) -> McSentinel {
        McSentinel {
            deadline: self.time_limit.map(|d| Instant::now() + d),
            max_samples: self.max_samples,
            cancel: self.cancel.clone(),
            trivial: self.is_unlimited(),
        }
    }
}

/// The armed form of an [`McBudget`], polled between sampling batches.
#[derive(Debug)]
pub struct McSentinel {
    deadline: Option<Instant>,
    max_samples: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    trivial: bool,
}

impl McSentinel {
    /// True when this sentinel can never interrupt.
    pub fn is_unlimited(&self) -> bool {
        self.trivial
    }

    /// Whether a stop has been requested by the deadline or the cancellation
    /// flag.
    pub fn interrupted(&self) -> bool {
        if self.trivial {
            return false;
        }
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Whether `drawn` samples exhaust this run's sample allowance.
    pub fn samples_exhausted(&self, drawn: u64) -> bool {
        self.max_samples.is_some_and(|m| drawn >= m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let s = McBudget::unlimited().start();
        assert!(s.is_unlimited());
        assert!(!s.interrupted());
        assert!(!s.samples_exhausted(u64::MAX));
    }

    #[test]
    fn cancel_flag_interrupts() {
        let flag = Arc::new(AtomicBool::new(false));
        let s = McBudget {
            cancel: Some(flag.clone()),
            ..Default::default()
        }
        .start();
        assert!(!s.interrupted());
        flag.store(true, Ordering::Relaxed);
        assert!(s.interrupted());
    }

    #[test]
    fn expired_deadline_interrupts() {
        let s = McBudget {
            time_limit: Some(Duration::from_secs(0)),
            ..Default::default()
        }
        .start();
        assert!(s.interrupted());
    }

    #[test]
    fn sample_allowance_is_per_run() {
        let s = McBudget {
            max_samples: Some(100),
            ..Default::default()
        }
        .start();
        assert!(!s.samples_exhausted(99));
        assert!(s.samples_exhausted(100));
        assert!(
            !s.interrupted(),
            "sample cap is not a time/cancel interrupt"
        );
    }
}
