//! The budget-aware estimation engine.
//!
//! [`run`] drives one of three estimators — crude sampling, the conditional
//! **dagger** sampler over bottleneck-link strata ([`crate::stratified`]),
//! or the **permutation** rare-event estimator ([`crate::pmc`]) — in
//! deterministic batches until a stopping target is met, the sample cap is
//! reached, or the [`McBudget`] interrupts. An interrupted run returns an
//! honest partial estimate *and* a [`McCheckpoint`]; [`resume`] continues it
//! **bit-identically**: the final report of interrupt-and-resume equals the
//! uninterrupted run's, because
//!
//! * batch `b` always draws from the RNG stream
//!   `stream_seed(seed, ENGINE | b)`, independent of scheduling;
//! * the stopping rule is evaluated after every batch *in batch order*, so
//!   the stop point is a function of the settings alone (parallel waves are
//!   speculative — batches past the stop point are discarded unmerged);
//! * permutation sums are folded with Neumaier compensation in batch order.
//!
//! Exact classification shortcuts resolve trivial regimes without sampling:
//! a dagger plan whose every stratum is monotonically decided returns the
//! exact reliability outright, and the permutation plan recognizes `R = 1` /
//! `R = 0` instances from two flow evaluations.
//!
//! **Multi-state networks** (links carrying capacity spectra) are supported
//! by the crude and permutation estimators, which sample over the network's
//! tranche expansion: crude draws each link's state from its spectrum
//! (one categorical draw per link), permutation runs Botev's
//! capacity-ordered construction process with one repair clock per capacity
//! tranche (see [`crate::pmc`]). The dagger estimator refuses multi-state
//! networks — its strata conditioning is inherently binary. All-binary
//! networks take exactly the legacy code paths, so existing results and
//! checkpoints are bit-identical.

use maxflow::{build_flow, SolverKind, Workspace};
use netgraph::{EdgeId, EdgeMask, Network, NodeId, StateExpansion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::budget::{McBudget, McSentinel};
use crate::error::McError;
use crate::pmc::{MultiPermPlan, PermPlan};
use crate::stratified::StrataPlan;
use crate::{effective_n, stream_seed, wilson_half, wilson_interval, STREAM_ENGINE, Z95};

/// Which estimator the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Let the caller pick: `core` resolves this to [`EstimatorKind::Dagger`]
    /// when a bottleneck is found and [`EstimatorKind::Permutation`]
    /// otherwise. The engine itself rejects `Auto`.
    #[default]
    Auto,
    /// Independent 0/1 samples of the full configuration space.
    Crude,
    /// Conditional sampling stratified on the configured strata links, with
    /// monotone strata resolved exactly.
    Dagger,
    /// Permutation (turnip) estimator for the rare-event regime.
    Permutation,
}

impl EstimatorKind {
    /// Stable lowercase name, used in reports and checkpoints.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Auto => "auto",
            EstimatorKind::Crude => "crude",
            EstimatorKind::Dagger => "dagger",
            EstimatorKind::Permutation => "perm",
        }
    }

    /// Parses [`EstimatorKind::name`] back.
    pub fn from_name(name: &str) -> Option<EstimatorKind> {
        match name {
            "auto" => Some(EstimatorKind::Auto),
            "crude" => Some(EstimatorKind::Crude),
            "dagger" => Some(EstimatorKind::Dagger),
            "perm" => Some(EstimatorKind::Permutation),
            _ => None,
        }
    }
}

/// When to stop sampling. Targets combine conjunctively: sampling continues
/// until every configured target is met (or `max_samples` is reached).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopTarget {
    /// Stop when the 95% half-width is at most `rel_err · min(R̂, 1−R̂)` —
    /// relative to the *smaller* tail, which is what rare-event estimation
    /// is about. Unreachable while the estimate sits exactly on 0 or 1.
    pub rel_err: Option<f64>,
    /// Stop when the 95% half-width is at most this absolute value.
    pub ci_half: Option<f64>,
    /// Hard sample cap; the run finishes with an honest interval when the
    /// cap is reached before the targets.
    pub max_samples: u64,
}

impl Default for StopTarget {
    fn default() -> Self {
        StopTarget {
            rel_err: None,
            ci_half: None,
            max_samples: 1_000_000,
        }
    }
}

/// Full, checkpointable description of one estimation experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct McSettings {
    /// Base RNG seed; all batch streams are derived from it.
    pub seed: u64,
    /// Which estimator to run.
    pub estimator: EstimatorKind,
    /// Strata links for [`EstimatorKind::Dagger`] (ignored by the others).
    pub strata: Vec<EdgeId>,
    /// Stopping targets.
    pub target: StopTarget,
    /// Samples per batch (the granularity of stopping, budgeting, and
    /// parallel dispatch).
    pub batch: u64,
    /// Max-flow algorithm used for feasibility checks.
    pub solver: SolverKind,
}

impl Default for McSettings {
    fn default() -> Self {
        McSettings {
            seed: 0,
            estimator: EstimatorKind::Crude,
            strata: Vec::new(),
            target: StopTarget::default(),
            batch: 1024,
            solver: SolverKind::Dinic,
        }
    }
}

/// Result of an estimation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McReport {
    /// Reliability estimate.
    pub mean: f64,
    /// Standard error of the estimate (0 when `exact`).
    pub std_error: f64,
    /// Lower end of the 95% Wilson interval.
    pub ci_low: f64,
    /// Upper end of the 95% Wilson interval.
    pub ci_high: f64,
    /// Samples drawn (0 when the answer was classified exactly).
    pub samples: u64,
    /// Max-flow evaluations spent, classification included.
    pub flow_evals: u64,
    /// Name of the estimator that produced the report.
    pub estimator: &'static str,
    /// True when the value is exact (classification resolved everything);
    /// the interval is then the point itself.
    pub exact: bool,
}

/// What a run produced.
#[derive(Clone, Debug, PartialEq)]
pub enum McOutcome {
    /// The stopping rule (or the sample cap) was reached.
    Done(McReport),
    /// The budget interrupted the run; `report` is the honest partial
    /// estimate so far and `checkpoint` resumes it bit-identically.
    Interrupted {
        /// Estimate from the samples drawn before the interrupt.
        report: McReport,
        /// Resumable state.
        checkpoint: McCheckpoint,
    },
}

impl McOutcome {
    /// The report, complete or partial.
    pub fn report(&self) -> &McReport {
        match self {
            McOutcome::Done(r) => r,
            McOutcome::Interrupted { report, .. } => report,
        }
    }
}

/// Estimator-specific sufficient statistics, exactly as checkpointed.
#[derive(Clone, Debug, PartialEq)]
pub enum McAccum {
    /// Crude: success count.
    Counts {
        /// Successful samples so far.
        successes: u64,
    },
    /// Dagger: per-mixed-stratum `(successes, samples)`, in plan order.
    Strata {
        /// One entry per mixed stratum.
        counts: Vec<(u64, u64)>,
    },
    /// Permutation: Neumaier-compensated `Σx` and `Σx²` as
    /// `(sum, compensation)` pairs.
    Perm {
        /// Compensated running sum of the conditional unreliabilities.
        sum: (f64, f64),
        /// Compensated running sum of their squares.
        sum_sq: (f64, f64),
    },
}

/// Resumable engine state: settings plus sufficient statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct McCheckpoint {
    /// The experiment being resumed (never changes across resumes).
    pub settings: McSettings,
    /// Next batch index to draw.
    pub next_batch: u64,
    /// Samples merged so far.
    pub samples: u64,
    /// Flow evaluations spent so far (classification included).
    pub flow_evals: u64,
    /// Estimator statistics.
    pub accum: McAccum,
}

fn neumaier_add(acc: &mut (f64, f64), x: f64) {
    let (sum, comp) = *acc;
    let t = sum + x;
    let c = if sum.abs() >= x.abs() {
        (sum - t) + x
    } else {
        (x - t) + sum
    };
    *acc = (t, comp + c);
}

fn neumaier_value(acc: (f64, f64)) -> f64 {
    acc.0 + acc.1
}

fn validate(settings: &McSettings) -> Result<(), McError> {
    if settings.estimator == EstimatorKind::Auto {
        return Err(McError::BadParameter {
            what: "estimator",
            reason: "Auto must be resolved to a concrete estimator by the caller".into(),
        });
    }
    if settings.batch == 0 {
        return Err(McError::BadParameter {
            what: "batch",
            reason: "batch size must be at least 1".into(),
        });
    }
    if settings.target.max_samples == 0 {
        return Err(McError::NoSamples);
    }
    for (name, v) in [
        ("rel_err", settings.target.rel_err),
        ("ci_half", settings.target.ci_half),
    ] {
        if let Some(v) = v {
            if !v.is_finite() || v <= 0.0 {
                return Err(McError::BadParameter {
                    what: name,
                    reason: format!("want a finite positive value, got {v}"),
                });
            }
        }
    }
    Ok(())
}

/// Estimator context: the validated plan each batch samples from.
///
/// Multi-state networks get their own crude and permutation variants that
/// sample over the tranche expansion; all-binary networks take the original
/// variants bit-for-bit, so legacy results and checkpoints are unchanged.
enum Ctx {
    Crude {
        m: usize,
        probs: Vec<f64>,
    },
    /// Crude over a multi-state network: one categorical state draw per
    /// digit (inverse CDF), mapped onto tranche-arc bits of the expansion.
    CrudeMulti {
        x: StateExpansion,
        /// Per-digit cumulative state probabilities, ascending by capacity.
        cdfs: Vec<Vec<f64>>,
    },
    Dagger {
        plan: StrataPlan,
    },
    Perm {
        plan: PermPlan,
    },
    /// Permutation over a multi-state network: capacity-ordered
    /// construction process with one repair clock per tranche gate.
    PermMulti {
        plan: MultiPermPlan,
    },
}

impl Ctx {
    fn build(
        net: &Network,
        s: NodeId,
        t: NodeId,
        demand: u64,
        settings: &McSettings,
    ) -> Result<(Ctx, u64), McError> {
        match settings.estimator {
            EstimatorKind::Auto => Err(McError::BadParameter {
                what: "estimator",
                reason: "Auto must be resolved to a concrete estimator by the caller".into(),
            }),
            EstimatorKind::Crude => {
                if net.has_multistate() {
                    let x = crate::expand_multistate(net)?;
                    crate::check_edges(&x.net)?;
                    let cdfs = x
                        .digits
                        .iter()
                        .map(|d| {
                            let mut acc = 0.0f64;
                            d.probs
                                .iter()
                                .map(|&p| {
                                    acc += p;
                                    acc
                                })
                                .collect()
                        })
                        .collect();
                    return Ok((Ctx::CrudeMulti { x, cdfs }, 0));
                }
                let m = crate::check_edges(net)?;
                let probs = net.edges().iter().map(|e| e.fail_prob).collect();
                Ok((Ctx::Crude { m, probs }, 0))
            }
            EstimatorKind::Dagger => {
                if net.has_multistate() {
                    return Err(McError::MultiState {
                        operation: "the dagger (stratified) estimator",
                    });
                }
                let plan = StrataPlan::build(net, s, t, demand, &settings.strata, settings.solver)?;
                let evals = plan.classify_evals;
                Ok((Ctx::Dagger { plan }, evals))
            }
            EstimatorKind::Permutation => {
                if net.has_multistate() {
                    let plan = MultiPermPlan::build(net, s, t, demand, settings.solver)?;
                    let evals = plan.classify_evals;
                    return Ok((Ctx::PermMulti { plan }, evals));
                }
                let plan = PermPlan::build(net, s, t, demand, settings.solver)?;
                let evals = plan.classify_evals;
                Ok((Ctx::Perm { plan }, evals))
            }
        }
    }

    fn estimator_name(&self) -> &'static str {
        match self {
            Ctx::Crude { .. } | Ctx::CrudeMulti { .. } => "crude",
            Ctx::Dagger { .. } => "dagger",
            Ctx::Perm { .. } | Ctx::PermMulti { .. } => "perm",
        }
    }

    /// An exact answer available without sampling, if any.
    fn exact_shortcut(&self, demand: u64) -> Option<f64> {
        if demand == 0 {
            return Some(1.0);
        }
        match self {
            Ctx::Crude { .. } | Ctx::CrudeMulti { .. } => None,
            Ctx::Dagger { plan } => plan.mixed.is_empty().then_some(plan.exact_mass),
            Ctx::Perm { plan } => {
                if plan.trivially_up {
                    Some(1.0)
                } else if plan.never_up {
                    Some(0.0)
                } else {
                    None
                }
            }
            Ctx::PermMulti { plan } => {
                if plan.trivially_up {
                    Some(1.0)
                } else if plan.never_up {
                    Some(0.0)
                } else {
                    None
                }
            }
        }
    }

    fn fresh_accum(&self) -> McAccum {
        match self {
            Ctx::Crude { .. } | Ctx::CrudeMulti { .. } => McAccum::Counts { successes: 0 },
            Ctx::Dagger { plan } => McAccum::Strata {
                counts: vec![(0, 0); plan.mixed.len()],
            },
            Ctx::Perm { .. } | Ctx::PermMulti { .. } => McAccum::Perm {
                sum: (0.0, 0.0),
                sum_sq: (0.0, 0.0),
            },
        }
    }

    fn accum_matches(&self, accum: &McAccum) -> bool {
        match (self, accum) {
            (Ctx::Crude { .. } | Ctx::CrudeMulti { .. }, McAccum::Counts { .. }) => true,
            (Ctx::Dagger { plan }, McAccum::Strata { counts }) => counts.len() == plan.mixed.len(),
            (Ctx::Perm { .. } | Ctx::PermMulti { .. }, McAccum::Perm { .. }) => true,
            _ => false,
        }
    }

    /// Draws batch `b` (quota samples) on its own RNG stream and flow graph.
    #[allow(clippy::too_many_arguments)]
    fn compute_batch(
        &self,
        net: &Network,
        s: NodeId,
        t: NodeId,
        demand: u64,
        settings: &McSettings,
        b: u64,
        quota: u64,
    ) -> BatchOut {
        let mut rng = StdRng::seed_from_u64(stream_seed(settings.seed, STREAM_ENGINE | b));
        // multi-state variants sample over the tranche expansion, whose arcs
        // the masks and revivals below index; the node ids are shared
        let flow_net = match self {
            Ctx::CrudeMulti { x, .. } => &x.net,
            Ctx::PermMulti { plan } => &plan.x.net,
            _ => net,
        };
        let mut nf = build_flow(flow_net, s, t);
        let mut ws = Workspace::new();
        let solver = settings.solver;
        let mut evals = 0u64;
        match self {
            Ctx::Crude { m, probs } => {
                let mut successes = 0u64;
                for _ in 0..quota {
                    let mut bits = 0u64;
                    for (i, &p) in probs.iter().enumerate() {
                        if rng.gen::<f64>() >= p {
                            bits |= 1 << i;
                        }
                    }
                    nf.apply_mask(EdgeMask::from_bits(bits, *m));
                    evals += 1;
                    if solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
                    {
                        successes += 1;
                    }
                }
                BatchOut::Counts {
                    successes,
                    samples: quota,
                    evals,
                }
            }
            Ctx::CrudeMulti { x, cdfs } => {
                let m = x.net.edge_count();
                let mut successes = 0u64;
                for _ in 0..quota {
                    let mut bits = x.pinned;
                    for (d, cdf) in x.digits.iter().zip(cdfs) {
                        // one categorical draw per link: the smallest state
                        // whose cumulative probability exceeds the uniform
                        let u: f64 = rng.gen();
                        let mut v = 0usize;
                        while v + 1 < d.radix && u >= cdf[v] {
                            v += 1;
                        }
                        bits |= d.value_bits(v);
                    }
                    nf.apply_mask(EdgeMask::from_bits(bits, m));
                    evals += 1;
                    if solver.solve_ws(&mut nf.graph, nf.source, nf.sink, demand, &mut ws) >= demand
                    {
                        successes += 1;
                    }
                }
                BatchOut::Counts {
                    successes,
                    samples: quota,
                    evals,
                }
            }
            Ctx::Dagger { plan } => {
                let alloc = plan.alloc(quota);
                let mut counts = Vec::with_capacity(alloc.len());
                let mut samples = 0u64;
                for (j, &n_j) in alloc.iter().enumerate() {
                    let succ = plan.sample_stratum(
                        j, n_j, demand, solver, &mut nf, &mut ws, &mut rng, &mut evals,
                    );
                    counts.push((succ, n_j));
                    samples += n_j;
                }
                BatchOut::Strata {
                    counts,
                    samples,
                    evals,
                }
            }
            Ctx::Perm { plan } => {
                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                for _ in 0..quota {
                    let x = plan.sample_one(demand, solver, &mut nf, &mut ws, &mut rng, &mut evals);
                    sum += x;
                    sum_sq += x * x;
                }
                BatchOut::Perm {
                    sum,
                    sum_sq,
                    samples: quota,
                    evals,
                }
            }
            Ctx::PermMulti { plan } => {
                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                for _ in 0..quota {
                    let x = plan.sample_one(demand, solver, &mut nf, &mut ws, &mut rng, &mut evals);
                    sum += x;
                    sum_sq += x * x;
                }
                BatchOut::Perm {
                    sum,
                    sum_sq,
                    samples: quota,
                    evals,
                }
            }
        }
    }
}

/// One batch's contribution, merged strictly in batch order.
enum BatchOut {
    Counts {
        successes: u64,
        samples: u64,
        evals: u64,
    },
    Strata {
        counts: Vec<(u64, u64)>,
        samples: u64,
        evals: u64,
    },
    Perm {
        sum: f64,
        sum_sq: f64,
        samples: u64,
        evals: u64,
    },
}

struct Drive<'a> {
    net: &'a Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    settings: &'a McSettings,
    ctx: Ctx,
    accum: McAccum,
    samples: u64,
    flow_evals: u64,
    next_batch: u64,
}

impl Drive<'_> {
    fn quota(&self, b: u64) -> u64 {
        let max = self.settings.target.max_samples;
        let before = b.saturating_mul(self.settings.batch);
        if before >= max {
            0
        } else {
            self.settings.batch.min(max - before)
        }
    }

    fn merge(&mut self, out: BatchOut) {
        match (&mut self.accum, out) {
            (
                McAccum::Counts { successes },
                BatchOut::Counts {
                    successes: s,
                    samples,
                    evals,
                },
            ) => {
                *successes += s;
                self.samples += samples;
                self.flow_evals += evals;
            }
            (
                McAccum::Strata { counts },
                BatchOut::Strata {
                    counts: c,
                    samples,
                    evals,
                },
            ) => {
                for (acc, add) in counts.iter_mut().zip(c) {
                    acc.0 += add.0;
                    acc.1 += add.1;
                }
                self.samples += samples;
                self.flow_evals += evals;
            }
            (
                McAccum::Perm { sum, sum_sq },
                BatchOut::Perm {
                    sum: s,
                    sum_sq: s2,
                    samples,
                    evals,
                },
            ) => {
                neumaier_add(sum, s);
                neumaier_add(sum_sq, s2);
                self.samples += samples;
                self.flow_evals += evals;
            }
            // accum shape is fixed at construction; batches always match
            _ => {}
        }
    }

    /// Current `(mean, std_error)`, or `None` before any sample.
    fn stats(&self) -> Option<(f64, f64)> {
        if self.samples == 0 {
            return None;
        }
        match (&self.accum, &self.ctx) {
            (McAccum::Counts { successes }, _) => {
                let n = self.samples as f64;
                let mean = *successes as f64 / n;
                Some((mean, (mean * (1.0 - mean) / n).sqrt()))
            }
            (McAccum::Strata { counts }, Ctx::Dagger { plan }) => {
                let mut mean = plan.exact_mass;
                let mut variance = 0.0f64;
                for (st, &(succ, n_j)) in plan.mixed.iter().zip(counts) {
                    if n_j == 0 {
                        return None; // cannot happen: every batch covers all strata
                    }
                    let n = n_j as f64;
                    mean += st.p * succ as f64 / n;
                    // Wilson-smoothed per-stratum rate so an all-0/all-1
                    // stratum still contributes stopping variance
                    let r = (succ as f64 + 2.0) / (n + 4.0);
                    variance += st.p * st.p * r * (1.0 - r) / n;
                }
                Some((mean, variance.sqrt()))
            }
            (McAccum::Perm { sum, sum_sq }, _) => {
                let n = self.samples as f64;
                let q_mean = neumaier_value(*sum) / n;
                let var = if self.samples < 2 {
                    q_mean * (1.0 - q_mean) // fall back to the Bernoulli bound
                } else {
                    (neumaier_value(*sum_sq) - n * q_mean * q_mean).max(0.0) / (n - 1.0)
                };
                Some(((1.0 - q_mean).clamp(0.0, 1.0), (var / n).sqrt()))
            }
            _ => None,
        }
    }

    fn target_met(&self) -> bool {
        let target = &self.settings.target;
        if target.rel_err.is_none() && target.ci_half.is_none() {
            return false;
        }
        let Some((mean, se)) = self.stats() else {
            return false;
        };
        let half = wilson_half(mean, effective_n(mean, self.samples, se), Z95);
        if let Some(c) = target.ci_half {
            if half > c {
                return false;
            }
        }
        if let Some(r) = target.rel_err {
            let scale = mean.min(1.0 - mean);
            if !scale.is_finite() || scale <= 0.0 || half > r * scale {
                return false;
            }
        }
        true
    }

    fn report(&self) -> McReport {
        match self.stats() {
            Some((mean, se)) => {
                let (lo, hi) = wilson_interval(mean, effective_n(mean, self.samples, se), Z95);
                McReport {
                    mean,
                    std_error: se,
                    ci_low: lo,
                    ci_high: hi,
                    samples: self.samples,
                    flow_evals: self.flow_evals,
                    estimator: self.ctx.estimator_name(),
                    exact: false,
                }
            }
            // interrupted before the first batch: total ignorance, honestly
            None => McReport {
                mean: 0.0,
                std_error: 0.0,
                ci_low: 0.0,
                ci_high: 1.0,
                samples: 0,
                flow_evals: self.flow_evals,
                estimator: self.ctx.estimator_name(),
                exact: false,
            },
        }
    }

    fn checkpoint(&self) -> McCheckpoint {
        McCheckpoint {
            settings: self.settings.clone(),
            next_batch: self.next_batch,
            samples: self.samples,
            flow_evals: self.flow_evals,
            accum: self.accum.clone(),
        }
    }

    fn run(mut self, sentinel: &McSentinel, parallel: bool) -> McOutcome {
        let wave = if parallel {
            (2 * rayon::current_num_threads()).max(1)
        } else {
            1
        };
        let mut run_samples = 0u64;
        // re-check an already-satisfied target (e.g. a resumed checkpoint
        // taken at the cap) before drawing anything
        if self.target_met() || self.samples >= self.settings.target.max_samples {
            let report = self.report();
            return McOutcome::Done(report);
        }
        loop {
            if sentinel.interrupted() || sentinel.samples_exhausted(run_samples) {
                return McOutcome::Interrupted {
                    report: self.report(),
                    checkpoint: self.checkpoint(),
                };
            }
            let ids: Vec<u64> = (self.next_batch..self.next_batch + wave as u64)
                .filter(|&b| self.quota(b) > 0)
                .collect();
            if ids.is_empty() {
                return McOutcome::Done(self.report());
            }
            let outs: Vec<BatchOut> = if parallel {
                let ctx = &self.ctx;
                let (net, s, t, demand, settings) =
                    (self.net, self.s, self.t, self.demand, self.settings);
                let quotas: Vec<(u64, u64)> = ids.iter().map(|&b| (b, self.quota(b))).collect();
                quotas
                    .into_par_iter()
                    .map(|(b, q)| ctx.compute_batch(net, s, t, demand, settings, b, q))
                    .collect_vec()
            } else {
                ids.iter()
                    .map(|&b| {
                        self.ctx.compute_batch(
                            self.net,
                            self.s,
                            self.t,
                            self.demand,
                            self.settings,
                            b,
                            self.quota(b),
                        )
                    })
                    .collect()
            };
            for out in outs {
                let before = self.samples;
                self.merge(out);
                run_samples += self.samples - before;
                self.next_batch += 1;
                if self.target_met() || self.samples >= self.settings.target.max_samples {
                    return McOutcome::Done(self.report());
                }
            }
        }
    }
}

fn exact_report(mean: f64, flow_evals: u64, estimator: &'static str) -> McReport {
    McReport {
        mean,
        std_error: 0.0,
        ci_low: mean,
        ci_high: mean,
        samples: 0,
        flow_evals,
        estimator,
        exact: true,
    }
}

/// Runs one estimation experiment under `budget`.
///
/// `parallel` fans batches out over rayon workers; serial and parallel runs
/// of the same settings produce the **same** outcome (batches are merged and
/// the stopping rule applied strictly in batch order).
pub fn run(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    settings: &McSettings,
    budget: &McBudget,
    parallel: bool,
) -> Result<McOutcome, McError> {
    validate(settings)?;
    let (ctx, classify_evals) = Ctx::build(net, s, t, demand, settings)?;
    if let Some(mean) = ctx.exact_shortcut(demand) {
        return Ok(McOutcome::Done(exact_report(
            mean,
            classify_evals,
            ctx.estimator_name(),
        )));
    }
    let accum = ctx.fresh_accum();
    let drive = Drive {
        net,
        s,
        t,
        demand,
        settings,
        ctx,
        accum,
        samples: 0,
        flow_evals: classify_evals,
        next_batch: 0,
    };
    Ok(drive.run(&budget.start(), parallel))
}

/// Resumes an interrupted run from its checkpoint, bit-identically: the
/// final report equals what the uninterrupted run would have produced
/// (plan classification is re-derived from the instance and not re-billed
/// to `flow_evals`).
pub fn resume(
    net: &Network,
    s: NodeId,
    t: NodeId,
    demand: u64,
    checkpoint: &McCheckpoint,
    budget: &McBudget,
    parallel: bool,
) -> Result<McOutcome, McError> {
    let settings = &checkpoint.settings;
    validate(settings)?;
    let (ctx, _) = Ctx::build(net, s, t, demand, settings)?;
    if ctx.exact_shortcut(demand).is_some() {
        return Err(McError::CheckpointMismatch {
            reason: "instance is exactly classifiable; no sampling checkpoint can refer to it"
                .into(),
        });
    }
    if !ctx.accum_matches(&checkpoint.accum) {
        return Err(McError::CheckpointMismatch {
            reason: "accumulator shape does not match the instance's sampling plan".into(),
        });
    }
    let max_per_batch = settings
        .batch
        .max(crate::stratified::MAX_STRATA_LINKS as u64 * 2);
    if checkpoint.samples
        > checkpoint
            .next_batch
            .saturating_mul(max_per_batch.saturating_mul(2))
        && checkpoint.next_batch > 0
    {
        return Err(McError::CheckpointMismatch {
            reason: format!(
                "{} samples cannot have come from {} batches of {}",
                checkpoint.samples, checkpoint.next_batch, settings.batch
            ),
        });
    }
    let drive = Drive {
        net,
        s,
        t,
        demand,
        settings,
        ctx,
        accum: checkpoint.accum.clone(),
        samples: checkpoint.samples,
        flow_evals: checkpoint.flow_evals,
        next_batch: checkpoint.next_batch,
    };
    Ok(drive.run(&budget.start(), parallel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn two_parallel(p: f64) -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, p).unwrap();
        b.add_edge(n[0], n[1], 1, p).unwrap();
        b.build()
    }

    fn settings(estimator: EstimatorKind, max_samples: u64) -> McSettings {
        McSettings {
            seed: 42,
            estimator,
            target: StopTarget {
                max_samples,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn rejects_auto_and_bad_targets() {
        let net = two_parallel(0.1);
        let bad = settings(EstimatorKind::Auto, 1000);
        assert!(matches!(
            run(
                &net,
                NodeId(0),
                NodeId(1),
                1,
                &bad,
                &McBudget::unlimited(),
                false
            ),
            Err(McError::BadParameter {
                what: "estimator",
                ..
            })
        ));
        let mut bad = settings(EstimatorKind::Crude, 1000);
        bad.target.rel_err = Some(-0.5);
        assert!(matches!(
            run(
                &net,
                NodeId(0),
                NodeId(1),
                1,
                &bad,
                &McBudget::unlimited(),
                false
            ),
            Err(McError::BadParameter {
                what: "rel_err",
                ..
            })
        ));
        let mut bad = settings(EstimatorKind::Crude, 1000);
        bad.batch = 0;
        assert!(run(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &bad,
            &McBudget::unlimited(),
            false
        )
        .is_err());
    }

    #[test]
    fn crude_engine_covers_truth_and_parallel_matches_serial() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Crude, 40_000);
        let a = run(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let b = run(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &s,
            &McBudget::unlimited(),
            true,
        )
        .unwrap();
        assert_eq!(a, b, "serial and parallel runs must agree bit for bit");
        let r = a.report();
        assert_eq!(r.samples, 40_000);
        assert!(r.ci_low <= 0.81 && 0.81 <= r.ci_high, "{r:?}");
        assert!(!r.exact);
    }

    #[test]
    fn dagger_classification_makes_simple_instances_exact() {
        // stratify on both links: every stratum is monotone-decided
        let net = two_parallel(0.1);
        let mut s = settings(EstimatorKind::Dagger, 10_000);
        s.strata = vec![EdgeId(0), EdgeId(1)];
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert!(r.exact);
        assert_eq!(r.samples, 0);
        assert!((r.mean - 0.99).abs() < 1e-12, "{r:?}");
        assert_eq!((r.ci_low, r.ci_high), (r.mean, r.mean));
    }

    #[test]
    fn dagger_samples_mixed_strata_and_covers() {
        // bridge s-a-t with parallel second path; stratify only on e0 so a
        // mixed stratum remains
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.3).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap();
        b.add_edge(n[0], n[2], 1, 0.3).unwrap();
        let net = b.build();
        // exact: R = P(direct) + P(!direct) * P(chain) = 0.7 + 0.3*0.49
        let exact = 0.7 + 0.3 * 0.49;
        let mut s = settings(EstimatorKind::Dagger, 40_000);
        s.strata = vec![EdgeId(2)];
        let out = run(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert!(!r.exact);
        // a fixed seed pins one sample path; assert a 4-sigma band rather
        // than 95% coverage so the test cannot flake on a 2-sigma draw
        assert!(
            (r.mean - exact).abs() <= 4.0 * r.std_error,
            "{} is too far from {exact} (se {})",
            r.mean,
            r.std_error
        );
        assert!(r.ci_high > r.ci_low);
    }

    #[test]
    fn perm_engine_covers_truth() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Permutation, 20_000);
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert!(r.ci_low <= 0.81 && 0.81 <= r.ci_high, "{r:?}");
        // PMC samples are smooth: the measured error should beat crude's
        assert!(
            r.std_error < (0.81f64 * 0.19 / 20_000.0).sqrt() * 1.05,
            "{r:?}"
        );
    }

    #[test]
    fn perm_engine_is_exact_on_trivial_instances() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Permutation, 1000);
        // demand 3 exceeds total capacity: R = 0 without sampling
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            3,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(out.report().mean, 0.0);
        assert!(out.report().exact);
        // demand 0: R = 1
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            0,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(out.report().mean, 1.0);
        assert!(out.report().exact);
    }

    #[test]
    fn rel_err_stopping_stops_early() {
        let net = two_parallel(0.1);
        let mut s = settings(EstimatorKind::Crude, 1_000_000);
        s.target.ci_half = Some(0.05);
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let McOutcome::Done(r) = out else {
            panic!("unlimited budget cannot interrupt")
        };
        assert!(r.samples < 1_000_000, "loose target must stop early: {r:?}");
        assert!((r.ci_high - r.ci_low) / 2.0 <= 0.05 * 1.01);
    }

    #[test]
    fn budget_interrupt_and_resume_is_bit_identical() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Crude, 30_000);
        let full = run(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();

        // interrupt after ~10k samples via the per-run sample allowance
        let small = McBudget {
            max_samples: Some(10_000),
            ..Default::default()
        };
        let out = run(&net, NodeId(0), NodeId(1), 2, &s, &small, false).unwrap();
        let McOutcome::Interrupted { report, checkpoint } = out else {
            panic!("10k allowance must interrupt a 30k run")
        };
        assert!(report.samples >= 10_000 && report.samples < 30_000);
        assert!(report.ci_high > report.ci_low, "partial interval is honest");

        // resume with no budget: must equal the uninterrupted run exactly
        let resumed = resume(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &checkpoint,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(resumed, full, "interrupt+resume must be bit-identical");
    }

    #[test]
    fn resume_rejects_mismatched_checkpoints() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Crude, 30_000);
        let small = McBudget {
            max_samples: Some(5_000),
            ..Default::default()
        };
        let out = run(&net, NodeId(0), NodeId(1), 2, &s, &small, false).unwrap();
        let McOutcome::Interrupted { mut checkpoint, .. } = out else {
            panic!("must interrupt")
        };
        // swap in an accumulator of the wrong shape
        checkpoint.accum = McAccum::Perm {
            sum: (0.0, 0.0),
            sum_sq: (0.0, 0.0),
        };
        let err = resume(
            &net,
            NodeId(0),
            NodeId(1),
            2,
            &checkpoint,
            &McBudget::unlimited(),
            false,
        );
        assert!(matches!(err, Err(McError::CheckpointMismatch { .. })));
    }

    #[test]
    fn zero_deadline_interrupts_before_sampling() {
        let net = two_parallel(0.1);
        let s = settings(EstimatorKind::Crude, 30_000);
        let budget = McBudget {
            time_limit: Some(std::time::Duration::from_secs(0)),
            ..Default::default()
        };
        let out = run(&net, NodeId(0), NodeId(1), 2, &s, &budget, false).unwrap();
        let McOutcome::Interrupted { report, checkpoint } = out else {
            panic!("zero deadline must interrupt")
        };
        assert_eq!(report.samples, 0);
        assert_eq!((report.ci_low, report.ci_high), (0.0, 1.0));
        assert_eq!(checkpoint.next_batch, 0);
    }

    /// A 3-state link `{0: 0.2, 1: 0.3, 2: 0.5}` in series with a binary
    /// link (cap 2, p = 0.1): R(d=1) = 0.8·0.9 = 0.72, R(d=2) = 0.5·0.9
    /// = 0.45.
    fn spectrum_series() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.add_edge(n[1], n[2], 2, 0.1).unwrap();
        b.build()
    }

    /// A single 3-state link `{0: 0.2, 1: 0.3, 2: 0.5}`: R(d=1) = 0.8.
    ///
    /// This instance distinguishes the prefix (capacity-ordered)
    /// construction from naively independent tranche gates: independent
    /// gates would give `P(cap ≥ 1) = 1 − 0.2·0.375 = 0.925`, not 0.8.
    fn spectrum_single() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.build()
    }

    #[test]
    fn crude_engine_samples_multistate_and_parallel_matches_serial() {
        let net = spectrum_series();
        let s = settings(EstimatorKind::Crude, 40_000);
        let a = run(
            &net,
            NodeId(0),
            NodeId(2),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let b = run(
            &net,
            NodeId(0),
            NodeId(2),
            2,
            &s,
            &McBudget::unlimited(),
            true,
        )
        .unwrap();
        assert_eq!(a, b, "serial and parallel runs must agree bit for bit");
        let r = a.report();
        assert_eq!(r.estimator, "crude");
        assert_eq!(r.samples, 40_000);
        assert!(r.ci_low <= 0.45 && 0.45 <= r.ci_high, "{r:?}");
        // and the d = 1 marginal is exact too (exercises the state CDF)
        let r1 = run(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r1 = r1.report();
        assert!(
            (r1.mean - 0.72).abs() <= 4.0 * r1.std_error.max(1e-9),
            "{r1:?}"
        );
    }

    #[test]
    fn perm_engine_respects_multistate_marginals() {
        // prefix construction: the estimate must center on R = 0.8, not the
        // independent-gate value 0.925
        let net = spectrum_single();
        let s = settings(EstimatorKind::Permutation, 20_000);
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert_eq!(r.estimator, "perm");
        assert!(!r.exact);
        assert!(r.ci_low <= 0.8 && 0.8 <= r.ci_high, "{r:?}");
        assert!(
            (r.mean - 0.8).abs() <= 4.0 * r.std_error.max(1e-9),
            "prefix semantics violated: {r:?}"
        );
        // the series instance at demand 2 (R = 0.45) exercises pending
        // gates across two digits
        let net = spectrum_series();
        let out = run(
            &net,
            NodeId(0),
            NodeId(2),
            2,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert!(
            (r.mean - 0.45).abs() <= 4.0 * r.std_error.max(1e-9),
            "{r:?}"
        );
    }

    #[test]
    fn perm_engine_classifies_multistate_extremes_exactly() {
        // nonzero floor: capacity ≥ 1 in every state, so d = 1 is certain
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(1, 0.5), (4, 0.5)])
            .unwrap();
        let net = b.build();
        let s = settings(EstimatorKind::Permutation, 1000);
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(out.report().mean, 1.0);
        assert!(out.report().exact);
        // demand above the best state: R = 0 without sampling
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            5,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(out.report().mean, 0.0);
        assert!(out.report().exact);
    }

    #[test]
    fn dagger_refuses_multistate_networks() {
        let net = spectrum_series();
        let mut s = settings(EstimatorKind::Dagger, 1000);
        s.strata = vec![EdgeId(1)];
        let err = run(
            &net,
            NodeId(0),
            NodeId(2),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        );
        assert!(matches!(err, Err(McError::MultiState { .. })), "{err:?}");
    }

    #[test]
    fn multistate_interrupt_and_resume_is_bit_identical() {
        let net = spectrum_series();
        for estimator in [EstimatorKind::Crude, EstimatorKind::Permutation] {
            let s = settings(estimator, 30_000);
            let full = run(
                &net,
                NodeId(0),
                NodeId(2),
                2,
                &s,
                &McBudget::unlimited(),
                false,
            )
            .unwrap();
            let small = McBudget {
                max_samples: Some(10_000),
                ..Default::default()
            };
            let out = run(&net, NodeId(0), NodeId(2), 2, &s, &small, false).unwrap();
            let McOutcome::Interrupted { checkpoint, .. } = out else {
                panic!("10k allowance must interrupt a 30k run")
            };
            let resumed = resume(
                &net,
                NodeId(0),
                NodeId(2),
                2,
                &checkpoint,
                &McBudget::unlimited(),
                false,
            )
            .unwrap();
            assert_eq!(
                resumed, full,
                "{estimator:?}: interrupt+resume must be bit-identical"
            );
        }
    }

    #[test]
    fn rare_event_perm_beats_crude_and_stays_honest() {
        // R = 1 - 1e-8; crude sees no failure in 20k samples
        let net = two_parallel(1e-4);
        let exact = 1.0 - 1e-8;
        let s = settings(EstimatorKind::Permutation, 20_000);
        let out = run(
            &net,
            NodeId(0),
            NodeId(1),
            1,
            &s,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let r = out.report();
        assert!(
            r.ci_low <= exact && exact <= r.ci_high,
            "[{}, {}] must cover {exact}",
            r.ci_low,
            r.ci_high
        );
        assert!(r.ci_high > r.ci_low, "never a zero-width interval");
        // the PMC point estimate nails Q to high relative accuracy
        assert!(
            ((1.0 - r.mean) - 1e-8).abs() < 1e-10,
            "Q estimate {} should be ~1e-8",
            1.0 - r.mean
        );
    }
}
