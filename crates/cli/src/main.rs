//! `flowrel` — command-line reliability calculator.
//!
//! ```text
//! flowrel compute <file.fnet> [--strategy auto|naive|factoring|bridge] [--exact]
//! flowrel analyze <file.fnet> [--max-k K]
//! flowrel mc <file.fnet> [--samples N] [--seed S]
//! flowrel generate <barbell|chain|grid|mesh> [args...]
//! flowrel dot <file.fnet>
//! ```

mod format;

use std::process::ExitCode;

use flowrel_core::{
    birnbaum_importance, enumerate_minimal_cuts, esary_proschan_bounds, find_bottleneck_set,
    reliability_bridge, reliability_naive_exact, reliability_sp_reduced, CalcOptions, FlowDemand,
    ReliabilityCalculator, Strategy,
};
use netgraph::find_bridges;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         flowrel compute <file.fnet> [--strategy auto|naive|factoring|bridge|sp] [--exact] [--parallel] [--no-certs]\n  \
         flowrel analyze <file.fnet> [--max-k K]\n  \
         flowrel importance <file.fnet>\n  \
         flowrel mc <file.fnet> [--samples N] [--seed S]\n  \
         flowrel generate barbell <cluster_nodes> <extra_edges> <k> <demand> <seed>\n  \
         flowrel generate chain <segments> <demand> <seed>\n  \
         flowrel generate grid <w> <h> <seed>\n  \
         flowrel generate mesh <peers> <neighbors> <rate> <seed>\n  \
         flowrel dot <file.fnet>"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load(path: &str) -> Result<format::NetFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn demand_of(file: &format::NetFile) -> Result<FlowDemand, String> {
    file.demand
        .ok_or_else(|| "the file has no 'demand' line".to_string())
}

fn cmd_compute(path: &str, args: &[String]) -> Result<(), String> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("auto") => Strategy::Auto,
        Some("naive") => Strategy::Naive,
        Some("factoring") => Strategy::Factoring,
        Some("bridge") => {
            let r = reliability_bridge(&file.net, demand, &CalcOptions::default())
                .map_err(|e| e.to_string())?;
            println!("reliability = {r:.12}  (bridge decomposition)");
            return Ok(());
        }
        Some("sp") => {
            let r = reliability_sp_reduced(&file.net, demand, &CalcOptions::default())
                .map_err(|e| e.to_string())?;
            println!("reliability = {r:.12}  (series-parallel reduction + factoring)");
            return Ok(());
        }
        Some(other) => return Err(format!("unknown strategy '{other}'")),
    };
    let opts = CalcOptions {
        parallel: args.iter().any(|a| a == "--parallel"),
        certificate_cache: !args.iter().any(|a| a == "--no-certs"),
        ..Default::default()
    };
    let report = ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(opts)
        .run(&file.net, demand)
        .map_err(|e| e.to_string())?;
    println!(
        "reliability = {:.12}  (via {})",
        report.reliability, report.algorithm
    );
    if let Some(b) = report.bottleneck {
        println!(
            "bottleneck: {:?}  |E_s|={} |E_t|={} alpha={:.3} |D|={}",
            b.set.edges, b.set.side_s_edges, b.set.side_t_edges, b.alpha, b.assignment_count
        );
        if b.sweep.configs > 0 {
            println!(
                "sweep: {} configs, {} solver calls, {} avoided by certificates ({:.1}% hit rate)",
                b.sweep.configs,
                b.sweep.solver_calls,
                b.sweep.solver_calls_avoided(),
                100.0 * b.sweep.hit_rate()
            );
        }
    }
    if args.iter().any(|a| a == "--exact") {
        let exact = reliability_naive_exact(&file.net, demand, &CalcOptions::default())
            .map_err(|e| e.to_string())?;
        println!("exact       = {exact}");
        println!("            = {}…", exact.to_decimal_string(15));
    }
    Ok(())
}

fn cmd_analyze(path: &str, args: &[String]) -> Result<(), String> {
    let file = load(path)?;
    let net = &file.net;
    println!(
        "{} network: {} nodes, {} links",
        match net.kind() {
            netgraph::GraphKind::Directed => "directed",
            netgraph::GraphKind::Undirected => "undirected",
        },
        net.node_count(),
        net.edge_count()
    );
    let bridges = find_bridges(net);
    println!("bridges: {bridges:?}");
    let Some(demand) = file.demand else {
        println!("(no demand line: skipping demand-specific analysis)");
        return Ok(());
    };
    let max_k: usize = flag_value(args, "--max-k")
        .map(|v| v.parse().map_err(|_| "bad --max-k".to_string()))
        .transpose()?
        .unwrap_or(3);
    let cut = maxflow::min_cut(net, demand.source, demand.sink, maxflow::SolverKind::Dinic);
    println!(
        "max flow {} -> {}: {} (min cut {:?})",
        demand.source, demand.sink, cut.value, cut.edges
    );
    match find_bottleneck_set(net, demand.source, demand.sink, max_k) {
        Ok(set) => println!(
            "best bottleneck set (k <= {max_k}): {:?}  |E_s|={} |E_t|={} alpha={:.3}",
            set.edges,
            set.side_s_edges,
            set.side_t_edges,
            set.alpha(net.edge_count())
        ),
        Err(e) => println!("bottleneck search: {e}"),
    }
    if demand.demand == 1 && net.edge_count() <= 20 {
        if let Ok((lo, hi)) = esary_proschan_bounds(net, demand, 100_000) {
            println!("Esary-Proschan bounds: [{lo:.6}, {hi:.6}]");
        }
        if let Ok(cuts) = enumerate_minimal_cuts(net, demand.source, demand.sink, 4) {
            println!("minimal cut sets (size <= 4): {}", cuts.len());
        }
    }
    Ok(())
}

fn cmd_mc(path: &str, args: &[String]) -> Result<(), String> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let samples: u64 = flag_value(args, "--samples")
        .map(|v| v.parse().map_err(|_| "bad --samples".to_string()))
        .transpose()?
        .unwrap_or(100_000);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let est = montecarlo::estimate(
        &file.net,
        demand.source,
        demand.sink,
        demand.demand,
        samples,
        seed,
    );
    let (lo, hi) = est.ci95();
    println!(
        "estimate = {:.6}  (95% CI [{lo:.6}, {hi:.6}], {} samples)",
        est.mean, est.samples
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let parse_or = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let (net, demand) = match args.first().map(String::as_str) {
        Some("barbell") => {
            let (inst, _) = workloads::generators::barbell(workloads::generators::BarbellParams {
                cluster_nodes: parse_or(1, 4) as usize,
                cluster_extra_edges: parse_or(2, 2) as usize,
                cut_links: parse_or(3, 2) as usize,
                cut_capacity: parse_or(4, 2),
                demand: parse_or(4, 2),
                seed: parse_or(5, 1),
            });
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("chain") => {
            let inst = workloads::generators::bridge_chain(
                parse_or(1, 3) as usize,
                parse_or(2, 1),
                parse_or(3, 1),
            );
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("grid") => {
            let inst = workloads::generators::grid(
                parse_or(1, 3) as usize,
                parse_or(2, 3) as usize,
                parse_or(3, 1),
            );
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("mesh") => {
            let peers: Vec<flowrel_overlay::Peer> = (0..parse_or(1, 8))
                .map(|i| flowrel_overlay::Peer::new(4, 300.0 + 60.0 * (i % 5) as f64))
                .collect();
            let sc = flowrel_overlay::random_mesh(
                &peers,
                parse_or(2, 2) as usize,
                parse_or(3, 1),
                &flowrel_overlay::ChurnModel::new(90.0),
                parse_or(4, 1),
            );
            let sub = *sc.peers.last().expect("peers");
            (sc.net, FlowDemand::new(sc.server, sub, sc.stream_rate))
        }
        _ => return Err("generate: expected barbell|chain|grid|mesh".to_string()),
    };
    print!("{}", format::serialize(&net, Some(demand)));
    Ok(())
}

fn cmd_importance(path: &str) -> Result<(), String> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let imp = birnbaum_importance(&file.net, demand, &CalcOptions::default())
        .map_err(|e| e.to_string())?;
    println!("reliability = {:.9}", imp.reliability);
    println!(
        "{:>6} {:>14} {:>12} {:>12}  link",
        "rank", "potential", "birnbaum", "p(e)"
    );
    for (rank, &e) in imp.ranked().iter().enumerate() {
        let edge = file.net.edge(netgraph::EdgeId::from(e));
        println!(
            "{:>6} {:>14.6} {:>12.6} {:>12.4}  e{e}: {} -> {}",
            rank + 1,
            imp.improvement[e],
            imp.birnbaum[e],
            edge.fail_prob,
            edge.src,
            edge.dst
        );
    }
    Ok(())
}

fn cmd_dot(path: &str) -> Result<(), String> {
    let file = load(path)?;
    print!("{}", netgraph::dot::to_dot(&file.net, &[]));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match (cmd.as_str(), rest.first()) {
        ("compute", Some(path)) => cmd_compute(path, &rest[1..]),
        ("analyze", Some(path)) => cmd_analyze(path, &rest[1..]),
        ("mc", Some(path)) => cmd_mc(path, &rest[1..]),
        ("importance", Some(path)) => cmd_importance(path),
        ("generate", _) => cmd_generate(rest),
        ("dot", Some(path)) => cmd_dot(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
