//! `flowrel` — command-line reliability calculator.
//!
//! ```text
//! flowrel compute <file.fnet> [--strategy auto|naive|factoring|bridge|sp|mc] [--exact]
//!                             [--timeout SECS] [--max-configs N]
//!                             [--max-depth N] [--explain] [--hybrid]
//!                             [--checkpoint PATH] [--resume PATH]
//!                             [--mc-estimator auto|crude|dagger|perm]
//!                             [--rel-err EPS] [--ci HALF] [--samples N] [--seed S]
//! flowrel analyze <file.fnet> [--max-k K]
//! flowrel mc <file.fnet> [--samples N] [--seed S]
//! flowrel generate <barbell|chain|grid|mesh|slack-barbell|degraded-barbell> [args...]
//! flowrel dot <file.fnet>
//! ```
//!
//! `--explain` prints the recursive decomposition plan (node kinds, per-node
//! link counts, predicted sweep cost) before the computation runs, and — when
//! the planner executed — a per-subtree accounting table afterwards showing
//! each leaf slot's apportioned budget share and its predicted vs. actual
//! sweep cost; `--max-depth` caps how many nested splits the planner may
//! stack (`0` forces the flat one-level decomposition).
//!
//! `--hybrid` (off by default) lets the plan interpreter place a Monte-Carlo
//! estimator at any scalar leaf whose predicted sweep cost exceeds the
//! configuration share its subtree was apportioned (`--max-configs` sets the
//! allowance). The answer is then *labelled*: `certified` when every leaf ran
//! exactly, `statistical` with a 95% interval as soon as any leaf sampled.
//! The sampling flags (`--seed`, `--samples`, `--rel-err`, `--ci`,
//! `--mc-estimator`) configure the leaf estimators; with `--explain`, the
//! accounting table marks sampled leaves `mc` and says why they sampled.
//!
//! ## Exit codes
//!
//! Every failure mode has its own status so scripts can branch without
//! parsing stderr: `2` usage, `3` file I/O, `4` file parse, `10`–`24` one
//! per [`flowrel_core::ReliabilityError`] variant (see [`CliError::from`]),
//! and `20` for an *incomplete* run — the budget ran out and a partial
//! result with rigorous bounds plus a checkpoint was produced. Monte-Carlo
//! runs use the same scheme: an interrupted estimation writes its checkpoint
//! and exits `20`; invalid sampling parameters exit `24`.

use std::process::ExitCode;
use std::time::Duration;

use flowrel_core::fnet as format;
use flowrel_core::{
    birnbaum_importance, enumerate_minimal_cuts, esary_proschan_bounds, find_bottleneck_set,
    reliability_bridge, reliability_naive_exact, reliability_sp_reduced, validate_bottleneck_set,
    Budget, CalcOptions, CancelToken, Checkpoint, DecompositionPlan, FlowDemand, Outcome,
    ReliabilityCalculator, ReliabilityError, Strategy,
};
use netgraph::find_bridges;

/// Exit status for a budget-limited run that produced bounds + checkpoint
/// instead of an exact value.
const EXIT_INCOMPLETE: u8 = 20;

/// An error annotated with the process exit status it maps to.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: 2,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> Self {
        CliError {
            code: 3,
            message: message.into(),
        }
    }

    fn parse(message: impl Into<String>) -> Self {
        CliError {
            code: 4,
            message: message.into(),
        }
    }
}

impl From<montecarlo::McError> for CliError {
    fn from(e: montecarlo::McError) -> Self {
        CliError::from(ReliabilityError::from(e))
    }
}

impl From<ReliabilityError> for CliError {
    fn from(e: ReliabilityError) -> Self {
        CliError {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         flowrel compute <file.fnet> [--strategy auto|naive|factoring|bridge|sp|mc] [--exact] [--parallel] [--no-certs]\n  \
         {:17}[--no-incremental] [--no-reduce] [--parallel-threshold N] [--timeout SECS] [--max-configs N]\n  \
         {:17}[--max-depth N] [--explain] [--hybrid] [--checkpoint PATH] [--resume PATH]\n  \
         {:17}[--mc-estimator auto|crude|dagger|perm] [--rel-err EPS] [--ci HALF] [--samples N] [--seed S]\n  \
         flowrel analyze <file.fnet> [--max-k K]\n  \
         flowrel importance <file.fnet>\n  \
         flowrel mc <file.fnet> [--samples N] [--seed S]\n  \
         flowrel generate barbell <cluster_nodes> <extra_edges> <k> <demand> <seed>\n  \
         flowrel generate chain <segments> <demand> <seed>\n  \
         flowrel generate grid <w> <h> <seed>\n  \
         flowrel generate mesh <peers> <neighbors> <rate> <seed>\n  \
         flowrel generate slack-barbell <segments> <spurs> <seed>\n  \
         flowrel generate degraded-barbell <cluster_nodes> <extra_edges> <k> <demand> <seed>\n  \
         flowrel dot <file.fnet>",
        "",
        "",
        ""
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load(path: &str) -> Result<format::NetFile, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    format::parse(&text).map_err(|e| CliError::parse(format!("{path}: {e}")))
}

fn demand_of(file: &format::NetFile) -> Result<FlowDemand, CliError> {
    file.demand
        .ok_or_else(|| CliError::parse("the file has no 'demand' line"))
}

/// Builds [`montecarlo::McSettings`] from the `--strategy mc` flags.
fn mc_settings(args: &[String]) -> Result<montecarlo::McSettings, CliError> {
    let estimator = match flag_value(args, "--mc-estimator").as_deref() {
        None => montecarlo::EstimatorKind::Auto,
        Some(name) => montecarlo::EstimatorKind::from_name(name)
            .ok_or_else(|| CliError::usage(format!("unknown --mc-estimator '{name}'")))?,
    };
    let positive = |flag: &'static str| -> Result<Option<f64>, CliError> {
        flag_value(args, flag)
            .map(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| CliError::usage(format!("bad {flag} (want a value > 0)")))
            })
            .transpose()
    };
    let max_samples = flag_value(args, "--samples")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::usage("bad --samples (want a count)"))
        })
        .transpose()?
        .unwrap_or(1_000_000);
    let seed = flag_value(args, "--seed")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::usage("bad --seed (want an integer)"))
        })
        .transpose()?
        .unwrap_or(0);
    Ok(montecarlo::McSettings {
        seed,
        estimator,
        target: montecarlo::StopTarget {
            rel_err: positive("--rel-err")?,
            ci_half: positive("--ci")?,
            max_samples,
        },
        ..Default::default()
    })
}

/// `--explain`: prints the decomposition plan the calculator will execute
/// for the bottleneck-planning strategies, or says why there is none.
/// Informational only — planning failures here never abort the computation.
fn explain(net: &netgraph::Network, demand: FlowDemand, strategy: &Strategy, opts: &CalcOptions) {
    if matches!(
        strategy,
        Strategy::Naive | Strategy::Factoring | Strategy::MonteCarlo(_)
    ) {
        println!("plan: not applicable ({strategy:?} does not use the decomposition planner)");
        return;
    }
    // Mirror the calculator: reduce first (when enabled), plan the remnant,
    // and render the plan wrapped in the reduction node so link references
    // read in the original numbering.
    let mut red = opts
        .reduce
        .then(|| flowrel_core::reduce(net, demand, true, opts.solver))
        .filter(|r| !r.is_identity());
    // An explicit cut arrives in original link ids; translate it into the
    // reduced id space, or drop the reduction when a referenced link no
    // longer exists (the calculator runs such strategies unreduced too).
    let cut = match strategy {
        Strategy::Bottleneck(cut) => Some(match &red {
            Some(r) => {
                let map = r.original_to_reduced();
                let mut translated = Vec::new();
                let ok = cut
                    .iter()
                    .all(|e| match map.get(e.index()).copied().flatten() {
                        Some(x) => {
                            if !translated.contains(&x) {
                                translated.push(x);
                            }
                            true
                        }
                        None => false,
                    });
                if ok {
                    translated
                } else {
                    red = None;
                    cut.clone()
                }
            }
            None => cut.clone(),
        }),
        _ => None,
    };
    if let Some(r) = &red {
        println!("{}", r.summary());
    }
    let (pnet, pdemand) = red.as_ref().map_or((net, demand), |r| (&r.net, r.demand));
    let max_k = match strategy {
        Strategy::BottleneckAuto { max_k } => *max_k,
        _ => 3,
    };
    let planned = match &cut {
        Some(c) => validate_bottleneck_set(pnet, pdemand.source, pdemand.sink, c)
            .and_then(|set| DecompositionPlan::plan_on_set(pnet, pdemand, &set, opts, max_k)),
        None => find_bottleneck_set(pnet, pdemand.source, pdemand.sink, max_k)
            .and_then(|set| DecompositionPlan::plan_on_set(pnet, pdemand, &set, opts, max_k)),
    };
    match planned {
        Ok(plan) => {
            let plan = match &red {
                Some(r) => plan.with_reduction(r),
                None => plan,
            };
            print!("{}", plan.render());
        }
        Err(e) => println!("plan: none ({e}); the strategy will fall back or fail accordingly"),
    }
}

/// `--explain`, after the run: per-leaf-slot accounting from the plan
/// interpreter — how the configuration budget was apportioned across the
/// subtrees and what each sweep actually cost compared to the planner's
/// prediction. Empty for one-level (non-planned) runs.
fn explain_slots(slots: &[flowrel_core::PlanSlotReport]) {
    if slots.is_empty() {
        return;
    }
    println!(
        "plan accounting: {} leaf slot{} (predicted = configs left at start; share = budget fraction granted)",
        slots.len(),
        if slots.len() == 1 { "" } else { "s" }
    );
    println!(
        "{:>6} {:>6} {:>12} {:>8} {:>12} {:>10}",
        "slot", "kind", "predicted", "share", "configs", "explored"
    );
    for s in slots {
        let share = if s.share > 0.0 {
            format!("{:.1}%", 100.0 * s.share)
        } else {
            "-".to_string()
        };
        println!(
            "{:>6} {:>6} {:>12.3e} {:>8} {:>12} {:>9.3}%",
            format!("#{}", s.index),
            s.kind,
            s.predicted,
            share,
            s.configs,
            100.0 * s.explored
        );
    }
    for s in slots.iter().filter(|s| s.kind == "mc") {
        println!(
            "slot #{} sampled: predicted exact cost {:.3e} configs exceeded its apportioned \
             budget share ({:.1}%), so the leaf ran the Monte-Carlo estimator instead \
             ({} samples drawn)",
            s.index,
            s.predicted,
            100.0 * s.share,
            s.configs
        );
    }
}

fn cmd_compute(path: &str, args: &[String]) -> Result<(), CliError> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("auto") => Strategy::Auto,
        Some("naive") => Strategy::Naive,
        Some("factoring") => Strategy::Factoring,
        Some("bridge") => {
            let r = reliability_bridge(&file.net, demand, &CalcOptions::default())?;
            println!("reliability = {r:.12}  (bridge decomposition)");
            return Ok(());
        }
        Some("sp") => {
            let r = reliability_sp_reduced(&file.net, demand, &CalcOptions::default())?;
            println!("reliability = {r:.12}  (series-parallel reduction + factoring)");
            return Ok(());
        }
        Some("mc") => Strategy::MonteCarlo(mc_settings(args)?),
        Some(other) => return Err(CliError::usage(format!("unknown strategy '{other}'"))),
    };
    let time_limit = flag_value(args, "--timeout")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0 && s.is_finite())
                .ok_or_else(|| CliError::usage("bad --timeout (want seconds > 0)"))
        })
        .transpose()?
        .map(Duration::from_secs_f64);
    let max_configs = flag_value(args, "--max-configs")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::usage("bad --max-configs (want a count)"))
        })
        .transpose()?;
    let checkpoint_path =
        flag_value(args, "--checkpoint").unwrap_or_else(|| format!("{path}.ckpt"));
    // Shared two-stage handler: first SIGINT/SIGTERM trips the token (the
    // sweep stops at a clean cursor and writes its checkpoint), the second
    // hard-exits 128+signo. Shared with flowrel-server so both binaries
    // behave identically under init systems and Ctrl-C alike.
    let cancel: CancelToken = flowrel_shutdown::ShutdownSignal::install().token();
    let parallel_threshold = flag_value(args, "--parallel-threshold")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::usage("bad --parallel-threshold (want a config count)"))
        })
        .transpose()?;
    let max_depth = flag_value(args, "--max-depth")
        .map(|v| {
            v.parse::<usize>().map_err(|_| {
                CliError::usage("bad --max-depth (want a depth, 0 disables recursion)")
            })
        })
        .transpose()?;
    let defaults = CalcOptions::default();
    let hybrid = args.iter().any(|a| a == "--hybrid");
    let opts = CalcOptions {
        parallel: args.iter().any(|a| a == "--parallel"),
        certificate_cache: !args.iter().any(|a| a == "--no-certs"),
        incremental: !args.iter().any(|a| a == "--no-incremental"),
        reduce: !args.iter().any(|a| a == "--no-reduce"),
        parallel_threshold: parallel_threshold.unwrap_or(defaults.parallel_threshold),
        max_depth: max_depth.unwrap_or(defaults.max_depth),
        hybrid,
        // the sampling flags double as the hybrid leaf-estimator settings
        hybrid_mc: if hybrid {
            mc_settings(args)?
        } else {
            defaults.hybrid_mc.clone()
        },
        budget: Budget {
            time_limit,
            max_configs,
            cancel: Some(cancel),
        },
        ..defaults
    };
    let calc = ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(opts);
    let explaining = args.iter().any(|a| a == "--explain");
    if explaining {
        explain(&file.net, demand, &calc.strategy, &calc.options);
    }
    let outcome = match flag_value(args, "--resume") {
        Some(ck_path) => {
            let text = std::fs::read_to_string(&ck_path)
                .map_err(|e| CliError::io(format!("{ck_path}: {e}")))?;
            let ck = Checkpoint::from_text(&text)?;
            calc.resume(&file.net, demand, &ck)?
        }
        None => calc.run(&file.net, demand)?,
    };
    let report = match outcome {
        Outcome::Complete(report) => report,
        Outcome::Partial(partial) => {
            std::fs::write(&checkpoint_path, partial.checkpoint.to_text())
                .map_err(|e| CliError::io(format!("{checkpoint_path}: {e}")))?;
            if explaining {
                if let Some(b) = &partial.bottleneck {
                    explain_slots(&b.plan_slots);
                }
            }
            if let Some(mc) = &partial.mc {
                println!(
                    "partial estimate: reliability in [{:.12}, {:.12}]  (via {}, 95% Wilson \
                     interval from {} samples — statistical, not certified)",
                    partial.r_low, partial.r_high, partial.algorithm, mc.samples
                );
            } else {
                println!(
                    "partial result: reliability in [{:.12}, {:.12}]  (via {}, {:.3}% of the \
                     configuration space explored)",
                    partial.r_low,
                    partial.r_high,
                    partial.algorithm,
                    100.0 * partial.explored
                );
            }
            println!("checkpoint written to {checkpoint_path}");
            println!("resume with: flowrel compute {path} --resume {checkpoint_path}");
            let quality = if partial.certified {
                "certified"
            } else {
                "statistical (95% Wilson)"
            };
            return Err(CliError {
                code: EXIT_INCOMPLETE,
                message: format!(
                    "incomplete: budget exhausted, bounds [{:.12}, {:.12}] {quality}",
                    partial.r_low, partial.r_high
                ),
            });
        }
    };
    println!(
        "reliability = {:.12}  (via {})",
        report.reliability, report.algorithm
    );
    if report.certified {
        println!("certainty   : certified (exact enumeration)");
    } else {
        println!(
            "certainty   : statistical — 95% interval [{:.12}, {:.12}]",
            report.interval.0, report.interval.1
        );
    }
    if let Some(b) = report.bottleneck {
        println!(
            "bottleneck: {:?}  |E_s|={} |E_t|={} alpha={:.3} |D|={}",
            b.set.edges, b.set.side_s_edges, b.set.side_t_edges, b.alpha, b.assignment_count
        );
        if b.sweep.configs > 0 {
            println!(
                "sweep: {} configs, {} solver calls, {} avoided by certificates ({:.1}% hit rate)",
                b.sweep.configs,
                b.sweep.solver_calls,
                b.sweep.solver_calls_avoided(),
                100.0 * b.sweep.hit_rate()
            );
        }
        if b.sweep.flips > 0 || b.sweep.full_resolves > 0 {
            println!(
                "warm repair: {} edge flips absorbed, {} paths cancelled, {} full re-solves",
                b.sweep.flips, b.sweep.repairs, b.sweep.full_resolves
            );
        }
        if explaining {
            explain_slots(&b.plan_slots);
        }
    }
    if let Some(mc) = report.mc {
        if mc.exact {
            println!(
                "mc: value classified exactly ({} flow evals, no sampling needed)",
                mc.flow_evals
            );
        } else {
            println!(
                "mc: 95% CI [{:.12}, {:.12}]  se={:.3e}  {} samples, {} flow evals",
                mc.ci_low, mc.ci_high, mc.std_error, mc.samples, mc.flow_evals
            );
        }
    }
    if args.iter().any(|a| a == "--exact") {
        let exact = reliability_naive_exact(&file.net, demand, &CalcOptions::default())?;
        println!("exact       = {exact}");
        println!("            = {}…", exact.to_decimal_string(15));
    }
    Ok(())
}

fn cmd_analyze(path: &str, args: &[String]) -> Result<(), CliError> {
    let file = load(path)?;
    let net = &file.net;
    println!(
        "{} network: {} nodes, {} links",
        match net.kind() {
            netgraph::GraphKind::Directed => "directed",
            netgraph::GraphKind::Undirected => "undirected",
        },
        net.node_count(),
        net.edge_count()
    );
    let bridges = find_bridges(net);
    println!("bridges: {bridges:?}");
    let Some(demand) = file.demand else {
        println!("(no demand line: skipping demand-specific analysis)");
        return Ok(());
    };
    let max_k: usize = flag_value(args, "--max-k")
        .map(|v| v.parse().map_err(|_| CliError::usage("bad --max-k")))
        .transpose()?
        .unwrap_or(3);
    let cut = maxflow::min_cut(net, demand.source, demand.sink, maxflow::SolverKind::Dinic);
    println!(
        "max flow {} -> {}: {} (min cut {:?})",
        demand.source, demand.sink, cut.value, cut.edges
    );
    match find_bottleneck_set(net, demand.source, demand.sink, max_k) {
        Ok(set) => println!(
            "best bottleneck set (k <= {max_k}): {:?}  |E_s|={} |E_t|={} alpha={:.3}",
            set.edges,
            set.side_s_edges,
            set.side_t_edges,
            set.alpha(net.edge_count())
        ),
        Err(e) => println!("bottleneck search: {e}"),
    }
    if demand.demand == 1 && net.edge_count() <= 20 {
        if let Ok((lo, hi)) = esary_proschan_bounds(net, demand, 100_000) {
            println!("Esary-Proschan bounds: [{lo:.6}, {hi:.6}]");
        }
        if let Ok(cuts) = enumerate_minimal_cuts(net, demand.source, demand.sink, 4) {
            println!("minimal cut sets (size <= 4): {}", cuts.len());
        }
    }
    Ok(())
}

fn cmd_mc(path: &str, args: &[String]) -> Result<(), CliError> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let samples: u64 = flag_value(args, "--samples")
        .map(|v| v.parse().map_err(|_| CliError::usage("bad --samples")))
        .transpose()?
        .unwrap_or(100_000);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| CliError::usage("bad --seed")))
        .transpose()?
        .unwrap_or(1);
    let est = montecarlo::estimate(
        &file.net,
        demand.source,
        demand.sink,
        demand.demand,
        samples,
        seed,
    )?;
    let (lo, hi) = est.ci95();
    println!(
        "estimate = {:.6}  (95% CI [{lo:.6}, {hi:.6}], {} samples)",
        est.mean, est.samples
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let parse_or = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let (net, demand) = match args.first().map(String::as_str) {
        Some("barbell") => {
            let (inst, _) = workloads::generators::barbell(workloads::generators::BarbellParams {
                cluster_nodes: parse_or(1, 4) as usize,
                cluster_extra_edges: parse_or(2, 2) as usize,
                cut_links: parse_or(3, 2) as usize,
                cut_capacity: parse_or(4, 2),
                demand: parse_or(4, 2),
                seed: parse_or(5, 1),
            });
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("chain") => {
            let inst = workloads::generators::bridge_chain(
                parse_or(1, 3) as usize,
                parse_or(2, 1),
                parse_or(3, 1),
            );
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("grid") => {
            let inst = workloads::generators::grid(
                parse_or(1, 3) as usize,
                parse_or(2, 3) as usize,
                parse_or(3, 1),
            );
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("mesh") => {
            let peers: Vec<flowrel_overlay::Peer> = (0..parse_or(1, 8))
                .map(|i| flowrel_overlay::Peer::new(4, 300.0 + 60.0 * (i % 5) as f64))
                .collect();
            let sc = flowrel_overlay::random_mesh(
                &peers,
                parse_or(2, 2) as usize,
                parse_or(3, 1),
                &flowrel_overlay::ChurnModel::new(90.0),
                parse_or(4, 1),
            );
            let Some(&sub) = sc.peers.last() else {
                return Err(CliError::usage("mesh: need at least one peer"));
            };
            (sc.net, FlowDemand::new(sc.server, sub, sc.stream_rate))
        }
        Some("slack-barbell") => {
            let inst = workloads::generators::slack_barbell(
                parse_or(1, 3) as usize,
                parse_or(2, 2) as usize,
                parse_or(3, 1),
            );
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        Some("degraded-barbell") => {
            let (inst, _) =
                workloads::generators::degraded_barbell(workloads::generators::BarbellParams {
                    cluster_nodes: parse_or(1, 4) as usize,
                    cluster_extra_edges: parse_or(2, 2) as usize,
                    cut_links: parse_or(3, 2) as usize,
                    cut_capacity: parse_or(4, 2),
                    demand: parse_or(4, 2),
                    seed: parse_or(5, 1),
                });
            (
                inst.net,
                FlowDemand::new(inst.source, inst.sink, inst.demand),
            )
        }
        _ => {
            return Err(CliError::usage(
                "generate: expected barbell|chain|grid|mesh|slack-barbell|degraded-barbell",
            ))
        }
    };
    print!("{}", format::serialize(&net, Some(demand)));
    Ok(())
}

fn cmd_importance(path: &str) -> Result<(), CliError> {
    let file = load(path)?;
    let demand = demand_of(&file)?;
    let imp = birnbaum_importance(&file.net, demand, &CalcOptions::default())?;
    println!("reliability = {:.9}", imp.reliability);
    println!(
        "{:>6} {:>14} {:>12} {:>12}  link",
        "rank", "potential", "birnbaum", "p(e)"
    );
    for (rank, &e) in imp.ranked().iter().enumerate() {
        let edge = file.net.edge(netgraph::EdgeId::from(e));
        println!(
            "{:>6} {:>14.6} {:>12.6} {:>12.4}  e{e}: {} -> {}",
            rank + 1,
            imp.improvement[e],
            imp.birnbaum[e],
            edge.fail_prob,
            edge.src,
            edge.dst
        );
    }
    Ok(())
}

fn cmd_dot(path: &str) -> Result<(), CliError> {
    let file = load(path)?;
    print!("{}", netgraph::dot::to_dot(&file.net, &[]));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match (cmd.as_str(), rest.first()) {
        ("compute", Some(path)) => cmd_compute(path, &rest[1..]),
        ("analyze", Some(path)) => cmd_analyze(path, &rest[1..]),
        ("mc", Some(path)) => cmd_mc(path, &rest[1..]),
        ("importance", Some(path)) => cmd_importance(path),
        ("generate", _) => cmd_generate(rest),
        ("dot", Some(path)) => cmd_dot(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
