//! End-to-end CLI checks through the library-level entry points the binary
//! uses: generate → serialize → parse → compute must agree with a direct
//! computation, for every generator the CLI exposes.

use flowrel_core::fnet as format;
use flowrel_core::{reliability_factoring, CalcOptions, FlowDemand, ReliabilityCalculator};

#[test]
fn generated_barbell_roundtrips_and_computes() {
    let (inst, _) = workloads::generators::barbell(workloads::generators::BarbellParams {
        cluster_nodes: 4,
        cluster_extra_edges: 2,
        cut_links: 2,
        cut_capacity: 2,
        demand: 2,
        seed: 7,
    });
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let text = format::serialize(&inst.net, Some(demand));
    let parsed = format::parse(&text).expect("roundtrip parse");
    let direct = ReliabilityCalculator::new()
        .run_complete(&inst.net, demand)
        .unwrap()
        .reliability;
    let via_file = ReliabilityCalculator::new()
        .run_complete(&parsed.net, parsed.demand.expect("demand survives"))
        .unwrap()
        .reliability;
    assert!((direct - via_file).abs() < 1e-12, "{direct} vs {via_file}");
}

#[test]
fn generated_degraded_barbell_roundtrips_and_computes() {
    // multi-state cut links: the serialized text carries 'spectrum' lines,
    // and the parsed instance computes the same (naive) answer
    let (inst, cut) =
        workloads::generators::degraded_barbell(workloads::generators::BarbellParams {
            cluster_nodes: 3,
            cluster_extra_edges: 1,
            cut_links: 2,
            cut_capacity: 2,
            demand: 2,
            seed: 7,
        });
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let text = format::serialize(&inst.net, Some(demand));
    assert!(text.contains("spectrum"), "{text}");
    let parsed = format::parse(&text).expect("roundtrip parse");
    for &e in &cut {
        assert_eq!(parsed.net.spectrum(e), inst.net.spectrum(e));
    }
    let naive = ReliabilityCalculator::new().with_strategy(flowrel_core::Strategy::Naive);
    let direct = naive.run_complete(&inst.net, demand).unwrap().reliability;
    let via_file = naive
        .run_complete(&parsed.net, parsed.demand.expect("demand survives"))
        .unwrap()
        .reliability;
    assert!((direct - via_file).abs() < 1e-12, "{direct} vs {via_file}");
}

#[test]
fn generated_grid_roundtrips() {
    let inst = workloads::generators::grid(3, 3, 5);
    let demand = FlowDemand::new(inst.source, inst.sink, 1);
    let text = format::serialize(&inst.net, Some(demand));
    let parsed = format::parse(&text).expect("roundtrip parse");
    assert_eq!(parsed.net.edge_count(), inst.net.edge_count());
    let a = reliability_factoring(&inst.net, demand, &CalcOptions::default()).unwrap();
    let b = reliability_factoring(&parsed.net, demand, &CalcOptions::default()).unwrap();
    assert!((a - b).abs() < 1e-12);
}

#[test]
fn generated_mesh_roundtrips() {
    let peers: Vec<flowrel_overlay::Peer> = (0..6)
        .map(|i| flowrel_overlay::Peer::new(3, 300.0 + 50.0 * i as f64))
        .collect();
    let sc = flowrel_overlay::random_mesh(&peers, 2, 1, &flowrel_overlay::ChurnModel::new(90.0), 3);
    let sub = *sc.peers.last().unwrap();
    let demand = FlowDemand::new(sc.server, sub, 1);
    let text = format::serialize(&sc.net, Some(demand));
    let parsed = format::parse(&text).expect("roundtrip parse");
    for (a, b) in sc.net.edges().iter().zip(parsed.net.edges()) {
        assert_eq!(a, b, "probabilities must survive text round-trip exactly");
    }
}
