//! Shared two-stage shutdown signal handling for the `flowrel` binaries.
//!
//! Both the one-shot CLI (`flowrel`) and the daemon (`flowrel-server`) want
//! the same contract: the **first** `SIGINT`/`SIGTERM` requests a graceful
//! stop (trip a [`CancelToken`] so in-flight sweeps stop at clean cursors
//! and write their checkpoints), and the **second** gives up on grace and
//! hard-exits with the conventional `128 + signo` status. Before this crate
//! each binary grew its own handler; factoring it here keeps the behavior
//! identical, makes installation idempotent (a process that links both code
//! paths installs one handler, not two conflicting ones), and adds `SIGTERM`
//! coverage — the signal init systems and CI actually send — next to the
//! interactive `SIGINT`.
//!
//! Signal handlers must be async-signal-safe, so the handler itself only
//! touches static atomics; a small watcher thread bridges the flag into the
//! allocating [`CancelToken`] world.
//!
//! Off Unix this degrades to a token that never trips.

#![warn(missing_docs)]

use flowrel_core::CancelToken;

/// Handle to the process-wide shutdown state installed by
/// [`ShutdownSignal::install`]. Cheap to clone; all clones observe the same
/// signals.
#[derive(Clone, Debug)]
pub struct ShutdownSignal {
    token: CancelToken,
}

impl ShutdownSignal {
    /// Installs the `SIGINT` + `SIGTERM` handlers (idempotently — repeated
    /// calls return handles onto the same process-wide state) and returns a
    /// handle whose token trips on the first signal. The second signal
    /// hard-exits the process with status `128 + signo` without returning.
    pub fn install() -> ShutdownSignal {
        ShutdownSignal {
            token: imp::install(),
        }
    }

    /// The cooperative cancellation token tripped by the first signal. Wire
    /// it into [`flowrel_core::Budget::cancel`] (or poll it) to stop work at
    /// a clean cursor.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether a shutdown signal has been received.
    pub fn fired(&self) -> bool {
        imp::signo() != 0
    }

    /// The signal that fired first (`"SIGINT"` / `"SIGTERM"`), if any.
    pub fn signal_name(&self) -> Option<&'static str> {
        match imp::signo() {
            2 => Some("SIGINT"),
            15 => Some("SIGTERM"),
            _ => None,
        }
    }
}

#[cfg(unix)]
mod imp {
    use flowrel_core::CancelToken;
    use std::sync::atomic::{AtomicI32, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// How many shutdown signals arrived (any kind, combined — a SIGTERM
    /// followed by a SIGINT still escalates to the hard exit).
    static COUNT: AtomicUsize = AtomicUsize::new(0);
    /// The first signal's number (0 = none yet).
    static SIGNO: AtomicI32 = AtomicI32::new(0);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_signal(signo: i32) {
        // async-signal-safe: atomics and _exit only
        let _ = SIGNO.compare_exchange(0, signo, Ordering::SeqCst, Ordering::SeqCst);
        if COUNT.fetch_add(1, Ordering::SeqCst) >= 1 {
            // the user/operator insists: abandon the graceful checkpoint
            unsafe { _exit(128 + signo) };
        }
    }

    /// The one token every install() call shares, created lazily. Tokens
    /// registered after the watcher thread exits (signal already seen) are
    /// tripped inline.
    static STATE: OnceLock<Mutex<CancelToken>> = OnceLock::new();

    pub(super) fn signo() -> i32 {
        SIGNO.load(Ordering::SeqCst)
    }

    pub(super) fn install() -> CancelToken {
        let state = STATE.get_or_init(|| {
            unsafe {
                let h = on_signal as extern "C" fn(i32) as *const () as usize;
                signal(SIGINT, h);
                signal(SIGTERM, h);
            }
            let token = CancelToken::new();
            let bridge = token.clone();
            // The watcher bridges the async-signal-safe flag into the
            // allocating CancelToken world (handlers must not touch Arc).
            std::thread::spawn(move || loop {
                if COUNT.load(Ordering::SeqCst) > 0 {
                    bridge.trip();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            });
            Mutex::new(token)
        });
        let guard = state.lock().unwrap_or_else(|e| e.into_inner());
        let token = guard.clone();
        if COUNT.load(Ordering::SeqCst) > 0 {
            token.trip();
        }
        token
    }
}

#[cfg(not(unix))]
mod imp {
    use flowrel_core::CancelToken;

    pub(super) fn signo() -> i32 {
        0
    }

    /// No signal handling off Unix: the token simply never trips.
    pub(super) fn install() -> CancelToken {
        CancelToken::new()
    }
}
