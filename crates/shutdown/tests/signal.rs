//! The one test that actually raises a signal at this process.
//!
//! It lives alone in its own integration-test binary on purpose: the second
//! shutdown signal a process receives hard-exits it, so at most one test per
//! binary may ever raise one — two tests racing would kill the harness.

#![cfg(unix)]

use std::time::{Duration, Instant};

use flowrel_shutdown::ShutdownSignal;

extern "C" {
    fn getpid() -> i32;
    fn kill(pid: i32, sig: i32) -> i32;
}

#[test]
fn first_sigterm_trips_the_token_without_killing_the_process() {
    let sig = ShutdownSignal::install();
    let again = ShutdownSignal::install(); // idempotent: same state
    assert!(!sig.fired());
    assert!(!sig.token().is_tripped());
    const SIGTERM: i32 = 15;
    unsafe {
        assert_eq!(kill(getpid(), SIGTERM), 0);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !sig.token().is_tripped() {
        assert!(Instant::now() < deadline, "token must trip within 5s");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(sig.fired());
    assert!(again.token().is_tripped(), "all handles share the state");
    assert_eq!(sig.signal_name(), Some("SIGTERM"));
    // handles installed after the fact observe the already-fired signal
    let late = ShutdownSignal::install();
    assert!(late.token().is_tripped());
}
