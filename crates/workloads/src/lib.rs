//! # workloads — generators and deterministic paper instances
//!
//! Every experiment in EXPERIMENTS.md draws its networks from this crate:
//!
//! * [`paper`] — the concrete instances of the paper's figures and examples
//!   (Fig. 2's bridge graph, the reconstructed Fig. 4 two-bottleneck graph
//!   with its Fig. 5 configurations, Example 1's assignment workload);
//! * [`generators`] — parameterized families (barbell graphs with a planted
//!   `k`-link bottleneck, bridge chains, grids, Erdős–Rényi), all
//!   deterministic per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod paper;

pub use generators::{
    barbell, barbell_mesh, bridge_chain, chained_barbell, degraded_barbell, er_random, grid,
    kary_nested_cut, nested_barbell, Instance,
};
