//! Deterministic instances of the paper's figures and examples.

use netgraph::{EdgeId, GraphKind, Network, NetworkBuilder, NodeId};

use crate::generators::Instance;

/// Adds a hard-coded paper edge. The literals below are all valid, so a
/// builder rejection is a typo in this file — hence panic rather than
/// `Result` plumbing.
fn edge(b: &mut NetworkBuilder, u: NodeId, v: NodeId, cap: u64, p: f64) -> EdgeId {
    match b.add_edge(u, v, cap, p) {
        Ok(e) => e,
        Err(e) => panic!("paper instance edge rejected: {e}"),
    }
}

/// Fig. 2: a graph whose red link `e_9` is a bridge connecting `G_s` and
/// `G_t`. The figure shows two four-node clusters; we instantiate each as a
/// diamond with one chord, joined by the bridge.
///
/// Returns the instance and the bridge's edge id.
pub fn fig2_bridge() -> (Instance, EdgeId) {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(8);
    // G_s: diamond s(0)-1-3, s-2-3 with chord 1-2
    edge(&mut b, n[0], n[1], 1, 0.10); // e0
    edge(&mut b, n[0], n[2], 1, 0.20); // e1
    edge(&mut b, n[1], n[3], 1, 0.15); // e2
    edge(&mut b, n[2], n[3], 1, 0.25); // e3
    edge(&mut b, n[1], n[2], 1, 0.30); // e4
                                       // G_t: diamond 4-5-7, 4-6-7 with chord 5-6
    edge(&mut b, n[4], n[5], 1, 0.12); // e5
    edge(&mut b, n[4], n[6], 1, 0.22); // e6
    edge(&mut b, n[5], n[7], 1, 0.18); // e7
    edge(&mut b, n[6], n[7], 1, 0.28); // e8
                                       // the bridge e9 (the figure's red link), capacity enough for the stream
    let bridge = edge(&mut b, n[3], n[4], 2, 0.05);
    (
        Instance {
            net: b.build(),
            source: n[0],
            sink: n[7],
            demand: 1,
        },
        bridge,
    )
}

/// The reconstructed Fig. 4 graph: 9 links, two bottleneck links `e_1, e_2`
/// of capacity 2, flow demand 2, assignment set `{(0,2), (1,1), (2,0)}`
/// (Example 3). The paper does not fully specify the instance; this
/// reconstruction satisfies every property the text states — see DESIGN.md.
///
/// Layout (all capacities 1 unless noted):
///
/// ```text
///   side s (5 links)          cut (cap 2)     side t (2 links, cap 2)
///   c1: s→u1   c2: s→u1       e1: u1→v1       d1: v1→t
///   c3: s→u2   c4: s→u2       e2: u2→v2       d2: v2→t
///   c5: u1→u2
/// ```
///
/// Returns the instance and the two bottleneck edge ids.
pub fn fig4_two_bottleneck() -> (Instance, Vec<EdgeId>) {
    let (inst, cut, _) = fig4_parts();
    (inst, cut)
}

/// As [`fig4_two_bottleneck`], also returning the ids of the five side-s
/// links `c1..c5` (needed to express the Fig. 5 configurations).
pub fn fig4_parts() -> (Instance, Vec<EdgeId>, Vec<EdgeId>) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node(); // 0
    let u1 = b.add_node(); // 1
    let u2 = b.add_node(); // 2
    let v1 = b.add_node(); // 3
    let v2 = b.add_node(); // 4
    let t = b.add_node(); // 5
    let c1 = edge(&mut b, s, u1, 1, 0.10);
    let c2 = edge(&mut b, s, u1, 1, 0.20);
    let c3 = edge(&mut b, s, u2, 1, 0.15);
    let c4 = edge(&mut b, s, u2, 1, 0.25);
    let c5 = edge(&mut b, u1, u2, 1, 0.30);
    let e1 = edge(&mut b, u1, v1, 2, 0.05);
    let e2 = edge(&mut b, u2, v2, 2, 0.08);
    edge(&mut b, v1, t, 2, 0.12); // d1
    edge(&mut b, v2, t, 2, 0.18); // d2
    (
        Instance {
            net: b.build(),
            source: s,
            sink: t,
            demand: 2,
        },
        vec![e1, e2],
        vec![c1, c2, c3, c4, c5],
    )
}

/// The three Fig. 5 failure configurations of subgraph `G_s`, as alive-sets
/// over the side-s links `c1..c5` (indices into [`fig4_parts`]'s third
/// return), together with the assignment sets the paper says they realize
/// (assignments in the lexicographic order `(0,2), (1,1), (2,0)`).
pub fn fig5_configurations() -> Vec<(Vec<usize>, Vec<Vec<i64>>)> {
    vec![
        // (a): c2 failed — realizes (1,1) and (0,2)
        (vec![0, 2, 3, 4], vec![vec![0, 2], vec![1, 1]]),
        // (b): only c1 and c3 alive — realizes (1,1) only
        (vec![0, 2], vec![vec![1, 1]]),
        // (c): no failure — realizes all three assignments
        (
            vec![0, 1, 2, 3, 4],
            vec![vec![0, 2], vec![1, 1], vec![2, 0]],
        ),
    ]
}

/// Example 1's workload: demand 5 over three bottleneck links of capacity 3
/// (the assignment set has exactly 12 members).
pub fn example1_caps() -> (u64, Vec<u64>) {
    (5, vec![3, 3, 3])
}

/// A directed instance on which the paper's forward-only assignment model
/// provably *undercounts*: the only routing of the unit demand weaves across
/// the cut (forward on `e1`, backward on `e2`, forward on `e3`). Used by the
/// model-gap tests; see `AssignmentModel` in `flowrel-core`.
///
/// Returns the instance and the three cut edges.
pub fn weaving_counterexample() -> (Instance, Vec<EdgeId>) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node(); // 0 (side s)
    let x2 = b.add_node(); // 1 (side s)
    let y1 = b.add_node(); // 2 (side t)
    let t = b.add_node(); // 3 (side t)
                          // capacity-0 intra-side links keep each side one connected component
                          // while forcing every unit of flow across the cut
    edge(&mut b, s, x2, 0, 0.0);
    edge(&mut b, y1, t, 0, 0.0);
    // cut: forward s→y1, backward y1→x2, forward x2→t — the unique routing
    // of the unit demand crosses the cut three times
    let e1 = edge(&mut b, s, y1, 1, 0.125);
    let e2 = edge(&mut b, y1, x2, 1, 0.125);
    let e3 = edge(&mut b, x2, t, 1, 0.125);
    (
        Instance {
            net: b.build(),
            source: s,
            sink: t,
            demand: 1,
        },
        vec![e1, e2, e3],
    )
}

/// Node names for pretty-printing the Fig. 4 instance.
pub fn fig4_node_name(n: NodeId) -> &'static str {
    ["s", "u1", "u2", "v1", "v2", "t"][n.index()]
}

/// Sanity helper: the full Fig. 4 network as a plain reference.
pub fn fig4_network() -> Network {
    fig4_two_bottleneck().0.net
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxflow::{build_flow, min_cut, SolverKind};

    #[test]
    fn fig2_bridge_is_a_bridge() {
        let (inst, bridge) = fig2_bridge();
        let bridges = netgraph::find_bridges(&inst.net);
        assert_eq!(bridges, vec![bridge]);
        assert_eq!(inst.net.edge_count(), 10);
    }

    #[test]
    fn fig4_has_nine_links_and_flow_two() {
        let (inst, cut) = fig4_two_bottleneck();
        assert_eq!(inst.net.edge_count(), 9);
        assert_eq!(cut.len(), 2);
        let mut nf = build_flow(&inst.net, inst.source, inst.sink);
        nf.apply_all_alive();
        let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
        assert!(
            f >= 2,
            "the graph admits a flow of amount two (Example 3), got {f}"
        );
    }

    #[test]
    fn fig4_min_cut_admits_the_demand() {
        let (inst, _) = fig4_two_bottleneck();
        let cut = min_cut(&inst.net, inst.source, inst.sink, SolverKind::Dinic);
        assert!(cut.value >= 2);
    }

    #[test]
    fn fig5_configs_reference_side_links() {
        let (_, _, side_links) = fig4_parts();
        assert_eq!(side_links.len(), 5);
        for (alive, realized) in fig5_configurations() {
            assert!(alive.iter().all(|&i| i < 5));
            assert!(!realized.is_empty());
        }
    }

    #[test]
    fn weaving_instance_flows_one() {
        let (inst, cut) = weaving_counterexample();
        assert_eq!(cut.len(), 3);
        let mut nf = build_flow(&inst.net, inst.source, inst.sink);
        nf.apply_all_alive();
        let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
        assert_eq!(f, 1, "max-flow routes the weaving path");
    }

    #[test]
    fn node_names_cover_fig4() {
        assert_eq!(fig4_node_name(NodeId(0)), "s");
        assert_eq!(fig4_node_name(NodeId(5)), "t");
        assert_eq!(fig4_network().node_count(), 6);
    }
}
