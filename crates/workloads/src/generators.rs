//! Parameterized network families, deterministic per seed.

use netgraph::{EdgeId, GraphKind, Network, NetworkBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated problem instance: network, demand endpoints, suggested rate.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The network.
    pub net: Network,
    /// Source node `s`.
    pub source: NodeId,
    /// Sink node `t`.
    pub sink: NodeId,
    /// Suggested stream demand `d`.
    pub demand: u64,
}

/// Parameters of the [`barbell`] family.
#[derive(Clone, Copy, Debug)]
pub struct BarbellParams {
    /// Nodes per cluster (≥ 2).
    pub cluster_nodes: usize,
    /// Extra (non-spanning-tree) links per cluster.
    pub cluster_extra_edges: usize,
    /// Bottleneck links between the clusters (`k`).
    pub cut_links: usize,
    /// Capacity of each bottleneck link.
    pub cut_capacity: u64,
    /// Suggested stream demand.
    pub demand: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BarbellParams {
    fn default() -> Self {
        BarbellParams {
            cluster_nodes: 4,
            cluster_extra_edges: 2,
            cut_links: 2,
            cut_capacity: 2,
            demand: 2,
            seed: 1,
        }
    }
}

fn random_prob(rng: &mut StdRng) -> f64 {
    // keep probabilities on a coarse dyadic grid so exact validation stays
    // cheap and the values read nicely in reports
    rng.gen_range(1..=24) as f64 / 64.0
}

/// Adds a generated edge. Generators only emit positive capacities and
/// probabilities in `[0, 1)`, so a builder rejection is a generator bug,
/// not an input error — hence panic rather than `Result` plumbing.
fn push_edge(b: &mut NetworkBuilder, u: NodeId, v: NodeId, cap: u64, p: f64) -> EdgeId {
    match b.add_edge(u, v, cap, p) {
        Ok(e) => e,
        Err(e) => panic!("generator produced an invalid edge: {e}"),
    }
}

/// Builds one random connected cluster: a random spanning tree over
/// `nodes` plus `extra` random chords. Returns the node ids.
fn random_cluster(
    b: &mut NetworkBuilder,
    nodes: usize,
    extra: usize,
    cap_range: (u64, u64),
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let ids = b.add_nodes(nodes);
    for i in 1..nodes {
        let parent = rng.gen_range(0..i);
        let cap = rng.gen_range(cap_range.0..=cap_range.1);
        push_edge(b, ids[parent], ids[i], cap, random_prob(rng));
    }
    let mut added = 0;
    while added < extra && nodes >= 2 {
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u == v {
            continue; // redraw: the requested edge count is exact
        }
        let cap = rng.gen_range(cap_range.0..=cap_range.1);
        push_edge(b, ids[u], ids[v], cap, random_prob(rng));
        added += 1;
    }
    ids
}

/// The paper's target topology: two random connected clusters joined by
/// exactly `cut_links` bottleneck links. The planted cut is, by
/// construction, a minimal separating set leaving exactly two components.
///
/// Returns the instance and the planted bottleneck edge ids.
pub fn barbell(params: BarbellParams) -> (Instance, Vec<EdgeId>) {
    assert!(params.cluster_nodes >= 2);
    assert!(params.cut_links >= 1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    // cluster capacities at least the demand: with every link alive the
    // demand is always feasible (tree paths alone carry it), so generated
    // instances never degenerate to reliability zero
    let caps = (params.demand.max(1), params.demand.max(1) + 1);
    let left = random_cluster(
        &mut b,
        params.cluster_nodes,
        params.cluster_extra_edges,
        caps,
        &mut rng,
    );
    let right = random_cluster(
        &mut b,
        params.cluster_nodes,
        params.cluster_extra_edges,
        caps,
        &mut rng,
    );
    let mut cut = Vec::new();
    for i in 0..params.cut_links {
        let u = left[rng.gen_range(0..left.len())];
        let v = right[rng.gen_range(0..right.len())];
        let _ = i;
        cut.push(push_edge(
            &mut b,
            u,
            v,
            params.cut_capacity,
            random_prob(&mut rng),
        ));
    }
    let instance = Instance {
        net: b.build(),
        source: left[0],
        sink: right[right.len() - 1],
        demand: params.demand,
    };
    (instance, cut)
}

/// Adds a generated spectrum edge; as with [`push_edge`], generators only
/// emit valid state lists, so a rejection is a generator bug.
fn push_spectrum_edge(
    b: &mut NetworkBuilder,
    u: NodeId,
    v: NodeId,
    states: &[(u64, f64)],
) -> EdgeId {
    match b.add_spectrum_edge(u, v, states) {
        Ok(e) => e,
        Err(e) => panic!("generator produced an invalid spectrum: {e}"),
    }
}

/// The barbell with *degraded* bottleneck links: each cut link carries a
/// 3-state capacity spectrum — **full** capacity, **half** capacity
/// (`⌈cut_capacity / 2⌉`, a partially degraded link), or **down** — instead
/// of the binary up/down pair. The clusters stay binary, so the instance
/// exercises the mixed-radix enumeration exactly where the paper's
/// bottleneck structure concentrates the uncertainty.
///
/// State probabilities are drawn on the same dyadic grid as the binary
/// generators (so they sum to exactly 1), deterministic per seed. Requires
/// `cut_capacity ≥ 2` so the three capacities are distinct and the spectrum
/// does not collapse to a binary link.
///
/// Returns the instance and the planted bottleneck edge ids.
pub fn degraded_barbell(params: BarbellParams) -> (Instance, Vec<EdgeId>) {
    assert!(params.cluster_nodes >= 2);
    assert!(params.cut_links >= 1);
    assert!(
        params.cut_capacity >= 2,
        "degraded_barbell needs cut_capacity >= 2 for distinct full/half states"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let caps = (params.demand.max(1), params.demand.max(1) + 1);
    let left = random_cluster(
        &mut b,
        params.cluster_nodes,
        params.cluster_extra_edges,
        caps,
        &mut rng,
    );
    let right = random_cluster(
        &mut b,
        params.cluster_nodes,
        params.cluster_extra_edges,
        caps,
        &mut rng,
    );
    let half = params.cut_capacity.div_ceil(2);
    let mut cut = Vec::new();
    for _ in 0..params.cut_links {
        let u = left[rng.gen_range(0..left.len())];
        let v = right[rng.gen_range(0..right.len())];
        let p_down = rng.gen_range(1..=12) as f64 / 64.0;
        let p_half = rng.gen_range(1..=12) as f64 / 64.0;
        let p_full = 1.0 - p_down - p_half;
        cut.push(push_spectrum_edge(
            &mut b,
            u,
            v,
            &[(0, p_down), (half, p_half), (params.cut_capacity, p_full)],
        ));
    }
    let instance = Instance {
        net: b.build(),
        source: left[0],
        sink: right[right.len() - 1],
        demand: params.demand,
    };
    (instance, cut)
}

/// A chain of `segments` diamonds joined by bridges (the Fig. 2 family at
/// scale). Every bridge separates `s` from `t`.
pub fn bridge_chain(segments: usize, demand: u64, seed: u64) -> Instance {
    assert!(segments >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let mut prev = b.add_node();
    let source = prev;
    for i in 0..segments {
        let a = b.add_node();
        let c = b.add_node();
        let d = b.add_node();
        push_edge(&mut b, prev, a, demand, random_prob(&mut rng));
        push_edge(&mut b, prev, c, demand, random_prob(&mut rng));
        push_edge(&mut b, a, d, demand, random_prob(&mut rng));
        push_edge(&mut b, c, d, demand, random_prob(&mut rng));
        if i + 1 < segments {
            let next = b.add_node();
            push_edge(&mut b, d, next, demand, random_prob(&mut rng));
            prev = next;
        } else {
            prev = d;
        }
    }
    Instance {
        net: b.build(),
        source,
        sink: prev,
        demand,
    }
}

/// A chain of `segments` random clusters, consecutive clusters joined by a
/// single bridge of capacity `demand`: the `segments - 1` bridges are nested
/// bottlenecks, every one separating `s` from `t` — the recursive
/// decomposition planner's best case. `s` sits in the first cluster, `t` in
/// the last.
pub fn chained_barbell(segments: usize, cluster_nodes: usize, demand: u64, seed: u64) -> Instance {
    assert!(segments >= 1);
    assert!(cluster_nodes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let caps = (demand.max(1), demand.max(1) + 1);
    let mut source = None;
    let mut exit = None;
    for _ in 0..segments {
        let ids = random_cluster(&mut b, cluster_nodes, 1, caps, &mut rng);
        if let Some(prev) = exit {
            push_edge(&mut b, prev, ids[0], demand.max(1), random_prob(&mut rng));
        }
        if source.is_none() {
            source = Some(ids[0]);
        }
        exit = Some(ids[ids.len() - 1]);
    }
    let (Some(source), Some(sink)) = (source, exit) else {
        panic!("at least one segment");
    };
    Instance {
        net: b.build(),
        source,
        sink,
        demand,
    }
}

/// Recursively nested bottlenecks: a depth-`d` instance is two depth-`d-1`
/// halves joined by one bridge, bottoming out at a single random cluster —
/// `2^depth` clusters total, with the bridge at every nesting level
/// separating `s` (leftmost cluster) from `t` (rightmost cluster).
pub fn nested_barbell(depth: usize, cluster_nodes: usize, demand: u64, seed: u64) -> Instance {
    assert!(cluster_nodes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let caps = (demand.max(1), demand.max(1) + 1);
    // Returns the (entry, exit) attachment nodes of a depth-`d` sub-instance.
    fn build(
        b: &mut NetworkBuilder,
        d: usize,
        cluster_nodes: usize,
        caps: (u64, u64),
        demand: u64,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        if d == 0 {
            let ids = random_cluster(b, cluster_nodes, 1, caps, rng);
            return (ids[0], ids[ids.len() - 1]);
        }
        let (entry, left_exit) = build(b, d - 1, cluster_nodes, caps, demand, rng);
        let (right_entry, exit) = build(b, d - 1, cluster_nodes, caps, demand, rng);
        push_edge(b, left_exit, right_entry, demand.max(1), random_prob(rng));
        (entry, exit)
    }
    let (source, sink) = build(&mut b, depth, cluster_nodes, caps, demand, &mut rng);
    Instance {
        net: b.build(),
        source,
        sink,
        demand,
    }
}

/// The deep planner's target family: two chains of `clusters_per_side`
/// triangle clusters meet at a hub of `cut_width` parallel unit-capacity
/// links. With demand 1 the hub is the balanced root bottleneck and admits
/// `cut_width` one-hot assignments (a genuine multi-assignment cut, never a
/// bridge), while every triangle-joining link inside a side is a nested
/// peel cut with the unique crossing `x' = (1)` — so the recursive planner
/// peels each side cluster by cluster into `~2·clusters_per_side + 2` leaf
/// slots, where the one-level engine sweeps `2^(4·clusters_per_side)`
/// configurations per side.
///
/// `s` sits at the far end of the left chain, `t` at the far end of the
/// right chain. Needs a bottleneck search width of at least `cut_width`.
pub fn kary_nested_cut(clusters_per_side: usize, cut_width: usize, seed: u64) -> Instance {
    assert!(clusters_per_side >= 1);
    assert!(cut_width >= 2, "width 1 would degenerate to a bridge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    // One side: triangles chained by capacity-2 links, ending at a hub
    // node. Returns (far terminal, hub).
    let side = |b: &mut NetworkBuilder, rng: &mut StdRng| {
        let mut entry = None;
        let mut exit = None;
        for _ in 0..clusters_per_side {
            let t = b.add_nodes(3);
            push_edge(b, t[0], t[1], 2, random_prob(rng));
            push_edge(b, t[1], t[2], 2, random_prob(rng));
            push_edge(b, t[2], t[0], 2, random_prob(rng));
            if let Some(prev) = exit {
                push_edge(b, prev, t[0], 2, random_prob(rng));
            }
            if entry.is_none() {
                entry = Some(t[0]);
            }
            exit = Some(t[2]);
        }
        let hub = b.add_node();
        let (Some(entry), Some(exit)) = (entry, exit) else {
            panic!("at least one cluster per side");
        };
        push_edge(b, exit, hub, 2, random_prob(rng));
        (entry, hub)
    };
    let (source, left_hub) = side(&mut b, &mut rng);
    let (sink, right_hub) = side(&mut b, &mut rng);
    for _ in 0..cut_width {
        push_edge(&mut b, left_hub, right_hub, 1, random_prob(&mut rng));
    }
    Instance {
        net: b.build(),
        source,
        sink,
        demand: 1,
    }
}

/// A mesh of barbells: `segments` four-node diamond meshes, consecutive
/// meshes joined by *two* parallel unit-capacity links. At demand 2 every
/// joining pair admits the single crossing `(1, 1)` — a width-2 bridge in
/// the generalized Eq. 1 sense — so the planner chains `segments` leaf
/// slots regardless of recursion settings: a wide coverage family for deep
/// plans (dozens of leaves) rather than a speedup showcase.
pub fn barbell_mesh(segments: usize, seed: u64) -> Instance {
    assert!(segments >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let mut source = None;
    let mut exit = None;
    for _ in 0..segments {
        let n = b.add_nodes(4);
        push_edge(&mut b, n[0], n[1], 2, random_prob(&mut rng));
        push_edge(&mut b, n[0], n[2], 2, random_prob(&mut rng));
        push_edge(&mut b, n[1], n[3], 2, random_prob(&mut rng));
        push_edge(&mut b, n[2], n[3], 2, random_prob(&mut rng));
        push_edge(&mut b, n[1], n[2], 1, random_prob(&mut rng));
        if let Some(prev) = exit {
            push_edge(&mut b, prev, n[0], 1, random_prob(&mut rng));
            push_edge(&mut b, prev, n[0], 1, random_prob(&mut rng));
        }
        if source.is_none() {
            source = Some(n[0]);
        }
        exit = Some(n[3]);
    }
    let (Some(source), Some(sink)) = (source, exit) else {
        panic!("at least two segments");
    };
    Instance {
        net: b.build(),
        source,
        sink,
        demand: 2,
    }
}

/// The structural-reduction showcase family: a chain of `segments` diamond
/// cores (the irreducible work the engines must sweep) whose joints are
/// deliberately over-provisioned.
///
/// Between consecutive cores sits a *slack bundle* — two parallel capacity-8
/// links where the chain can carry at most the demand — so capacity-factor
/// clamping pulls both down to the bundle bound and the parallel merge
/// collapses them into one link (one fallible bit per joint). Each core
/// also hangs `spurs` dead-end spur links that no s–t flow can ever use
/// (bound 0, pruned), and the middle joint is spliced through a perfect
/// capacity-99 link that forced-link conditioning contracts away.
///
/// With `segments = 3, spurs = 2` the reduction removes 8 of 22 fallible
/// links (~36%), comfortably past the 30% the reduction benchmark asserts,
/// while the residual diamond chain still costs `2^14` configurations —
/// a real instance, not a toy that reduces to nothing.
pub fn slack_barbell(segments: usize, spurs: usize, seed: u64) -> Instance {
    assert!(segments >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let mut source = None;
    let mut exit: Option<NodeId> = None;
    for seg in 0..segments {
        // diamond core: entry n0, parallel middles n1/n2, exit n3
        let n = b.add_nodes(4);
        push_edge(&mut b, n[0], n[1], 2, random_prob(&mut rng));
        push_edge(&mut b, n[0], n[2], 2, random_prob(&mut rng));
        push_edge(&mut b, n[1], n[3], 2, random_prob(&mut rng));
        push_edge(&mut b, n[2], n[3], 2, random_prob(&mut rng));
        for _ in 0..spurs {
            let leaf = b.add_node();
            let at = n[rng.gen_range(0..4usize)];
            push_edge(&mut b, at, leaf, 1, random_prob(&mut rng));
        }
        if let Some(prev) = exit {
            // the middle joint splices through a perfect link (contracted
            // by forced-link conditioning); every joint carries the slack
            // bundle (clamped, then merged)
            let joint = if seg == segments / 2 {
                let m = b.add_node();
                match b.add_perfect_edge(prev, m, 99) {
                    Ok(_) => {}
                    Err(e) => panic!("generator produced an invalid edge: {e}"),
                }
                m
            } else {
                prev
            };
            push_edge(&mut b, joint, n[0], 8, random_prob(&mut rng));
            push_edge(&mut b, joint, n[0], 8, random_prob(&mut rng));
        }
        if source.is_none() {
            source = Some(n[0]);
        }
        exit = Some(n[3]);
    }
    let (Some(source), Some(sink)) = (source, exit) else {
        panic!("at least two segments");
    };
    Instance {
        net: b.build(),
        source,
        sink,
        demand: 2,
    }
}

/// A `w × h` grid with unit capacities; `s` top-left, `t` bottom-right.
pub fn grid(w: usize, h: usize, seed: u64) -> Instance {
    assert!(w >= 1 && h >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let ids = b.add_nodes(w * h);
    for y in 0..h {
        for x in 0..w {
            let me = ids[y * w + x];
            if x + 1 < w {
                push_edge(&mut b, me, ids[y * w + x + 1], 1, random_prob(&mut rng));
            }
            if y + 1 < h {
                push_edge(&mut b, me, ids[(y + 1) * w + x], 1, random_prob(&mut rng));
            }
        }
    }
    Instance {
        net: b.build(),
        source: ids[0],
        sink: ids[w * h - 1],
        demand: 1,
    }
}

/// Erdős–Rényi-style multigraph: `m` links drawn uniformly over node pairs
/// (connectivity not guaranteed — reliability handles disconnection).
pub fn er_random(n: usize, m: usize, max_cap: u64, seed: u64) -> Instance {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let ids = b.add_nodes(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if u == v {
            v = (v + 1) % n;
        }
        let cap = rng.gen_range(1..=max_cap.max(1));
        push_edge(&mut b, ids[u], ids[v], cap, random_prob(&mut rng));
    }
    Instance {
        net: b.build(),
        source: ids[0],
        sink: ids[n - 1],
        demand: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::connected_components;

    #[test]
    fn barbell_planted_cut_separates() {
        let (inst, cut) = barbell(BarbellParams::default());
        let comps = connected_components(&inst.net, |e| cut.iter().any(|c| c.index() == e));
        assert_eq!(comps.count(), 2);
        assert!(!comps.same(inst.source, inst.sink));
        // without removal: connected
        let whole = connected_components(&inst.net, |_| false);
        assert_eq!(whole.count(), 1);
    }

    #[test]
    fn degraded_barbell_cut_links_carry_three_state_spectra() {
        let (inst, cut) = degraded_barbell(BarbellParams::default());
        let comps = connected_components(&inst.net, |e| cut.iter().any(|c| c.index() == e));
        assert_eq!(comps.count(), 2, "the planted cut still separates");
        for &e in &cut {
            let sp = inst.net.spectrum(e).expect("cut link must be multi-state");
            assert_eq!(sp.k(), 3);
            let states = sp.states();
            assert_eq!(states[0].0, 0);
            assert_eq!(states[1].0, 1, "half of cut_capacity 2");
            assert_eq!(states[2].0, 2);
            let total: f64 = states.iter().map(|&(_, p)| p).sum();
            assert_eq!(total, 1.0, "dyadic grid probabilities sum exactly");
        }
        // cluster links stay binary
        for i in 0..inst.net.edge_count() {
            let id = EdgeId::from(i);
            if !cut.contains(&id) {
                assert!(inst.net.spectrum(id).is_none());
            }
        }
        // deterministic per seed
        let (again, _) = degraded_barbell(BarbellParams::default());
        assert_eq!(inst.net.edge_count(), again.net.edge_count());
        for (x, y) in inst.net.edges().iter().zip(again.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn barbell_is_deterministic() {
        let (a, _) = barbell(BarbellParams::default());
        let (b, _) = barbell(BarbellParams::default());
        assert_eq!(a.net.edge_count(), b.net.edge_count());
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
        let (c, _) = barbell(BarbellParams {
            seed: 99,
            ..Default::default()
        });
        // different seed, different probabilities (overwhelmingly)
        assert!(a.net.edges().iter().zip(c.net.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn barbell_sizes_scale() {
        let (inst, cut) = barbell(BarbellParams {
            cluster_nodes: 6,
            cluster_extra_edges: 3,
            cut_links: 3,
            ..Default::default()
        });
        // 2 * (5 tree + up to 3 extra) + 3 cut
        assert!(inst.net.edge_count() >= 2 * 5 + 3);
        assert_eq!(cut.len(), 3);
    }

    #[test]
    fn slack_barbell_counts_and_slack() {
        let inst = slack_barbell(3, 2, 11);
        // 3 diamonds (4 links) + 2 joints (2 slack links) + 3*2 spurs + 1 perfect splice
        assert_eq!(inst.net.edge_count(), 3 * 4 + 2 * 2 + 3 * 2 + 1);
        let perfect = inst
            .net
            .edges()
            .iter()
            .filter(|e| e.fail_prob == 0.0)
            .count();
        assert_eq!(perfect, 1, "exactly the contraction splice is perfect");
        let slack = inst.net.edges().iter().filter(|e| e.capacity == 8).count();
        assert_eq!(slack, 4, "two over-provisioned links per joint");
        let whole = connected_components(&inst.net, |_| false);
        assert_eq!(whole.count(), 1);
        assert_ne!(inst.source, inst.sink);
    }

    #[test]
    fn slack_barbell_is_deterministic() {
        let a = slack_barbell(3, 2, 4);
        let b = slack_barbell(3, 2, 4);
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn bridge_chain_counts() {
        let inst = bridge_chain(3, 1, 7);
        assert_eq!(inst.net.edge_count(), 3 * 4 + 2);
        assert_eq!(netgraph::find_bridges(&inst.net).len(), 2);
    }

    #[test]
    fn chained_barbell_has_nested_bridges() {
        let inst = chained_barbell(4, 4, 1, 3);
        // 4 clusters of (3 tree + 1 extra) edges + 3 joining bridges
        assert_eq!(inst.net.edge_count(), 4 * 4 + 3);
        assert!(netgraph::find_bridges(&inst.net).len() >= 3);
        assert_ne!(inst.source, inst.sink);
        let whole = connected_components(&inst.net, |_| false);
        assert_eq!(whole.count(), 1);
    }

    #[test]
    fn nested_barbell_doubles_clusters_per_level() {
        for depth in 0..3 {
            let inst = nested_barbell(depth, 3, 1, 5);
            let clusters = 1usize << depth;
            // each cluster: 2 tree + 1 extra edges; bridges: clusters - 1
            assert_eq!(inst.net.edge_count(), clusters * 3 + clusters - 1);
            assert!(netgraph::find_bridges(&inst.net).len() >= clusters - 1);
            let whole = connected_components(&inst.net, |_| false);
            assert_eq!(whole.count(), 1);
        }
    }

    #[test]
    fn nested_barbell_is_deterministic() {
        let a = nested_barbell(2, 4, 1, 9);
        let b = nested_barbell(2, 4, 1, 9);
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn kary_nested_cut_counts_and_connects() {
        for c in 1..=4 {
            let inst = kary_nested_cut(c, 2, 13);
            // per side: 3 per triangle + (c - 1) joins + 1 hub link; + 2 cut
            assert_eq!(inst.net.edge_count(), 2 * (4 * c) + 2);
            assert_eq!(inst.demand, 1);
            let whole = connected_components(&inst.net, |_| false);
            assert_eq!(whole.count(), 1);
            assert_ne!(inst.source, inst.sink);
        }
        let wide = kary_nested_cut(2, 3, 13);
        assert_eq!(wide.net.edge_count(), 2 * 8 + 3);
    }

    #[test]
    fn kary_nested_cut_is_deterministic() {
        let a = kary_nested_cut(3, 2, 21);
        let b = kary_nested_cut(3, 2, 21);
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn barbell_mesh_counts_and_connects() {
        for segments in 2..=9 {
            let inst = barbell_mesh(segments, 17);
            assert_eq!(inst.net.edge_count(), 5 * segments + 2 * (segments - 1));
            assert_eq!(inst.demand, 2);
            let whole = connected_components(&inst.net, |_| false);
            assert_eq!(whole.count(), 1);
            // no single-link bridge: every junction is a parallel pair
            assert!(netgraph::find_bridges(&inst.net).is_empty());
        }
    }

    #[test]
    fn grid_counts() {
        let inst = grid(3, 2, 1);
        assert_eq!(inst.net.node_count(), 6);
        // horizontal: 2 per row * 2 rows; vertical: 3
        assert_eq!(inst.net.edge_count(), 7);
    }

    #[test]
    fn er_has_no_self_loops() {
        let inst = er_random(5, 30, 3, 11);
        assert!(inst.net.edges().iter().all(|e| e.src != e.dst));
        assert_eq!(inst.net.edge_count(), 30);
    }

    #[test]
    fn probabilities_are_valid_and_dyadic_grid() {
        let (inst, _) = barbell(BarbellParams::default());
        for e in inst.net.edges() {
            assert!((0.0..1.0).contains(&e.fail_prob));
            let scaled = e.fail_prob * 64.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-12,
                "prob on the /64 grid"
            );
        }
    }
}
