//! A small, hardened JSON value type with parsing and rendering.
//!
//! The workspace deliberately vendors no functional serialization crate (the
//! checkpoint format is hand-rolled for the same reason), so the wire layer
//! carries its own ~300-line JSON implementation. It is *hardened before it
//! is general*: parsing enforces a nesting-depth limit, a per-string byte
//! limit, and a per-container item limit, so a malicious frame cannot blow
//! the stack with `[[[[…]]]]` or balloon memory with a single huge token —
//! limits trip as structured [`JsonError`]s, never panics.
//!
//! Numbers are IEEE-754 doubles. Rendering uses Rust's shortest-round-trip
//! float formatting, so `parse(render(v)) == v` bit-for-bit for every finite
//! double (the property suite in `tests/proto_props.rs` proves it); exact
//! 64-bit state (checkpoint accumulators) travels inside strings, exactly as
//! it does in the `flowrel-checkpoint v1` text format.

use std::fmt;

/// Limits enforced while parsing untrusted JSON.
#[derive(Clone, Copy, Debug)]
pub struct JsonLimits {
    /// Maximum nesting depth of arrays/objects.
    pub max_depth: usize,
    /// Maximum byte length of a single string literal (after unescaping).
    pub max_string: usize,
    /// Maximum number of elements in one array or keys in one object.
    pub max_items: usize,
}

impl Default for JsonLimits {
    fn default() -> Self {
        JsonLimits {
            max_depth: 32,
            max_string: 8 << 20,
            max_items: 1 << 16,
        }
    }
}

/// Structured parse failure: what and where (byte offset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the problem was detected.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A JSON value. Object keys keep insertion order (no hashing, deterministic
/// rendering).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite IEEE-754 double.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly
    /// (rejects fractions, negatives, and values beyond 2^53 where doubles
    /// stop being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders to compact JSON text. Infinite/NaN numbers render as `null`
    /// (the protocol never produces them; this keeps rendering total).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display prints the shortest string that parses
                    // back to the identical double.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience builder for object literals.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (must consume the whole input, modulo trailing
/// whitespace) under the given limits.
pub fn parse(text: &str, limits: &JsonLimits) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        limits,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: &'a JsonLimits,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.limits.max_depth {
            return Err(self.err(format!(
                "nesting depth exceeds the limit of {}",
                self.limits.max_depth
            )));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("number overflows a double"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            if out.len() > self.limits.max_string {
                return Err(self.err(format!(
                    "string exceeds the {}-byte limit",
                    self.limits.max_string
                )));
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // surrogate pair: \uXXXX\uXXXX
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + (((hi - 0xd800) as u32) << 10) + (lo - 0xdc00) as u32;
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .or_else(|e| {
                            if e.valid_up_to() > 0 {
                                std::str::from_utf8(&rest[..e.valid_up_to()])
                            } else {
                                Err(e)
                            }
                        })
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("invalid utf-8 in string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        // called with pos at 'u'+1? no: caller advances past 'u' via expect or
        // pos+=1; here pos is at the first hex digit
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            if items.len() >= self.limits.max_items {
                return Err(self.err(format!(
                    "array exceeds the {}-item limit",
                    self.limits.max_items
                )));
            }
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            if pairs.len() >= self.limits.max_items {
                return Err(self.err(format!(
                    "object exceeds the {}-key limit",
                    self.limits.max_items
                )));
            }
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Json) {
        let text = v.render();
        let back = parse(&text, &JsonLimits::default()).unwrap();
        assert_eq!(v, back, "render: {text}");
    }

    #[test]
    fn roundtrips_scalars_and_containers() {
        roundtrip(Json::Null);
        roundtrip(Json::Bool(true));
        roundtrip(Json::Num(-0.0));
        roundtrip(Json::Num(1.5e-300));
        roundtrip(Json::Num(f64::MAX));
        roundtrip(Json::Str("líne\n\"q\"\\ \u{1}\u{1F600}".into()));
        roundtrip(obj([
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b", Json::Obj(vec![])),
        ]));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse(r#""A😀\/""#, &JsonLimits::default()).unwrap();
        assert_eq!(v, Json::Str("A\u{1F600}/".into()));
    }

    #[test]
    fn depth_limit_trips_not_overflows() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = parse(&deep, &JsonLimits::default()).unwrap_err();
        assert!(e.message.contains("depth"));
    }

    #[test]
    fn item_and_string_limits_trip() {
        let limits = JsonLimits {
            max_items: 3,
            max_string: 4,
            ..Default::default()
        };
        assert!(parse("[1,2,3,4]", &limits)
            .unwrap_err()
            .message
            .contains("item"));
        assert!(parse(r#""abcdef""#, &limits)
            .unwrap_err()
            .message
            .contains("byte limit"));
        assert!(parse("[1,2,3]", &limits).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "truefalse",
            "1..2",
            "\"",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "[1] x",
            "\u{7f}",
        ] {
            assert!(parse(bad, &JsonLimits::default()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn u64_extraction_is_exact_only() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(42.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }
}
