//! The flowrel-server daemon.
//!
//! ```text
//! flowrel-server [--addr unix:/path | host:port] [--state-dir DIR]
//!                [--max-concurrent N] [--max-waiting N]
//!                [--default-timeout-ms MS] [--max-timeout-ms MS]
//!                [--idle-timeout-ms MS]
//! ```
//!
//! Prints `flowrel-server listening on <addr>` once ready (the CI smoke test
//! and the lifecycle suite key on that line). SIGINT/SIGTERM start a
//! graceful drain: in-flight requests are interrupted at the next budget
//! poll, parked under resume tokens in `--state-dir`, and the process exits
//! once every session has closed. A second signal aborts immediately.

use std::process::ExitCode;
use std::time::Duration;

use flowrel_server::{start, BindAddr, ServerConfig};

fn usage() -> &'static str {
    "usage: flowrel-server [--addr unix:/path | host:port] [--state-dir DIR]\n\
     \x20                     [--max-concurrent N] [--max-waiting N]\n\
     \x20                     [--default-timeout-ms MS] [--max-timeout-ms MS]\n\
     \x20                     [--idle-timeout-ms MS]"
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: BindAddr::Tcp("127.0.0.1:4500".into()),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = BindAddr::parse(value("--addr")?)?,
            "--state-dir" => config.state_dir = Some(value("--state-dir")?.into()),
            "--max-concurrent" => {
                config.max_concurrent = value("--max-concurrent")?
                    .parse()
                    .map_err(|_| "--max-concurrent: not a number".to_string())?
            }
            "--max-waiting" => {
                config.max_waiting = value("--max-waiting")?
                    .parse()
                    .map_err(|_| "--max-waiting: not a number".to_string())?
            }
            "--default-timeout-ms" => {
                config.default_timeout = Duration::from_millis(
                    value("--default-timeout-ms")?
                        .parse()
                        .map_err(|_| "--default-timeout-ms: not a number".to_string())?,
                )
            }
            "--max-timeout-ms" => {
                config.max_timeout = Duration::from_millis(
                    value("--max-timeout-ms")?
                        .parse()
                        .map_err(|_| "--max-timeout-ms: not a number".to_string())?,
                )
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(
                    value("--idle-timeout-ms")?
                        .parse()
                        .map_err(|_| "--idle-timeout-ms: not a number".to_string())?,
                )
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("flowrel-server: bind failed: {e}");
            return ExitCode::from(3);
        }
    };
    println!("flowrel-server listening on {}", handle.addr());

    // Bridge SIGINT/SIGTERM into the drain token. The bridge thread may
    // outlive `join` harmlessly; a second signal hard-exits via the shared
    // shutdown module.
    let signal = flowrel_shutdown::ShutdownSignal::install();
    let sig_token = signal.token();
    let drain = handle.shutdown_token();
    std::thread::spawn(move || loop {
        if sig_token.is_tripped() {
            drain.trip();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    handle.join();
    if let Some(name) = signal.signal_name() {
        eprintln!("flowrel-server: drained after {name}");
    }
    ExitCode::SUCCESS
}
