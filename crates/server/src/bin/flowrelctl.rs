//! flowrelctl: command-line client for flowrel-server.
//!
//! ```text
//! flowrelctl --addr ADDR ping
//! flowrelctl --addr ADDR stats
//! flowrelctl --addr ADDR shutdown
//! flowrelctl --addr ADDR compute FILE [--strategy auto|naive|factoring|mc]
//!            [--seed N] [--samples N] [--timeout-ms MS] [--max-configs N]
//!            [--hybrid] [--checkpoint FILE]
//! flowrelctl --addr ADDR resume TOKEN
//! ```
//!
//! Exit codes mirror the `flowrel` CLI: `0` success, `2` usage, `3` I/O or
//! transport, `20` a partial (interrupted) answer — the resume token is
//! printed so a later `flowrelctl resume` can continue — and any other code
//! is the server's structured error code (`4` parse, `6` overloaded,
//! `10`–`24` calculator errors, …).

use std::process::ExitCode;

use flowrel_server::proto::StatsSnapshot;
use flowrel_server::{BindAddr, Client, ComputeRequest, Response, StrategySpec};

struct CtlError {
    code: u8,
    message: String,
}

impl CtlError {
    fn usage(message: impl Into<String>) -> CtlError {
        CtlError {
            code: 2,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> CtlError {
        CtlError {
            code: 3,
            message: message.into(),
        }
    }
}

fn usage() -> &'static str {
    "usage: flowrelctl --addr ADDR <ping|stats|shutdown|compute FILE [opts]|resume TOKEN>\n\
     compute opts: --strategy auto|naive|factoring|mc  --seed N  --samples N\n\
     \x20             --timeout-ms MS  --max-configs N  --hybrid  --checkpoint FILE"
}

fn connect(addr: &Option<BindAddr>) -> Result<Client, CtlError> {
    let addr = addr
        .as_ref()
        .ok_or_else(|| CtlError::usage(format!("--addr is required\n{}", usage())))?;
    Client::connect(addr).map_err(|e| CtlError::io(format!("connect: {e}")))
}

fn print_stats(s: &StatsSnapshot) {
    println!("active_sessions  {}", s.active_sessions);
    println!("active_requests  {}", s.active_requests);
    println!("served           {}", s.served);
    println!("shed             {}", s.shed);
    println!("protocol_errors  {}", s.protocol_errors);
    println!("panics           {}", s.panics);
    println!("parked           {}", s.parked);
    println!("cache_hits       {}", s.cache_hits);
    println!("cache_misses     {}", s.cache_misses);
    println!("result_hits      {}", s.result_hits);
    println!("  raw            {}", s.result_hits_raw);
    println!("  reduced        {}", s.result_hits_reduced);
    println!("shutting_down    {}", s.shutting_down);
}

/// Prints a server response; the returned code is the process exit code.
fn report(resp: Response) -> u8 {
    match resp {
        Response::Pong => {
            println!("pong");
            0
        }
        Response::ShuttingDown => {
            println!("server is draining");
            0
        }
        Response::Stats(s) => {
            print_stats(&s);
            0
        }
        Response::Complete {
            reliability,
            algorithm,
            cached,
            certified,
        } => {
            println!("reliability {reliability:.12}");
            println!(
                "algorithm   {algorithm}{}",
                if cached { " (cached)" } else { "" }
            );
            println!(
                "certainty   {}",
                if certified {
                    "certified"
                } else {
                    "statistical"
                }
            );
            0
        }
        Response::Partial {
            r_low,
            r_high,
            explored,
            algorithm,
            token,
            certified,
            ..
        } => {
            println!("partial [{r_low:.12}, {r_high:.12}]");
            println!("explored  {:.2}%", explored * 100.0);
            println!("algorithm {algorithm}");
            println!(
                "certainty {}",
                if certified {
                    "certified"
                } else {
                    "statistical"
                }
            );
            println!("token     {token}");
            20
        }
        Response::Error(e) => {
            eprintln!("error: {e}");
            e.code
        }
    }
}

fn run(args: &[String]) -> Result<u8, CtlError> {
    let mut addr: Option<BindAddr> = None;
    let mut it = args.iter().peekable();
    while let Some(flag) = it.peek() {
        if flag.as_str() != "--addr" {
            break;
        }
        it.next();
        let value = it
            .next()
            .ok_or_else(|| CtlError::usage("--addr needs a value"))?;
        addr = Some(BindAddr::parse(value).map_err(CtlError::usage)?);
    }
    let command = it
        .next()
        .ok_or_else(|| CtlError::usage(usage().to_string()))?;
    match command.as_str() {
        "ping" => {
            let mut client = connect(&addr)?;
            client
                .ping()
                .map_err(|e| CtlError::io(format!("ping: {e}")))?;
            println!("pong");
            Ok(0)
        }
        "stats" => {
            let mut client = connect(&addr)?;
            let resp = client
                .stats()
                .map_err(|e| CtlError::io(format!("stats: {e}")))?;
            Ok(report(resp))
        }
        "shutdown" => {
            let mut client = connect(&addr)?;
            let resp = client
                .shutdown_server()
                .map_err(|e| CtlError::io(format!("shutdown: {e}")))?;
            Ok(report(resp))
        }
        "resume" => {
            let token = it
                .next()
                .ok_or_else(|| CtlError::usage("resume needs a TOKEN"))?;
            let mut client = connect(&addr)?;
            let resp = client
                .resume(token)
                .map_err(|e| CtlError::io(format!("resume: {e}")))?;
            Ok(report(resp))
        }
        "compute" => {
            let file = it
                .next()
                .ok_or_else(|| CtlError::usage("compute needs a FILE"))?;
            let net =
                std::fs::read_to_string(file).map_err(|e| CtlError::io(format!("{file}: {e}")))?;
            let mut strategy_name = "auto".to_string();
            let mut seed = 0u64;
            let mut samples = 1_000_000u64;
            let mut timeout_ms = None;
            let mut max_configs = None;
            let mut hybrid = false;
            let mut checkpoint = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, CtlError> {
                    it.next()
                        .ok_or_else(|| CtlError::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--strategy" => strategy_name = value("--strategy")?.clone(),
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| CtlError::usage("--seed: not a number"))?
                    }
                    "--samples" => {
                        samples = value("--samples")?
                            .parse()
                            .map_err(|_| CtlError::usage("--samples: not a number"))?
                    }
                    "--timeout-ms" => {
                        timeout_ms = Some(
                            value("--timeout-ms")?
                                .parse()
                                .map_err(|_| CtlError::usage("--timeout-ms: not a number"))?,
                        )
                    }
                    "--max-configs" => {
                        max_configs = Some(
                            value("--max-configs")?
                                .parse()
                                .map_err(|_| CtlError::usage("--max-configs: not a number"))?,
                        )
                    }
                    "--hybrid" => hybrid = true,
                    "--checkpoint" => {
                        let path = value("--checkpoint")?;
                        checkpoint = Some(
                            std::fs::read_to_string(path)
                                .map_err(|e| CtlError::io(format!("{path}: {e}")))?,
                        )
                    }
                    other => return Err(CtlError::usage(format!("unknown flag '{other}'"))),
                }
            }
            let strategy = match strategy_name.as_str() {
                "auto" => StrategySpec::Auto,
                "naive" => StrategySpec::Naive,
                "factoring" => StrategySpec::Factoring,
                "mc" => StrategySpec::Mc { seed, samples },
                other => return Err(CtlError::usage(format!("unknown strategy '{other}'"))),
            };
            let mut client = connect(&addr)?;
            let resp = client
                .compute(ComputeRequest {
                    net,
                    strategy,
                    timeout_ms,
                    max_configs,
                    hybrid,
                    checkpoint,
                })
                .map_err(|e| CtlError::io(format!("compute: {e}")))?;
            Ok(report(resp))
        }
        "--help" | "-h" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(CtlError::usage(format!(
            "unknown command '{other}'\n{}",
            usage()
        ))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("flowrelctl: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
