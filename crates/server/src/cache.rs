//! Instance and result caching for graceful degradation under load.
//!
//! Two layers, both bounded and both safe to lose (pure caches, no
//! correctness state):
//!
//! * **parse cache** — `.fnet` text (keyed by FNV-1a of the bytes) → parsed
//!   network + demand, so a client hammering the same instance does not pay
//!   the parse on every request;
//! * **result cache** — `(instance fingerprint, strategy key)` → finished
//!   answer, so repeated identical questions are answered from memory even
//!   while the worker pool is saturated. Complete answers are stored under
//!   *both* the raw instance fingerprint and (when the calculator reduces)
//!   the post-reduction fingerprint, so two different raw instances that
//!   the structural reduction collapses to the same shape share one entry;
//!   hits are counted separately per key kind. Only *complete* results are
//!   cached; partials carry resume state and are parked instead (see
//!   [`crate::park`]).
//!
//! Certified (exact) and statistical (sampled — hybrid plans, Monte-Carlo
//! estimates) completes live on **separate shelves**: a statistical store
//!   structurally *cannot* overwrite a certified entry for the same
//!   fingerprint, and a certified answer is served to every request while a
//!   statistical one is served only to requests that opted into sampling.
//!
//! Eviction is FIFO at a fixed capacity: reliability workloads are
//! few-instances-many-queries, so anything smarter buys nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use flowrel_core::fnet::NetFile;

/// FNV-1a over arbitrary bytes — same family as the checkpoint fingerprint,
/// used here only as a cache key for raw `.fnet` text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cached complete answer.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The reliability value.
    pub reliability: f64,
    /// Algorithm that produced it.
    pub algorithm: String,
    /// `true` when the answer came from exact enumeration; `false` when any
    /// part of it was sampled (hybrid plan leaves, Monte-Carlo estimates).
    /// Routes the entry to the certified or the statistical shelf.
    pub certified: bool,
}

#[derive(Debug)]
struct Shelf<V> {
    map: HashMap<u64, V>,
    order: Vec<u64>,
}

impl<V> Default for Shelf<V> {
    fn default() -> Self {
        Shelf {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }
}

impl<V: Clone> Shelf<V> {
    fn get(&self, key: u64) -> Option<V> {
        self.map.get(&key).cloned()
    }

    fn put(&mut self, key: u64, value: V, cap: usize) {
        if self.map.insert(key, value).is_none() {
            self.order.push(key);
            if self.order.len() > cap {
                let evicted = self.order.remove(0);
                self.map.remove(&evicted);
            }
        }
    }
}

/// Hit/miss counters (monotonic, read for `stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheCounters {
    /// Parse-cache hits.
    pub hits: u64,
    /// Parse-cache misses.
    pub misses: u64,
    /// Result-cache hits, total (raw + reduced).
    pub result_hits: u64,
    /// Result-cache hits keyed by the *raw* instance fingerprint — the
    /// client resent a byte-equivalent instance.
    pub result_hits_raw: u64,
    /// Result-cache hits keyed by the *post-reduction* fingerprint — a
    /// different raw instance that the structural reduction collapsed to an
    /// already-answered shape.
    pub result_hits_reduced: u64,
}

/// The two-layer cache. All methods take `&self`; internal locking.
#[derive(Debug)]
pub struct InstanceCache {
    parsed: Mutex<Shelf<Arc<NetFile>>>,
    certified_results: Mutex<Shelf<CachedResult>>,
    statistical_results: Mutex<Shelf<CachedResult>>,
    counters: Mutex<CacheCounters>,
    capacity: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl InstanceCache {
    /// A cache holding at most `capacity` entries per layer.
    pub fn new(capacity: usize) -> Self {
        InstanceCache {
            parsed: Mutex::new(Shelf::default()),
            certified_results: Mutex::new(Shelf::default()),
            statistical_results: Mutex::new(Shelf::default()),
            counters: Mutex::new(CacheCounters::default()),
            capacity: capacity.max(1),
        }
    }

    /// Looks up (or parses and stores) the network for `text`. Parse errors
    /// are not cached — a retransmitted fixed file must get a fresh parse.
    pub fn parse(&self, text: &str) -> Result<Arc<NetFile>, flowrel_core::fnet::ParseError> {
        let key = fnv1a(text.as_bytes());
        if let Some(hit) = lock(&self.parsed).get(key) {
            lock(&self.counters).hits += 1;
            return Ok(hit);
        }
        lock(&self.counters).misses += 1;
        let parsed = Arc::new(flowrel_core::fnet::parse(text)?);
        lock(&self.parsed).put(key, Arc::clone(&parsed), self.capacity);
        Ok(parsed)
    }

    /// Result-cache key for one (instance fingerprint, strategy) pair.
    fn result_key(fingerprint: u64, strategy_key: &str) -> u64 {
        let mut bytes = fingerprint.to_be_bytes().to_vec();
        bytes.extend_from_slice(strategy_key.as_bytes());
        fnv1a(&bytes)
    }

    /// Fetches a cached complete answer under the *raw* instance
    /// fingerprint (the instance exactly as the client sent it). A
    /// certified entry is always served; a statistical one only when the
    /// request opted into sampling (`accept_statistical`).
    pub fn result(
        &self,
        fingerprint: u64,
        strategy_key: &str,
        accept_statistical: bool,
    ) -> Option<CachedResult> {
        self.lookup(fingerprint, strategy_key, accept_statistical, false)
    }

    /// Fetches a cached complete answer under the *post-reduction*
    /// fingerprint — counted separately, since a hit here means the
    /// structural reduction unified two raw instances the byte-level key
    /// could not.
    pub fn result_reduced(
        &self,
        fingerprint: u64,
        strategy_key: &str,
        accept_statistical: bool,
    ) -> Option<CachedResult> {
        self.lookup(fingerprint, strategy_key, accept_statistical, true)
    }

    fn lookup(
        &self,
        fingerprint: u64,
        strategy_key: &str,
        accept_statistical: bool,
        reduced: bool,
    ) -> Option<CachedResult> {
        let key = Self::result_key(fingerprint, strategy_key);
        let hit = lock(&self.certified_results).get(key).or_else(|| {
            if accept_statistical {
                lock(&self.statistical_results).get(key)
            } else {
                None
            }
        });
        if hit.is_some() {
            let mut c = lock(&self.counters);
            c.result_hits += 1;
            if reduced {
                c.result_hits_reduced += 1;
            } else {
                c.result_hits_raw += 1;
            }
        }
        hit
    }

    /// Stores a complete answer on the shelf matching its label. The shelves
    /// are disjoint, so a statistical answer can never displace a certified
    /// one for the same `(fingerprint, strategy)` key — at worst it shadows
    /// an older statistical entry.
    pub fn store_result(&self, fingerprint: u64, strategy_key: &str, result: CachedResult) {
        let shelf = if result.certified {
            &self.certified_results
        } else {
            &self.statistical_results
        };
        lock(shelf).put(
            Self::result_key(fingerprint, strategy_key),
            result,
            self.capacity,
        );
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        *lock(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET: &str = "directed\nnodes 2\nedge 0 1 1 0.1\ndemand 0 1 1\n";

    #[test]
    fn parse_cache_hits_on_identical_text() {
        let cache = InstanceCache::new(4);
        let a = cache.parse(NET).unwrap();
        let b = cache.parse(NET).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = InstanceCache::new(4);
        assert!(cache.parse("nonsense").is_err());
        assert!(cache.parse("nonsense").is_err());
        assert_eq!(cache.counters().hits, 0);
    }

    fn certified(r: f64) -> CachedResult {
        CachedResult {
            reliability: r,
            algorithm: "naive".into(),
            certified: true,
        }
    }

    fn statistical(r: f64) -> CachedResult {
        CachedResult {
            reliability: r,
            algorithm: "plan+mc".into(),
            certified: false,
        }
    }

    #[test]
    fn result_cache_distinguishes_strategies() {
        let cache = InstanceCache::new(4);
        cache.store_result(42, "naive", certified(0.5));
        assert!(cache.result(42, "naive", false).is_some());
        assert!(cache.result(42, "factoring", false).is_none());
        assert!(cache.result(41, "naive", false).is_none());
    }

    #[test]
    fn result_hits_split_by_fingerprint_kind() {
        let cache = InstanceCache::new(4);
        cache.store_result(7, "naive", certified(0.5));
        assert!(cache.result(7, "naive", false).is_some());
        assert!(cache.result_reduced(7, "naive", false).is_some());
        assert!(cache.result_reduced(7, "naive", false).is_some());
        assert!(cache.result_reduced(8, "naive", false).is_none());
        let c = cache.counters();
        assert_eq!(
            (c.result_hits, c.result_hits_raw, c.result_hits_reduced),
            (3, 1, 2)
        );
    }

    #[test]
    fn statistical_results_are_served_only_on_opt_in() {
        let cache = InstanceCache::new(4);
        cache.store_result(9, "plan", statistical(0.4));
        assert!(cache.result(9, "plan", false).is_none());
        let hit = cache.result(9, "plan", true).unwrap();
        assert!(!hit.certified);
        // The refused lookup must not count as a hit.
        assert_eq!(cache.counters().result_hits, 1);
    }

    #[test]
    fn a_statistical_store_never_overwrites_a_certified_entry() {
        let cache = InstanceCache::new(4);
        cache.store_result(11, "plan", certified(0.75));
        cache.store_result(11, "plan", statistical(0.74));
        // Even a sampling-tolerant request gets the certified answer back.
        let hit = cache.result(11, "plan", true).unwrap();
        assert!(hit.certified);
        assert_eq!(hit.reliability, 0.75);
        // The other direction is an upgrade: certified shadows statistical.
        cache.store_result(12, "plan", statistical(0.30));
        cache.store_result(12, "plan", certified(0.31));
        let hit = cache.result(12, "plan", true).unwrap();
        assert!(hit.certified);
        assert_eq!(hit.reliability, 0.31);
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let cache = InstanceCache::new(2);
        for i in 0..5u64 {
            cache.store_result(i, "naive", certified(0.1));
        }
        let held: usize = (0..5u64)
            .filter(|&i| cache.result(i, "naive", false).is_some())
            .count();
        assert_eq!(held, 2);
    }
}
