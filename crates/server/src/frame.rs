//! Length-prefixed JSON framing.
//!
//! A frame is a 4-byte big-endian payload length followed by that many bytes
//! of UTF-8 JSON. The codec here is *pure* (buffers in, frames out) so the
//! property suite can hammer it without sockets; stream plumbing lives in
//! the session loop.
//!
//! Hardening rules:
//! * a length of `0` or one exceeding the configured maximum is **fatal** —
//!   the stream can no longer be trusted to be frame-aligned, so the caller
//!   replies with a structured error and closes;
//! * malformed JSON inside a well-delimited frame is **recoverable** — the
//!   frame is consumed, an error is returned, and the connection lives on;
//! * an incomplete frame is simply "not yet" ([`FrameReader::try_frame`]
//!   returns `Ok(None)`); the session loop enforces the slow-loris deadline
//!   by watching how long a partial frame has been pending.

use std::fmt;

use crate::json::{self, Json, JsonError, JsonLimits};

/// Byte length of the frame header (big-endian `u32` payload length).
pub const HEADER_LEN: usize = 4;

/// Hard ceiling on `max_frame` no configuration may exceed.
pub const ABSOLUTE_MAX_FRAME: usize = 64 << 20;

/// Framing / decoding failures.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameError {
    /// The advertised payload length exceeds the limit. Fatal.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A zero-length payload was advertised. Fatal.
    EmptyFrame,
    /// The payload is not valid UTF-8 or not valid JSON. Recoverable: the
    /// frame was consumed and the stream stays aligned.
    Malformed(JsonError),
}

impl FrameError {
    /// Whether the stream is still frame-aligned after this error (the
    /// caller may keep the connection open).
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::Malformed(_))
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::EmptyFrame => write!(f, "zero-length frame"),
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one value as a frame. Fails (rather than panics or truncates) if
/// the rendered payload exceeds `max_frame`.
pub fn encode(value: &Json, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let payload = value.render();
    if payload.len() > max_frame.min(ABSOLUTE_MAX_FRAME) {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: max_frame.min(ABSOLUTE_MAX_FRAME),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    Ok(out)
}

/// Incremental frame decoder over an internal byte buffer.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
    limits: JsonLimits,
}

impl FrameReader {
    /// A reader enforcing the given frame-size cap and JSON limits.
    pub fn new(max_frame: usize, limits: JsonLimits) -> Self {
        FrameReader {
            buf: Vec::new(),
            max_frame: max_frame.min(ABSOLUTE_MAX_FRAME),
            limits,
        }
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial frame is buffered (used for the slow-loris clock).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to decode the next frame from the buffer.
    ///
    /// `Ok(Some(v))` — one frame decoded and consumed. `Ok(None)` — need
    /// more bytes. `Err(e)` — on a recoverable error the offending frame has
    /// been consumed; on a fatal one the buffer is poisoned and the caller
    /// must close the connection.
    pub fn try_frame(&mut self) -> Result<Option<Json>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len == 0 {
            return Err(FrameError::EmptyFrame);
        }
        if len > self.max_frame {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self
            .buf
            .drain(..HEADER_LEN + len)
            .skip(HEADER_LEN)
            .collect();
        let text = match std::str::from_utf8(&payload) {
            Ok(t) => t,
            Err(e) => {
                return Err(FrameError::Malformed(JsonError {
                    at: e.valid_up_to(),
                    message: "payload is not valid utf-8".into(),
                }))
            }
        };
        match json::parse(text, &self.limits) {
            Ok(v) => Ok(Some(v)),
            Err(e) => Err(FrameError::Malformed(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn reader() -> FrameReader {
        FrameReader::new(1 << 20, JsonLimits::default())
    }

    #[test]
    fn roundtrip_and_pipelining() {
        let a = obj([("op", Json::Str("ping".into()))]);
        let b = Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]);
        let mut bytes = encode(&a, 1 << 20).unwrap();
        bytes.extend(encode(&b, 1 << 20).unwrap());
        let mut r = reader();
        // trickle one byte at a time: no progress until complete
        for chunk in bytes.chunks(1) {
            r.push(chunk);
        }
        assert_eq!(r.try_frame().unwrap(), Some(a));
        assert_eq!(r.try_frame().unwrap(), Some(b));
        assert_eq!(r.try_frame().unwrap(), None);
        assert!(!r.has_partial());
    }

    #[test]
    fn oversized_and_empty_frames_are_fatal() {
        let mut r = FrameReader::new(8, JsonLimits::default());
        r.push(&100u32.to_be_bytes());
        assert!(matches!(r.try_frame(), Err(FrameError::TooLarge { .. })));
        let mut r2 = reader();
        r2.push(&0u32.to_be_bytes());
        let e = r2.try_frame().unwrap_err();
        assert_eq!(e, FrameError::EmptyFrame);
        assert!(!e.recoverable());
    }

    #[test]
    fn malformed_payload_is_recoverable_and_consumed() {
        let mut r = reader();
        let garbage = b"{not json";
        r.push(&(garbage.len() as u32).to_be_bytes());
        r.push(garbage);
        let ping = obj([("op", Json::Str("ping".into()))]);
        r.push(&encode(&ping, 1 << 20).unwrap());
        let e = r.try_frame().unwrap_err();
        assert!(e.recoverable(), "{e}");
        // the stream stays aligned: the next frame decodes
        assert_eq!(r.try_frame().unwrap(), Some(ping));
    }

    #[test]
    fn encode_refuses_oversized_payloads() {
        let big = Json::Str("x".repeat(100));
        assert!(matches!(encode(&big, 16), Err(FrameError::TooLarge { .. })));
    }
}
