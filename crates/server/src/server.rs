//! The daemon: accept loop, per-connection sessions, budgeted compute.
//!
//! Threading model (no async runtime — the repo vendors no executor):
//!
//! * the **accept thread** polls a non-blocking listener every few
//!   milliseconds, checking the shutdown token between polls;
//! * each connection gets a **session thread** running a frame loop with a
//!   short socket read timeout as its polling interval — that is how idle
//!   and slow-loris deadlines, shutdown, and client disconnects are noticed
//!   without an event loop;
//! * a compute request runs on a **scoped worker thread** while the session
//!   thread keeps probing the socket: pings are answered mid-compute, EOF
//!   trips the request's [`CancelToken`] so an abandoned sweep stops within
//!   one budget poll instead of running to completion.
//!
//! Robustness invariants the fault-injection suite pins down:
//!
//! * no input, timing, or disconnect may panic a session (panics in compute
//!   are caught, counted, and answered as `internal` errors);
//! * admission is bounded: at most `max_concurrent` computes, a bounded
//!   wait queue, everything else shed with a `retry_after_ms` hint;
//! * a drain (SIGTERM or `shutdown` RPC) parks every interrupted request
//!   under a resume token persisted to `state_dir`, and a restarted server
//!   resumes those tokens bit-identically.

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flowrel_core::budget::{Budget, CancelToken};
use flowrel_core::checkpoint::{instance_fingerprint, Checkpoint};
use flowrel_core::{CalcOptions, Outcome, ReliabilityCalculator, Strategy};

use crate::admission::Admission;
use crate::cache::{CachedResult, InstanceCache};
use crate::conn::{BindAddr, Conn, Listener};
use crate::frame::{encode, FrameReader};
use crate::json::JsonLimits;
use crate::park::{ParkedSession, ParkingLot};
use crate::proto::{
    code, ComputeRequest, ProtoLimits, Request, Response, StatsSnapshot, StrategySpec, WireError,
};

/// Tuning knobs for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`unix:/path` or `host:port`).
    pub addr: BindAddr,
    /// Maximum concurrent computing requests.
    pub max_concurrent: usize,
    /// Maximum admissions waiting for a slot before shedding.
    pub max_waiting: usize,
    /// Longest an admission may wait for a slot.
    pub max_wait: Duration,
    /// Deadline applied to requests that specify none.
    pub default_timeout: Duration,
    /// Hard ceiling any requested deadline is clamped to.
    pub max_timeout: Duration,
    /// A session with no complete frame for this long is reaped.
    pub idle_timeout: Duration,
    /// A *partial* frame pending this long is a slow-loris: reaped.
    pub partial_frame_timeout: Duration,
    /// Maximum frame size accepted or produced.
    pub max_frame: usize,
    /// Per-field payload limits.
    pub proto_limits: ProtoLimits,
    /// JSON structural limits.
    pub json_limits: JsonLimits,
    /// Directory for parked-session persistence (`None`: in-memory only).
    pub state_dir: Option<std::path::PathBuf>,
    /// Entries per cache layer.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: BindAddr::Tcp("127.0.0.1:0".into()),
            max_concurrent: 4,
            max_waiting: 16,
            max_wait: Duration::from_millis(500),
            default_timeout: Duration::from_secs(30),
            max_timeout: Duration::from_secs(300),
            idle_timeout: Duration::from_secs(60),
            partial_frame_timeout: Duration::from_secs(5),
            max_frame: 48 << 20,
            proto_limits: ProtoLimits::default(),
            json_limits: JsonLimits::default(),
            state_dir: None,
            cache_capacity: 64,
        }
    }
}

/// Monotonic counters exported via `stats`.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    panics: AtomicU64,
    active_sessions: AtomicU64,
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    admission: Admission,
    cache: InstanceCache,
    lot: ParkingLot,
    counters: Counters,
    shutdown: CancelToken,
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::begin_shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: BindAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The concrete bound address (`:0` resolved).
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// Starts a graceful drain: stop accepting, interrupt in-flight
    /// requests (they park under resume tokens), let sessions close.
    /// Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.trip();
    }

    /// Whether a drain has begun.
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.is_tripped()
    }

    /// A clone of the drain token, for wiring external shutdown sources
    /// (e.g. the signal handler): tripping it is `begin_shutdown`.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// Current statistics.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Waits for the accept loop (and every session) to finish. Returns
    /// only after [`Self::begin_shutdown`] (or a `shutdown` RPC) has fired.
    pub fn join(mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let cc = shared.cache.counters();
    StatsSnapshot {
        active_sessions: shared.counters.active_sessions.load(Ordering::Relaxed),
        active_requests: shared.admission.active() as u64,
        served: shared.counters.served.load(Ordering::Relaxed),
        shed: shared.counters.shed.load(Ordering::Relaxed),
        protocol_errors: shared.counters.protocol_errors.load(Ordering::Relaxed),
        panics: shared.counters.panics.load(Ordering::Relaxed),
        parked: shared.lot.count() as u64,
        cache_hits: cc.hits,
        cache_misses: cc.misses,
        result_hits: cc.result_hits,
        result_hits_raw: cc.result_hits_raw,
        result_hits_reduced: cc.result_hits_reduced,
        shutting_down: shared.shutdown.is_tripped(),
    }
}

/// Binds and spawns the server.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = Listener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let lot = ParkingLot::new(config.state_dir.clone())?;
    let shared = Arc::new(Shared {
        admission: Admission::new(config.max_concurrent, config.max_waiting, config.max_wait),
        cache: InstanceCache::new(config.cache_capacity),
        lot,
        counters: Counters::default(),
        shutdown: CancelToken::new(),
        config,
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("flowrel-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.is_tripped() {
        sessions.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok(Some(conn)) => {
                let sess_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("flowrel-session".into())
                    .spawn(move || session_loop(conn, sess_shared));
                match spawned {
                    Ok(h) => sessions.push(h),
                    Err(_) => { /* thread exhaustion: drop the connection */ }
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    drop(listener); // close the socket before draining sessions
    for h in sessions {
        let _ = h.join();
    }
}

/// RAII active-session counter.
struct SessionGuard<'a>(&'a Counters);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

fn send(conn: &mut Conn, shared: &Shared, resp: &Response) -> bool {
    match encode(&resp.to_json(), shared.config.max_frame) {
        Ok(bytes) => conn.write_all(&bytes).and_then(|_| conn.flush()).is_ok(),
        Err(_) => {
            // The reply itself is oversized (should be impossible for our own
            // responses under sane limits): degrade to a protocol error.
            let fallback = Response::Error(WireError::protocol("reply exceeded the frame limit"));
            if let Ok(bytes) = encode(&fallback.to_json(), shared.config.max_frame) {
                let _ = conn.write_all(&bytes);
            }
            false
        }
    }
}

fn session_loop(mut conn: Conn, shared: Arc<Shared>) {
    shared
        .counters
        .active_sessions
        .fetch_add(1, Ordering::Relaxed);
    let _guard = SessionGuard(&shared.counters);
    if conn
        .set_read_timeout(Some(Duration::from_millis(20)))
        .is_err()
        || conn
            .set_write_timeout(Some(Duration::from_secs(10)))
            .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new(shared.config.max_frame, shared.config.json_limits);
    let mut last_frame = Instant::now();
    let mut partial_since: Option<Instant> = None;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.shutdown.is_tripped() {
            return; // drain: in-flight computes already finished parking
        }
        if last_frame.elapsed() > shared.config.idle_timeout {
            return; // idle reaping
        }
        if let Some(t0) = partial_since {
            if t0.elapsed() > shared.config.partial_frame_timeout {
                // Slow loris: a frame has been dribbling in for too long.
                send(
                    &mut conn,
                    &shared,
                    &Response::Error(WireError::protocol("partial frame timed out")),
                );
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        match conn.read(&mut buf) {
            Ok(0) => return, // orderly EOF
            Ok(n) => reader.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
        loop {
            match reader.try_frame() {
                Ok(Some(frame)) => {
                    last_frame = Instant::now();
                    let keep_going = match Request::from_json(&frame, &shared.config.proto_limits) {
                        Ok(req) => handle_request(&mut conn, &shared, &mut reader, req),
                        Err(e) => {
                            shared
                                .counters
                                .protocol_errors
                                .fetch_add(1, Ordering::Relaxed);
                            send(&mut conn, &shared, &Response::Error(e))
                        }
                    };
                    if !keep_going {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let reply =
                        Response::Error(WireError::new(code::PROTOCOL, "protocol", e.to_string()));
                    let sent = send(&mut conn, &shared, &reply);
                    if !e.recoverable() || !sent {
                        return; // stream no longer frame-aligned
                    }
                }
            }
        }
        partial_since = if reader.has_partial() {
            partial_since.or_else(|| Some(Instant::now()))
        } else {
            None
        };
    }
}

/// Handles one parsed request. Returns `false` when the session must close.
fn handle_request(
    conn: &mut Conn,
    shared: &Shared,
    reader: &mut FrameReader,
    req: Request,
) -> bool {
    match req {
        Request::Ping => send(conn, shared, &Response::Pong),
        Request::Stats => send(conn, shared, &Response::Stats(snapshot(shared))),
        Request::Shutdown => {
            let _ = send(conn, shared, &Response::ShuttingDown);
            shared.shutdown.trip();
            false
        }
        Request::Compute(c) => {
            let resp = serve_compute(conn, shared, reader, c);
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            send(conn, shared, &resp)
        }
        Request::Resume { token } => {
            let resp = serve_resume(conn, shared, reader, &token);
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            send(conn, shared, &resp)
        }
    }
}

fn strategy_of(spec: &StrategySpec) -> Strategy {
    match spec {
        StrategySpec::Auto => Strategy::Auto,
        StrategySpec::Naive => Strategy::Naive,
        StrategySpec::Factoring => Strategy::Factoring,
        StrategySpec::Mc { seed, samples } => Strategy::MonteCarlo(montecarlo::McSettings {
            seed: *seed,
            target: montecarlo::StopTarget {
                max_samples: *samples,
                ..Default::default()
            },
            ..Default::default()
        }),
    }
}

/// Builds the per-request calculator: serial (bit-identical resume), with a
/// clamped deadline and the request's own cancel token.
fn calculator_for(
    shared: &Shared,
    spec: &StrategySpec,
    timeout_ms: Option<u64>,
    max_configs: Option<u64>,
    hybrid: bool,
    cancel: CancelToken,
) -> ReliabilityCalculator {
    let requested = timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_timeout);
    let deadline = requested.min(shared.config.max_timeout);
    ReliabilityCalculator {
        strategy: strategy_of(spec),
        options: CalcOptions {
            parallel: false,
            hybrid,
            budget: Budget {
                time_limit: Some(deadline),
                max_configs,
                cancel: Some(cancel),
            },
            ..Default::default()
        },
    }
}

/// Admission + the probed compute, shared by `compute` and `resume`.
///
/// `work` runs on a scoped worker thread; this (session) thread probes the
/// socket meanwhile — answering pings (heartbeat stays alive through long
/// computations), tripping `cancel` on client EOF or server drain — so a
/// dead client never keeps a sweep running. The probe shares the session's
/// [`FrameReader`], so frames straddling the compute window stay aligned.
fn admit_and_run(
    conn: &mut Conn,
    shared: &Shared,
    reader: &mut FrameReader,
    cancel: &CancelToken,
    work: impl FnOnce() -> Response + Send,
) -> Response {
    if shared.shutdown.is_tripped() {
        return Response::Error(WireError::new(
            code::SHUTTING_DOWN,
            "shutting-down",
            "server is draining; no new work accepted",
        ));
    }
    let permit = match shared.admission.admit() {
        Ok(p) => p,
        Err(over) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            let mut e = WireError::new(
                code::OVERLOADED,
                "overloaded",
                "worker pool and wait queue are full",
            );
            e.retry_after_ms = Some(over.retry_after_ms);
            return Response::Error(e);
        }
    };
    let result = std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<Response>();
        let panics = &shared.counters.panics;
        s.spawn(move || {
            let resp = match catch_unwind(AssertUnwindSafe(work)) {
                Ok(r) => r,
                Err(_) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    Response::Error(WireError::new(
                        code::INTERNAL,
                        "internal",
                        "computation panicked; the fault was contained",
                    ))
                }
            };
            let _ = tx.send(resp);
        });
        let mut probe_buf = [0u8; 4096];
        loop {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(resp) => break resp,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break Response::Error(WireError::new(
                        code::INTERNAL,
                        "internal",
                        "worker vanished",
                    ))
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
            }
            if shared.shutdown.is_tripped() {
                cancel.trip(); // drain: park at the next budget poll
            }
            match conn.read(&mut probe_buf) {
                Ok(0) => cancel.trip(), // client vanished mid-request
                Ok(n) => {
                    reader.push(&probe_buf[..n]);
                    probe_frames(conn, shared, reader, cancel);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => cancel.trip(),
            }
        }
    });
    drop(permit);
    result
}

/// Drains frames arriving *during* a compute: pings keep the heartbeat
/// alive, anything else is refused (one request at a time per connection).
/// Fatal framing errors are treated like a disconnect — the sweep is
/// cancelled (it parks and stays resumable) and the read side is shut.
fn probe_frames(conn: &mut Conn, shared: &Shared, reader: &mut FrameReader, cancel: &CancelToken) {
    loop {
        match reader.try_frame() {
            Ok(None) => return,
            Ok(Some(frame)) => {
                let reply = match Request::from_json(&frame, &shared.config.proto_limits) {
                    Ok(Request::Ping) => Response::Pong,
                    Ok(Request::Stats) => Response::Stats(snapshot(shared)),
                    Ok(_) => {
                        Response::Error(WireError::protocol("one request at a time per connection"))
                    }
                    Err(e) => {
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        Response::Error(e)
                    }
                };
                let _ = send(conn, shared, &reply);
            }
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    conn,
                    shared,
                    &Response::Error(WireError::new(code::PROTOCOL, "protocol", e.to_string())),
                );
                if !e.recoverable() {
                    cancel.trip();
                    let _ = conn.shutdown(std::net::Shutdown::Read);
                    return;
                }
            }
        }
    }
}

/// Wraps a finished outcome: caches completes, parks partials under a token.
///
/// `reduced_fingerprint` is the post-reduction instance fingerprint when the
/// calculator reduced and the reduction actually changed the instance;
/// complete answers are stored under it too, so a *different* raw instance
/// that reduces to the same shape is served from memory.
fn finish_outcome(
    shared: &Shared,
    outcome: Result<Outcome, flowrel_core::ReliabilityError>,
    fingerprint: u64,
    reduced_fingerprint: Option<u64>,
    strategy_key: &str,
    net_text: &str,
) -> Response {
    match outcome {
        Err(e) => Response::Error(WireError::reliability(&e)),
        Ok(Outcome::Complete(rep)) => {
            // `store_result` shelves by the label: a statistical complete
            // lands on its own shelf and can never displace a certified
            // answer already cached for this fingerprint.
            shared.cache.store_result(
                fingerprint,
                strategy_key,
                CachedResult {
                    reliability: rep.reliability,
                    algorithm: rep.algorithm.to_string(),
                    certified: rep.certified,
                },
            );
            if let Some(rfp) = reduced_fingerprint.filter(|&rfp| rfp != fingerprint) {
                shared.cache.store_result(
                    rfp,
                    strategy_key,
                    CachedResult {
                        reliability: rep.reliability,
                        algorithm: rep.algorithm.to_string(),
                        certified: rep.certified,
                    },
                );
            }
            Response::Complete {
                reliability: rep.reliability,
                algorithm: rep.algorithm.to_string(),
                cached: false,
                certified: rep.certified,
            }
        }
        Ok(Outcome::Partial(p)) => {
            let token = shared.lot.mint_token(fingerprint);
            let checkpoint_text = p.checkpoint.to_text();
            let parked = ParkedSession {
                token: token.clone(),
                strategy_key: strategy_key.to_string(),
                net_text: net_text.to_string(),
                checkpoint_text: checkpoint_text.clone(),
            };
            if shared.lot.park(parked).is_err() {
                // Disk refused the parked session: the client still gets the
                // checkpoint text and can resume client-side.
            }
            Response::Partial {
                r_low: p.r_low,
                r_high: p.r_high,
                explored: p.explored,
                algorithm: p.algorithm.to_string(),
                token,
                checkpoint: checkpoint_text,
                certified: p.certified,
            }
        }
    }
}

fn serve_compute(
    conn: &mut Conn,
    shared: &Shared,
    reader: &mut FrameReader,
    req: ComputeRequest,
) -> Response {
    let parsed = match shared.cache.parse(&req.net) {
        Ok(p) => p,
        Err(e) => {
            return Response::Error(WireError::new(
                code::PARSE,
                "parse",
                format!("line {}: {}", e.line, e.message),
            ))
        }
    };
    let Some(demand) = parsed.demand else {
        return Response::Error(WireError::usage("network description has no 'demand' line"));
    };
    let checkpoint = match &req.checkpoint {
        None => None,
        Some(text) => match Checkpoint::from_text(text) {
            Ok(ck) => Some(ck),
            Err(e) => return Response::Error(WireError::reliability(&e)),
        },
    };
    let cancel = CancelToken::new();
    let calc = calculator_for(
        shared,
        &req.strategy,
        req.timeout_ms,
        req.max_configs,
        req.hybrid,
        cancel.clone(),
    );
    let strategy_key = req.strategy.key();
    // A statistical cached answer is only acceptable to requests that opted
    // into sampling; everyone gets certified answers.
    let accept_statistical = req.hybrid || matches!(req.strategy, StrategySpec::Mc { .. });
    let fingerprint = instance_fingerprint(&parsed.net, &demand, &calc.options);
    // A cached complete answer short-circuits admission entirely — cheap
    // service stays available even when the pool is saturated. Fresh runs
    // (and anything carrying a checkpoint) go through the pool. The raw
    // fingerprint is tried first (free); on a miss, the post-reduction
    // fingerprint catches clients resending instances that are structurally
    // equivalent after capacity clamping, pruning, and merging — the
    // reduction costs a few min-cuts, far below any sweep it saves.
    let mut reduced_fingerprint = None;
    if checkpoint.is_none() {
        if let Some(hit) = shared
            .cache
            .result(fingerprint, &strategy_key, accept_statistical)
        {
            return Response::Complete {
                reliability: hit.reliability,
                algorithm: hit.algorithm,
                cached: true,
                certified: hit.certified,
            };
        }
        if calc.options.reduce && demand.validate(&parsed.net).is_ok() {
            let red = flowrel_core::reduce(&parsed.net, demand, true, calc.options.solver);
            if !red.is_identity() {
                let rfp = instance_fingerprint(&red.net, &red.demand, &calc.options);
                reduced_fingerprint = Some(rfp);
                if let Some(hit) =
                    shared
                        .cache
                        .result_reduced(rfp, &strategy_key, accept_statistical)
                {
                    return Response::Complete {
                        reliability: hit.reliability,
                        algorithm: hit.algorithm,
                        cached: true,
                        certified: hit.certified,
                    };
                }
            }
        }
    }
    let net = Arc::clone(&parsed);
    admit_and_run(conn, shared, reader, &cancel, move || {
        let result = match &checkpoint {
            None => calc.run(&net.net, demand),
            Some(ck) => calc.resume(&net.net, demand, ck),
        };
        finish_outcome(
            shared,
            result,
            fingerprint,
            reduced_fingerprint,
            &strategy_key,
            &req.net,
        )
    })
}

fn serve_resume(
    conn: &mut Conn,
    shared: &Shared,
    reader: &mut FrameReader,
    token: &str,
) -> Response {
    let Some(parked) = shared.lot.take(token) else {
        return Response::Error(WireError::new(
            code::UNKNOWN_TOKEN,
            "unknown-token",
            format!("no parked session '{token}' (already resumed, or never parked here)"),
        ));
    };
    let Some(spec) = StrategySpec::from_key(&parked.strategy_key) else {
        return Response::Error(WireError::new(
            code::INTERNAL,
            "internal",
            "parked session carries an unknown strategy key",
        ));
    };
    let parsed = match shared.cache.parse(&parked.net_text) {
        Ok(p) => p,
        Err(e) => {
            return Response::Error(WireError::new(
                code::PARSE,
                "parse",
                format!(
                    "parked network no longer parses (line {}): {}",
                    e.line, e.message
                ),
            ))
        }
    };
    let Some(demand) = parsed.demand else {
        return Response::Error(WireError::new(
            code::INTERNAL,
            "internal",
            "parked session lost its demand line",
        ));
    };
    let checkpoint = match Checkpoint::from_text(&parked.checkpoint_text) {
        Ok(ck) => ck,
        Err(e) => return Response::Error(WireError::reliability(&e)),
    };
    let cancel = CancelToken::new();
    // Resume does not need the request's hybrid flag: the calculator pins
    // `hybrid` from the checkpoint itself, keeping the resumed run
    // bit-identical to the interrupted one.
    let calc = calculator_for(shared, &spec, None, None, false, cancel.clone());
    let strategy_key = parked.strategy_key.clone();
    let fingerprint = instance_fingerprint(&parsed.net, &demand, &calc.options);
    let reparked = parked.clone();
    let net = Arc::clone(&parsed);
    let resp = admit_and_run(conn, shared, reader, &cancel, move || {
        let result = calc.resume(&net.net, demand, &checkpoint);
        finish_outcome(
            shared,
            result,
            fingerprint,
            None,
            &strategy_key,
            &parked.net_text,
        )
    });
    // If admission shed the resume (or the server was draining), the claimed
    // session would otherwise be lost: put it back so the token stays valid.
    if let Response::Error(e) = &resp {
        if e.code == code::OVERLOADED || e.code == code::SHUTTING_DOWN {
            let _ = shared.lot.put_back(reparked);
        }
    }
    resp
}
