//! Admission control: a bounded worker pool with a bounded wait queue.
//!
//! At most `max_concurrent` requests compute at once. Up to `max_waiting`
//! more may wait (briefly — bounded by `max_wait`) for a slot; anything
//! beyond that is shed immediately with a `retry_after_ms` hint so clients
//! back off instead of piling on. Permits are RAII: a worker that panics or
//! whose client vanishes still releases its slot.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why admission was refused.
#[derive(Clone, Debug, PartialEq)]
pub struct Overloaded {
    /// Suggested client back-off before retrying.
    pub retry_after_ms: u64,
}

#[derive(Debug, Default)]
struct State {
    active: usize,
    waiting: usize,
}

/// The semaphore guarding the worker pool.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<State>,
    freed: Condvar,
    max_concurrent: usize,
    max_waiting: usize,
    max_wait: Duration,
}

/// RAII permit for one computing request.
#[derive(Debug)]
pub struct Permit<'a> {
    pool: &'a Admission,
}

impl Admission {
    /// A pool running `max_concurrent` requests with `max_waiting` queued
    /// admissions, each waiting at most `max_wait`.
    pub fn new(max_concurrent: usize, max_waiting: usize, max_wait: Duration) -> Self {
        Admission {
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            max_waiting,
            max_wait,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to admit one request, waiting up to `max_wait` in the bounded
    /// queue if the pool is full.
    pub fn admit(&self) -> Result<Permit<'_>, Overloaded> {
        let mut st = self.lock();
        if st.active < self.max_concurrent {
            st.active += 1;
            return Ok(Permit { pool: self });
        }
        if st.waiting >= self.max_waiting {
            // Shed immediately: the queue is full too. Hint scales with how
            // deep the queue is — the later you arrive, the longer you wait.
            let hint = self.max_wait.as_millis() as u64 * (1 + st.waiting as u64)
                / self.max_waiting.max(1) as u64;
            return Err(Overloaded {
                retry_after_ms: hint.clamp(50, 30_000),
            });
        }
        st.waiting += 1;
        let deadline = Instant::now() + self.max_wait;
        loop {
            let now = Instant::now();
            if st.active < self.max_concurrent {
                st.waiting -= 1;
                st.active += 1;
                return Ok(Permit { pool: self });
            }
            if now >= deadline {
                st.waiting -= 1;
                return Err(Overloaded {
                    retry_after_ms: (self.max_wait.as_millis() as u64).clamp(50, 30_000),
                });
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Requests currently computing.
    pub fn active(&self) -> usize {
        self.lock().active
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.pool.lock();
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.pool.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let pool = Admission::new(2, 0, Duration::from_millis(10));
        let a = pool.admit().unwrap();
        let _b = pool.admit().unwrap();
        let e = pool.admit().unwrap_err();
        assert!(e.retry_after_ms >= 50);
        drop(a);
        let _c = pool.admit().unwrap();
    }

    #[test]
    fn waiter_gets_the_freed_slot() {
        let pool = Arc::new(Admission::new(1, 4, Duration::from_secs(5)));
        let permit = pool.admit().unwrap();
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p2.admit().map(|_| ()).is_ok());
        std::thread::sleep(Duration::from_millis(50));
        drop(permit);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn queue_overflow_sheds_immediately() {
        let pool = Arc::new(Admission::new(1, 1, Duration::from_secs(2)));
        let _permit = pool.admit().unwrap();
        let p2 = Arc::clone(&pool);
        let _waiter = std::thread::spawn(move || {
            let _ = p2.admit();
        });
        std::thread::sleep(Duration::from_millis(100));
        let start = Instant::now();
        assert!(pool.admit().is_err(), "queue is full: shed without waiting");
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn panicking_worker_releases_its_slot() {
        let pool = Arc::new(Admission::new(1, 0, Duration::from_millis(10)));
        let p2 = Arc::clone(&pool);
        let h = std::thread::spawn(move || {
            let _permit = p2.admit().unwrap();
            panic!("worker dies");
        });
        assert!(h.join().is_err());
        assert_eq!(pool.active(), 0, "RAII permit survived the panic");
        let _ = pool.admit().unwrap();
    }
}
