//! Transport abstraction: one connection / listener type over both TCP and
//! Unix-domain sockets, so the session loop, the client library, and the
//! fault-injection harness are transport-agnostic.
//!
//! Addresses are spelled `unix:/path/to.sock` or `host:port`. Unix sockets
//! are only available on Unix; on other platforms `unix:` addresses fail
//! with a clear error instead of being silently reinterpreted.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// A parsed bind/connect address.
#[derive(Clone, Debug, PartialEq)]
pub enum BindAddr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(std::path::PathBuf),
}

impl BindAddr {
    /// Parses `unix:/path` or `host:port`.
    pub fn parse(s: &str) -> Result<BindAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".into());
            }
            Ok(BindAddr::Unix(path.into()))
        } else if s.contains(':') {
            Ok(BindAddr::Tcp(s.to_string()))
        } else {
            Err(format!(
                "address '{s}' is neither 'unix:/path' nor 'host:port'"
            ))
        }
    }
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Tcp(a) => write!(f, "{a}"),
            BindAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`.
    pub fn connect(addr: &BindAddr) -> io::Result<Conn> {
        match addr {
            BindAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            BindAddr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
            #[cfg(not(unix))]
            BindAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// Sets (or clears) the read timeout. The session loop uses short
    /// timeouts as its polling interval.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets (or clears) the write timeout, bounding how long a slow reader
    /// can stall a reply.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(dur),
        }
    }

    /// Half-closes the write side (used by the fault harness to simulate
    /// impolite disconnects) or both sides.
    pub fn shutdown(&self, how: std::net::Shutdown) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(how),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (the path is removed on drop).
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Listener {
    /// Binds `addr`. A pre-existing Unix socket file is removed first (the
    /// daemon owns its socket path; a stale file from a crashed run must not
    /// block restart).
    pub fn bind(addr: &BindAddr) -> io::Result<Listener> {
        match addr {
            BindAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
            #[cfg(unix)]
            BindAddr::Unix(p) => {
                if p.exists() {
                    std::fs::remove_file(p)?;
                }
                Ok(Listener::Unix(UnixListener::bind(p)?, p.clone()))
            }
            #[cfg(not(unix))]
            BindAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// Puts the listener in non-blocking mode so the accept loop can poll
    /// the shutdown token between accepts.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection if one is pending; `Ok(None)` on `WouldBlock`.
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        let res = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match res {
            Ok(c) => Ok(Some(c)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The concrete bound address — for TCP this resolves `:0` to the real
    /// port, which the tests rely on.
    pub fn local_addr(&self) -> io::Result<BindAddr> {
        match self {
            Listener::Tcp(l) => Ok(BindAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, p) => Ok(BindAddr::Unix(p.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_addresses() {
        assert_eq!(
            BindAddr::parse("127.0.0.1:4500").unwrap(),
            BindAddr::Tcp("127.0.0.1:4500".into())
        );
        assert_eq!(
            BindAddr::parse("unix:/tmp/x.sock").unwrap(),
            BindAddr::Unix("/tmp/x.sock".into())
        );
        assert!(BindAddr::parse("nonsense").is_err());
        assert!(BindAddr::parse("unix:").is_err());
    }
}
