//! Parked sessions: crash-safe storage for interrupted calculations.
//!
//! When a request's budget runs out (or the server drains on SIGTERM with
//! work in flight), the partial result's checkpoint is *parked* under a
//! fresh token. A later `resume {token}` — against this process or a
//! restarted one — continues the sweep bit-identically.
//!
//! Persistence is a text format in the repo's house style (cf.
//! `flowrel-checkpoint v1`): a header line, small `key value` fields, then
//! byte-length-prefixed blocks for the embedded `.fnet` and checkpoint
//! texts (length-prefixing, not line-framing, because both blocks contain
//! newlines). Files are written to a temporary name and renamed into place,
//! so a crash mid-write never corrupts an existing parked session; loading
//! skips unreadable files rather than refusing to start.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::proto::valid_token;

const MAGIC: &str = "flowrel-parked-session v1";

/// One interrupted calculation, ready to resume.
#[derive(Clone, Debug, PartialEq)]
pub struct ParkedSession {
    /// The resume token (also the file stem on disk).
    pub token: String,
    /// Strategy key (see `StrategySpec::key`) the session was running.
    pub strategy_key: String,
    /// The `.fnet` text of the instance.
    pub net_text: String,
    /// The `flowrel-checkpoint v1` text capturing the sweep cursor.
    pub checkpoint_text: String,
}

impl ParkedSession {
    /// Serializes to the on-disk format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("token {}\n", self.token));
        out.push_str(&format!("strategy {}\n", self.strategy_key));
        out.push_str(&format!("net {}\n", self.net_text.len()));
        out.push_str(&self.net_text);
        out.push('\n');
        out.push_str(&format!("checkpoint {}\n", self.checkpoint_text.len()));
        out.push_str(&self.checkpoint_text);
        out.push('\n');
        out
    }

    /// Parses the on-disk format.
    pub fn from_text(text: &str) -> Result<ParkedSession, String> {
        let rest = text
            .strip_prefix(MAGIC)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| format!("missing '{MAGIC}' header"))?;
        let (token, rest) = field(rest, "token")?;
        if !valid_token(&token) {
            return Err("malformed token field".into());
        }
        let (strategy_key, rest) = field(&rest, "strategy")?;
        let (net_text, rest) = block(&rest, "net")?;
        let (checkpoint_text, _rest) = block(&rest, "checkpoint")?;
        Ok(ParkedSession {
            token,
            strategy_key,
            net_text,
            checkpoint_text,
        })
    }
}

/// Reads one `key value\n` line.
fn field(text: &str, key: &str) -> Result<(String, String), String> {
    let (line, rest) = text
        .split_once('\n')
        .ok_or_else(|| format!("truncated before '{key}'"))?;
    let value = line
        .strip_prefix(key)
        .and_then(|v| v.strip_prefix(' '))
        .ok_or_else(|| format!("expected '{key} …', found '{line}'"))?;
    Ok((value.to_string(), rest.to_string()))
}

/// Reads one `key <bytelen>\n<bytes>\n` block.
fn block(text: &str, key: &str) -> Result<(String, String), String> {
    let (len_str, rest) = field(text, key)?;
    let len: usize = len_str
        .parse()
        .map_err(|_| format!("'{key}' length is not a number"))?;
    if rest.len() < len + 1 {
        return Err(format!("'{key}' block truncated"));
    }
    if !rest.is_char_boundary(len) || &rest[len..len + 1] != "\n" {
        return Err(format!("'{key}' block length does not line up"));
    }
    Ok((rest[..len].to_string(), rest[len + 1..].to_string()))
}

/// The in-memory registry of parked sessions, optionally mirrored to disk.
#[derive(Debug)]
pub struct ParkingLot {
    sessions: Mutex<HashMap<String, ParkedSession>>,
    state_dir: Option<PathBuf>,
    seq: AtomicU64,
}

fn lock(
    m: &Mutex<HashMap<String, ParkedSession>>,
) -> MutexGuard<'_, HashMap<String, ParkedSession>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ParkingLot {
    /// An in-memory lot; with `state_dir` set, sessions are also persisted
    /// there and previously persisted ones are restored now.
    pub fn new(state_dir: Option<PathBuf>) -> io::Result<ParkingLot> {
        let lot = ParkingLot {
            sessions: Mutex::new(HashMap::new()),
            state_dir,
            seq: AtomicU64::new(0),
        };
        if let Some(dir) = &lot.state_dir {
            std::fs::create_dir_all(dir)?;
            let mut restored = lock(&lot.sessions);
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.extension().map(|e| e == "park") != Some(true) {
                    continue;
                }
                // A corrupt or foreign file must not block startup.
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let Ok(sess) = ParkedSession::from_text(&text) else {
                    continue;
                };
                restored.insert(sess.token.clone(), sess);
            }
        }
        Ok(lot)
    }

    /// Mints a token unique across restarts: instance fingerprint, wall
    /// clock, and an in-process sequence number (hex-and-dash only, so it is
    /// a safe file-name component — see [`valid_token`]).
    pub fn mint_token(&self, fingerprint: u64) -> String {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        format!("{fingerprint:016x}-{nanos:x}-{seq:x}")
    }

    /// Parks a session. Persists first (temp file + rename), then publishes
    /// in memory, so a token handed to a client is always recoverable.
    pub fn park(&self, session: ParkedSession) -> io::Result<()> {
        debug_assert!(valid_token(&session.token));
        if let Some(dir) = &self.state_dir {
            let final_path = dir.join(format!("{}.park", session.token));
            let tmp_path = dir.join(format!("{}.tmp", session.token));
            std::fs::write(&tmp_path, session.to_text())?;
            std::fs::rename(&tmp_path, &final_path)?;
        }
        lock(&self.sessions).insert(session.token.clone(), session);
        Ok(())
    }

    /// Atomically claims a parked session: exactly one of two concurrent
    /// resumers gets it; the other sees `None`.
    pub fn take(&self, token: &str) -> Option<ParkedSession> {
        if !valid_token(token) {
            return None;
        }
        let sess = lock(&self.sessions).remove(token)?;
        if let Some(dir) = &self.state_dir {
            let _ = std::fs::remove_file(dir.join(format!("{token}.park")));
        }
        Some(sess)
    }

    /// Puts a claimed session back (resume failed before any progress was
    /// consumed, e.g. the pool shed it).
    pub fn put_back(&self, session: ParkedSession) -> io::Result<()> {
        self.park(session)
    }

    /// Number of parked sessions.
    pub fn count(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// The state directory, if persistence is on.
    pub fn state_dir(&self) -> Option<&Path> {
        self.state_dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(token: &str) -> ParkedSession {
        ParkedSession {
            token: token.into(),
            strategy_key: "naive".into(),
            net_text: "directed\nnodes 2\nedge 0 1 1 0.1\ndemand 0 1 1\n".into(),
            checkpoint_text: "flowrel-checkpoint v1\nfingerprint 00ff\nkind naive\n".into(),
        }
    }

    #[test]
    fn text_roundtrip() {
        let s = sample("abc-123");
        assert_eq!(ParkedSession::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn rejects_corrupt_text() {
        let s = sample("abc-123");
        let text = s.to_text();
        assert!(ParkedSession::from_text(&text[..text.len() / 2]).is_err());
        assert!(ParkedSession::from_text("garbage").is_err());
        assert!(ParkedSession::from_text(&text.replace("net 4", "net 40000")).is_err());
    }

    #[test]
    fn in_memory_take_is_exclusive() {
        let lot = ParkingLot::new(None).unwrap();
        lot.park(sample("aa-1")).unwrap();
        assert!(lot.take("aa-1").is_some());
        assert!(lot.take("aa-1").is_none());
        assert!(lot.take("../evil").is_none());
    }

    #[test]
    fn persists_and_restores() {
        let dir = std::env::temp_dir().join(format!(
            "flowrel-park-test-{}-{}",
            std::process::id(),
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let lot = ParkingLot::new(Some(dir.clone())).unwrap();
        lot.park(sample("bb-2")).unwrap();
        drop(lot);
        // corrupt stray file must not block restart
        std::fs::write(dir.join("junk.park"), "not a session").unwrap();
        let restarted = ParkingLot::new(Some(dir.clone())).unwrap();
        assert_eq!(restarted.count(), 1);
        assert_eq!(restarted.take("bb-2").unwrap(), sample("bb-2"));
        // the take deleted the file: a third start sees nothing
        let third = ParkingLot::new(Some(dir.clone())).unwrap();
        assert_eq!(third.count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minted_tokens_are_valid_and_distinct() {
        let lot = ParkingLot::new(None).unwrap();
        let a = lot.mint_token(0xdead_beef);
        let b = lot.mint_token(0xdead_beef);
        assert!(valid_token(&a), "{a}");
        assert_ne!(a, b);
    }
}
