//! flowrel-server: reliability calculation as a fault-tolerant service.
//!
//! The library behind the `flowrel-server` daemon and the `flowrelctl`
//! client. It exposes [`flowrel_core::ReliabilityCalculator`] over TCP or
//! Unix-domain sockets with a length-prefixed JSON frame protocol, built
//! around three robustness pillars:
//!
//! 1. **hardened wire layer** ([`json`], [`frame`], [`proto`]) — size and
//!    depth limits at every level, malformed input answered with structured
//!    errors from the shared exit-code taxonomy, never panics;
//! 2. **admission control and deadlines** ([`admission`], [`server`]) — a
//!    bounded worker pool, per-request budgets with their own cancel
//!    tokens, client disconnects interrupting abandoned sweeps,
//!    load-shedding with retry hints;
//! 3. **graceful degradation and crash safety** ([`cache`], [`park`]) —
//!    answers cached by instance fingerprint, interrupted work returned as
//!    certified `[r_low, r_high]` bounds with resume tokens, drains that
//!    park unfinished sessions to disk and restore them on restart,
//!    bit-identically.
//!
//! Wire format: each frame is a 4-byte big-endian payload length followed
//! by a JSON object; requests carry `"op"`, replies carry `"ok"`. See
//! `DESIGN.md` §13 for the full protocol.

#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod conn;
pub mod frame;
pub mod json;
pub mod park;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use conn::BindAddr;
pub use proto::{ComputeRequest, Request, Response, StrategySpec, WireError};
pub use server::{start, ServerConfig, ServerHandle};
