//! The request/response vocabulary spoken inside frames.
//!
//! Every frame is a JSON object. Requests carry an `"op"` field
//! (`ping | stats | shutdown | compute | resume`); responses carry
//! `"ok": true|false`. Parsing is strict and bounded: unknown ops, missing
//! fields, wrong types, oversized per-field payloads, and malformed resume
//! tokens all surface as structured [`WireError`]s with stable codes, never
//! as panics.
//!
//! Error codes share the CLI's exit-code taxonomy: `2` usage, `4` parse,
//! `10`–`24` one per [`ReliabilityError`] variant
//! ([`ReliabilityError::code`]), plus server-side codes `5` protocol,
//! `6` overloaded (with a `retry_after_ms` hint), `7` unknown token,
//! `8` shutting down, and `9` internal.

use flowrel_core::ReliabilityError;

use crate::json::{obj, Json};

/// Per-field payload limits, independent of the frame-size cap (a frame may
/// be large because it carries a checkpoint; a *network description* that
/// large is still suspicious).
#[derive(Clone, Copy, Debug)]
pub struct ProtoLimits {
    /// Maximum byte length of an inline `.fnet` network description.
    pub max_net: usize,
    /// Maximum byte length of an inline checkpoint.
    pub max_checkpoint: usize,
}

impl Default for ProtoLimits {
    fn default() -> Self {
        ProtoLimits {
            max_net: 1 << 20,
            max_checkpoint: 32 << 20,
        }
    }
}

/// Wire error codes that do not come from [`ReliabilityError`].
pub mod code {
    /// Malformed request shape (missing/bad fields, unknown op).
    pub const USAGE: u8 = 2;
    /// The inline `.fnet` text failed to parse.
    pub const PARSE: u8 = 4;
    /// Framing/JSON-level protocol violation.
    pub const PROTOCOL: u8 = 5;
    /// Admission control shed the request; retry after the hint.
    pub const OVERLOADED: u8 = 6;
    /// No parked session with the given token.
    pub const UNKNOWN_TOKEN: u8 = 7;
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: u8 = 8;
    /// The server hit an unexpected internal failure (e.g. a caught panic).
    pub const INTERNAL: u8 = 9;
}

/// A structured error reply.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Stable small-integer code (see [`code`] and [`ReliabilityError::code`]).
    pub code: u8,
    /// Machine-readable kind slug (`"usage"`, `"overloaded"`, …).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// For `overloaded`: how long the client should wait before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Builds an error with no retry hint.
    pub fn new(code: u8, kind: &str, message: impl Into<String>) -> Self {
        WireError {
            code,
            kind: kind.to_string(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `usage` error (malformed request shape).
    pub fn usage(message: impl Into<String>) -> Self {
        WireError::new(code::USAGE, "usage", message)
    }

    /// A `protocol` error (framing/JSON violation).
    pub fn protocol(message: impl Into<String>) -> Self {
        WireError::new(code::PROTOCOL, "protocol", message)
    }

    /// Maps a [`ReliabilityError`] onto the shared taxonomy.
    pub fn reliability(e: &ReliabilityError) -> Self {
        WireError::new(e.code(), "reliability", e.to_string())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} {}] {}", self.code, self.kind, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

/// Which algorithm a compute request asks for. A deliberately small subset
/// of the CLI's strategy surface — the daemon's job is serving, not
/// experimentation.
#[derive(Clone, Debug, PartialEq)]
pub enum StrategySpec {
    /// Let the calculator pick (bottleneck planner, fallbacks).
    Auto,
    /// Exhaustive enumeration.
    Naive,
    /// Conditioning with flow-based pruning.
    Factoring,
    /// Monte-Carlo estimation.
    Mc {
        /// RNG seed.
        seed: u64,
        /// Sample allowance.
        samples: u64,
    },
}

impl StrategySpec {
    /// Stable name used as the result-cache key and in parked sessions.
    pub fn key(&self) -> String {
        match self {
            StrategySpec::Auto => "auto".into(),
            StrategySpec::Naive => "naive".into(),
            StrategySpec::Factoring => "factoring".into(),
            StrategySpec::Mc { seed, samples } => format!("mc:{seed}:{samples}"),
        }
    }

    /// Parses the parked-session / wire spelling produced by [`Self::key`].
    pub fn from_key(key: &str) -> Option<StrategySpec> {
        match key {
            "auto" => Some(StrategySpec::Auto),
            "naive" => Some(StrategySpec::Naive),
            "factoring" => Some(StrategySpec::Factoring),
            _ => {
                let rest = key.strip_prefix("mc:")?;
                let (seed, samples) = rest.split_once(':')?;
                Some(StrategySpec::Mc {
                    seed: seed.parse().ok()?,
                    samples: samples.parse().ok()?,
                })
            }
        }
    }
}

/// A compute (or inline-resume) request.
#[derive(Clone, Debug, PartialEq)]
pub struct ComputeRequest {
    /// The `.fnet` network + demand description.
    pub net: String,
    /// Requested strategy.
    pub strategy: StrategySpec,
    /// Client deadline for this request, in milliseconds. The server clamps
    /// it to its own maximum and applies a default when absent.
    pub timeout_ms: Option<u64>,
    /// Configuration (or sample) allowance for this request.
    pub max_configs: Option<u64>,
    /// Opt into hybrid exact/statistical plans: leaves whose exact cost
    /// exceeds their budget share may be sampled, and the answer (plus any
    /// cached statistical answer) is labelled rather than refused.
    pub hybrid: bool,
    /// Inline `flowrel-checkpoint v1` text to resume from.
    pub checkpoint: Option<String>,
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Heartbeat/keepalive; also legal mid-compute.
    Ping,
    /// Server statistics snapshot.
    Stats,
    /// Begin graceful shutdown (drain, park, exit).
    Shutdown,
    /// Run a reliability calculation.
    Compute(ComputeRequest),
    /// Resume a parked session by token.
    Resume {
        /// The token minted when the session was parked.
        token: String,
    },
}

/// Longest resume token the protocol accepts (tokens are hex-and-dash; the
/// bound keeps them safe to embed in file names).
pub const MAX_TOKEN_LEN: usize = 64;

/// Whether `token` is shaped like a token this server could have minted
/// (lowercase hex and dashes only — in particular no path separators, so it
/// is safe to use as a file-name component).
pub fn valid_token(token: &str) -> bool {
    !token.is_empty()
        && token.len() <= MAX_TOKEN_LEN
        && token
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase() || c == '-')
}

impl Request {
    /// Parses a request frame under the given per-field limits.
    pub fn from_json(v: &Json, limits: &ProtoLimits) -> Result<Request, WireError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::usage("missing or non-string 'op' field"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "resume" => {
                let token = v
                    .get("token")
                    .and_then(Json::as_str)
                    .ok_or_else(|| WireError::usage("resume: missing 'token'"))?;
                if !valid_token(token) {
                    return Err(WireError::usage("resume: malformed token"));
                }
                Ok(Request::Resume {
                    token: token.to_string(),
                })
            }
            "compute" => {
                let net = v
                    .get("net")
                    .and_then(Json::as_str)
                    .ok_or_else(|| WireError::usage("compute: missing 'net'"))?;
                if net.len() > limits.max_net {
                    return Err(WireError::usage(format!(
                        "compute: 'net' exceeds the {}-byte limit",
                        limits.max_net
                    )));
                }
                let strategy = match v.get("strategy") {
                    None => StrategySpec::Auto,
                    Some(Json::Str(s)) => match s.as_str() {
                        "auto" => StrategySpec::Auto,
                        "naive" => StrategySpec::Naive,
                        "factoring" => StrategySpec::Factoring,
                        "mc" => StrategySpec::Mc {
                            seed: opt_u64(v, "seed")?.unwrap_or(0),
                            samples: opt_u64(v, "samples")?.unwrap_or(1_000_000),
                        },
                        other => {
                            return Err(WireError::usage(format!(
                                "compute: unknown strategy '{other}'"
                            )))
                        }
                    },
                    Some(_) => return Err(WireError::usage("compute: non-string 'strategy'")),
                };
                let checkpoint = match v.get("checkpoint") {
                    None => None,
                    Some(Json::Str(s)) => {
                        if s.len() > limits.max_checkpoint {
                            return Err(WireError::usage(format!(
                                "compute: 'checkpoint' exceeds the {}-byte limit",
                                limits.max_checkpoint
                            )));
                        }
                        Some(s.clone())
                    }
                    Some(_) => return Err(WireError::usage("compute: non-string 'checkpoint'")),
                };
                let hybrid = match v.get("hybrid") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(WireError::usage("compute: non-boolean 'hybrid'")),
                };
                Ok(Request::Compute(ComputeRequest {
                    net: net.to_string(),
                    strategy,
                    timeout_ms: opt_u64(v, "timeout_ms")?,
                    max_configs: opt_u64(v, "max_configs")?,
                    hybrid,
                    checkpoint,
                }))
            }
            other => Err(WireError::usage(format!("unknown op '{other}'"))),
        }
    }

    /// Renders this request as a frame payload (used by the client library).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => obj([("op", Json::Str("ping".into()))]),
            Request::Stats => obj([("op", Json::Str("stats".into()))]),
            Request::Shutdown => obj([("op", Json::Str("shutdown".into()))]),
            Request::Resume { token } => obj([
                ("op", Json::Str("resume".into())),
                ("token", Json::Str(token.clone())),
            ]),
            Request::Compute(c) => {
                let mut pairs = vec![
                    ("op".to_string(), Json::Str("compute".into())),
                    ("net".to_string(), Json::Str(c.net.clone())),
                ];
                match &c.strategy {
                    StrategySpec::Auto => {}
                    StrategySpec::Naive => {
                        pairs.push(("strategy".into(), Json::Str("naive".into())))
                    }
                    StrategySpec::Factoring => {
                        pairs.push(("strategy".into(), Json::Str("factoring".into())))
                    }
                    StrategySpec::Mc { seed, samples } => {
                        pairs.push(("strategy".into(), Json::Str("mc".into())));
                        pairs.push(("seed".into(), Json::Num(*seed as f64)));
                        pairs.push(("samples".into(), Json::Num(*samples as f64)));
                    }
                }
                if let Some(ms) = c.timeout_ms {
                    pairs.push(("timeout_ms".into(), Json::Num(ms as f64)));
                }
                if let Some(n) = c.max_configs {
                    pairs.push(("max_configs".into(), Json::Num(n as f64)));
                }
                if c.hybrid {
                    pairs.push(("hybrid".into(), Json::Bool(true)));
                }
                if let Some(ck) = &c.checkpoint {
                    pairs.push(("checkpoint".into(), Json::Str(ck.clone())));
                }
                Json::Obj(pairs)
            }
        }
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError::usage(format!("'{key}' must be a non-negative integer"))),
    }
}

/// A server statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Currently open client sessions.
    pub active_sessions: u64,
    /// Requests currently inside the worker pool.
    pub active_requests: u64,
    /// Requests answered (complete, partial, or error) since start.
    pub served: u64,
    /// Requests shed by admission control since start.
    pub shed: u64,
    /// Protocol-level errors (malformed frames etc.) since start.
    pub protocol_errors: u64,
    /// Compute panics caught and converted to internal errors since start.
    pub panics: u64,
    /// Parked (resumable) sessions currently held.
    pub parked: u64,
    /// Instance-cache hits since start.
    pub cache_hits: u64,
    /// Instance-cache misses since start.
    pub cache_misses: u64,
    /// Result-cache hits (whole answers served from memory) since start.
    pub result_hits: u64,
    /// Result-cache hits keyed by the raw instance fingerprint.
    pub result_hits_raw: u64,
    /// Result-cache hits keyed by the post-reduction fingerprint — distinct
    /// raw instances unified by the structural reduction.
    pub result_hits_reduced: u64,
    /// Whether the server is draining.
    pub shutting_down: bool,
}

/// A parsed response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Reply to [`Request::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// A finished calculation.
    Complete {
        /// The reliability value.
        reliability: f64,
        /// Which algorithm produced it.
        algorithm: String,
        /// Whether it was served from the result cache.
        cached: bool,
        /// `true` for exact enumeration, `false` when any part of the
        /// answer was sampled (hybrid plan leaves, Monte-Carlo strategy).
        certified: bool,
    },
    /// A budget-interrupted calculation: certified bounds plus resume state.
    Partial {
        /// Certified (or, for `mc`/hybrid, statistical) lower bound.
        r_low: f64,
        /// Certified (or statistical) upper bound.
        r_high: f64,
        /// Fraction of the work done, in `[0, 1]`.
        explored: f64,
        /// Which algorithm was interrupted.
        algorithm: String,
        /// Resume token; the session is parked server-side under it.
        token: String,
        /// The full `flowrel-checkpoint v1` text (client-side resume path).
        checkpoint: String,
        /// Whether the bounds are certified (exact enumeration so far) or
        /// statistical (some part was sampled).
        certified: bool,
    },
    /// A structured failure.
    Error(WireError),
}

impl Response {
    /// Renders this response as a frame payload.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => obj([("ok", Json::Bool(true)), ("op", Json::Str("pong".into()))]),
            Response::ShuttingDown => obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutting-down".into())),
            ]),
            Response::Stats(s) => obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("stats".into())),
                ("active_sessions", Json::Num(s.active_sessions as f64)),
                ("active_requests", Json::Num(s.active_requests as f64)),
                ("served", Json::Num(s.served as f64)),
                ("shed", Json::Num(s.shed as f64)),
                ("protocol_errors", Json::Num(s.protocol_errors as f64)),
                ("panics", Json::Num(s.panics as f64)),
                ("parked", Json::Num(s.parked as f64)),
                ("cache_hits", Json::Num(s.cache_hits as f64)),
                ("cache_misses", Json::Num(s.cache_misses as f64)),
                ("result_hits", Json::Num(s.result_hits as f64)),
                ("result_hits_raw", Json::Num(s.result_hits_raw as f64)),
                (
                    "result_hits_reduced",
                    Json::Num(s.result_hits_reduced as f64),
                ),
                ("shutting_down", Json::Bool(s.shutting_down)),
            ]),
            Response::Complete {
                reliability,
                algorithm,
                cached,
                certified,
            } => obj([
                ("ok", Json::Bool(true)),
                ("status", Json::Str("complete".into())),
                ("reliability", Json::Num(*reliability)),
                ("algorithm", Json::Str(algorithm.clone())),
                ("cached", Json::Bool(*cached)),
                ("certified", Json::Bool(*certified)),
            ]),
            Response::Partial {
                r_low,
                r_high,
                explored,
                algorithm,
                token,
                checkpoint,
                certified,
            } => obj([
                ("ok", Json::Bool(true)),
                ("status", Json::Str("partial".into())),
                ("r_low", Json::Num(*r_low)),
                ("r_high", Json::Num(*r_high)),
                ("explored", Json::Num(*explored)),
                ("algorithm", Json::Str(algorithm.clone())),
                ("token", Json::Str(token.clone())),
                ("checkpoint", Json::Str(checkpoint.clone())),
                ("certified", Json::Bool(*certified)),
            ]),
            Response::Error(e) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(false)),
                    ("code".to_string(), Json::Num(e.code as f64)),
                    ("kind".to_string(), Json::Str(e.kind.clone())),
                    ("message".to_string(), Json::Str(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    pairs.push(("retry_after_ms".into(), Json::Num(ms as f64)));
                }
                Json::Obj(pairs)
            }
        }
    }

    /// Parses a response frame (used by the client library).
    pub fn from_json(v: &Json) -> Result<Response, WireError> {
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::protocol("reply has no boolean 'ok'"))?;
        if !ok {
            let code = v.get("code").and_then(Json::as_u64).unwrap_or(9) as u8;
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string();
            let message = v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(Response::Error(WireError {
                code,
                kind,
                message,
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
            }));
        }
        if let Some(op) = v.get("op").and_then(Json::as_str) {
            return match op {
                "pong" => Ok(Response::Pong),
                "shutting-down" => Ok(Response::ShuttingDown),
                "stats" => {
                    let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
                    Ok(Response::Stats(StatsSnapshot {
                        active_sessions: n("active_sessions"),
                        active_requests: n("active_requests"),
                        served: n("served"),
                        shed: n("shed"),
                        protocol_errors: n("protocol_errors"),
                        panics: n("panics"),
                        parked: n("parked"),
                        cache_hits: n("cache_hits"),
                        cache_misses: n("cache_misses"),
                        result_hits: n("result_hits"),
                        result_hits_raw: n("result_hits_raw"),
                        result_hits_reduced: n("result_hits_reduced"),
                        shutting_down: v
                            .get("shutting_down")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                    }))
                }
                other => Err(WireError::protocol(format!("unknown reply op '{other}'"))),
            };
        }
        match v.get("status").and_then(Json::as_str) {
            Some("complete") => Ok(Response::Complete {
                reliability: v
                    .get("reliability")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| WireError::protocol("complete reply lacks 'reliability'"))?,
                algorithm: v
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
                certified: v.get("certified").and_then(Json::as_bool).unwrap_or(true),
            }),
            Some("partial") => Ok(Response::Partial {
                r_low: v
                    .get("r_low")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| WireError::protocol("partial reply lacks 'r_low'"))?,
                r_high: v
                    .get("r_high")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| WireError::protocol("partial reply lacks 'r_high'"))?,
                explored: v.get("explored").and_then(Json::as_f64).unwrap_or(0.0),
                algorithm: v
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                token: v
                    .get("token")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                checkpoint: v
                    .get("checkpoint")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                certified: v.get("certified").and_then(Json::as_bool).unwrap_or(true),
            }),
            _ => Err(WireError::protocol("reply has neither 'op' nor 'status'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Resume {
                token: "0123abcd-9".into(),
            },
            Request::Compute(ComputeRequest {
                net: "directed\nnodes 2\nedge 0 1 1 0.1\ndemand 0 1 1\n".into(),
                strategy: StrategySpec::Mc {
                    seed: 7,
                    samples: 1000,
                },
                timeout_ms: Some(250),
                max_configs: None,
                hybrid: false,
                checkpoint: Some("flowrel-checkpoint v1\n…".into()),
            }),
            Request::Compute(ComputeRequest {
                net: "directed\nnodes 2\nedge 0 1 1 0.1\ndemand 0 1 1\n".into(),
                strategy: StrategySpec::Auto,
                timeout_ms: None,
                max_configs: Some(4096),
                hybrid: true,
                checkpoint: None,
            }),
        ];
        for r in reqs {
            let back = Request::from_json(&r.to_json(), &ProtoLimits::default()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Stats(StatsSnapshot {
                active_sessions: 3,
                served: 17,
                result_hits: 5,
                result_hits_raw: 3,
                result_hits_reduced: 2,
                shutting_down: true,
                ..Default::default()
            }),
            Response::Complete {
                reliability: 0.999125,
                algorithm: "auto:bottleneck".into(),
                cached: true,
                certified: true,
            },
            Response::Complete {
                reliability: 0.42,
                algorithm: "plan+mc".into(),
                cached: false,
                certified: false,
            },
            Response::Partial {
                r_low: 0.25,
                r_high: 0.875,
                explored: 0.5,
                algorithm: "naive".into(),
                token: "deadbeef-1".into(),
                checkpoint: "flowrel-checkpoint v1\nkind naive\n".into(),
                certified: true,
            },
            Response::Error(WireError {
                code: code::OVERLOADED,
                kind: "overloaded".into(),
                message: "queue full".into(),
                retry_after_ms: Some(500),
            }),
        ];
        for r in resps {
            let back = Response::from_json(&r.to_json()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn legacy_complete_reply_without_certified_parses_as_certified() {
        // Replies from a pre-hybrid server carry no 'certified' field; every
        // answer it produced was exact, so the default must be true.
        let legacy = obj([
            ("ok", Json::Bool(true)),
            ("status", Json::Str("complete".into())),
            ("reliability", Json::Num(0.5)),
            ("algorithm", Json::Str("naive".into())),
        ]);
        match Response::from_json(&legacy).unwrap() {
            Response::Complete { certified, .. } => assert!(certified),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        let limits = ProtoLimits::default();
        let cases = [
            obj([]),
            obj([("op", Json::Num(1.0))]),
            obj([("op", Json::Str("frobnicate".into()))]),
            obj([("op", Json::Str("compute".into()))]),
            obj([
                ("op", Json::Str("compute".into())),
                ("net", Json::Str("x".into())),
                ("timeout_ms", Json::Num(-5.0)),
            ]),
            obj([
                ("op", Json::Str("resume".into())),
                ("token", Json::Str("../../etc/passwd".into())),
            ]),
            obj([
                ("op", Json::Str("resume".into())),
                ("token", Json::Str("ABCDEF".into())),
            ]),
        ];
        for c in cases {
            let e = Request::from_json(&c, &limits).unwrap_err();
            assert_eq!(e.code, code::USAGE, "{c:?}");
        }
    }

    #[test]
    fn field_limits_trip() {
        let limits = ProtoLimits {
            max_net: 8,
            max_checkpoint: 8,
        };
        let big_net = obj([
            ("op", Json::Str("compute".into())),
            ("net", Json::Str("directed\nnodes 2\n".into())),
        ]);
        assert!(Request::from_json(&big_net, &limits)
            .unwrap_err()
            .message
            .contains("byte limit"));
    }

    #[test]
    fn token_validation() {
        assert!(valid_token("0f3a-12"));
        assert!(!valid_token(""));
        assert!(!valid_token("ABC"));
        assert!(!valid_token("a/b"));
        assert!(!valid_token(&"a".repeat(100)));
    }
}
