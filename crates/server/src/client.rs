//! Client library for the flowrel wire protocol.
//!
//! Shared by `flowrelctl`, the lifecycle test, and the fault-injection
//! harness (which uses the raw escape hatches — [`Client::send_raw`],
//! [`Client::shutdown_write`] — to misbehave on purpose).

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use crate::conn::{BindAddr, Conn};
use crate::frame::{encode, FrameError, FrameReader};
use crate::json::JsonLimits;
use crate::proto::{ComputeRequest, Request, Response, StrategySpec, WireError};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's reply could not be framed/decoded.
    Frame(FrameError),
    /// The reply decoded but violated the protocol.
    Wire(WireError),
    /// No complete reply arrived within the read deadline.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for a reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a flowrel server.
pub struct Client {
    conn: Conn,
    reader: FrameReader,
    max_frame: usize,
    read_deadline: Duration,
}

impl Client {
    /// Dials `addr` with default limits and a 10-minute reply deadline
    /// (server-side deadlines are the real clock; this one only bounds a
    /// hung transport).
    pub fn connect(addr: &BindAddr) -> Result<Client, ClientError> {
        Self::connect_with(addr, 64 << 20, Duration::from_secs(600))
    }

    /// Dials `addr` with an explicit frame cap and reply deadline.
    pub fn connect_with(
        addr: &BindAddr,
        max_frame: usize,
        read_deadline: Duration,
    ) -> Result<Client, ClientError> {
        let conn = Conn::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Client {
            conn,
            reader: FrameReader::new(max_frame, JsonLimits::default()),
            max_frame,
            read_deadline,
        })
    }

    /// Sends one request and waits for its reply.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let bytes = encode(&req.to_json(), self.max_frame).map_err(ClientError::Frame)?;
        self.conn.write_all(&bytes)?;
        self.conn.flush()?;
        self.recv()
    }

    /// Waits for the next reply frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let deadline = Instant::now() + self.read_deadline;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.reader.try_frame() {
                Ok(Some(v)) => {
                    return Response::from_json(&v).map_err(ClientError::Wire);
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            match self.conn.read(&mut buf) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.reader.push(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Heartbeat round-trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Wire(WireError::protocol(format!(
                "expected pong, got {other:?}"
            )))),
        }
    }

    /// Submits a compute request.
    pub fn compute(&mut self, req: ComputeRequest) -> Result<Response, ClientError> {
        self.request(&Request::Compute(req))
    }

    /// Convenience: compute with just a net and a strategy.
    pub fn compute_net(
        &mut self,
        net: &str,
        strategy: StrategySpec,
    ) -> Result<Response, ClientError> {
        self.compute(ComputeRequest {
            net: net.to_string(),
            strategy,
            timeout_ms: None,
            max_configs: None,
            hybrid: false,
            checkpoint: None,
        })
    }

    /// Resumes a parked session by token.
    pub fn resume(&mut self, token: &str) -> Result<Response, ClientError> {
        self.request(&Request::Resume {
            token: token.to_string(),
        })
    }

    /// Asks for statistics.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Stats)
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Shutdown)
    }

    // ---- misbehavior escape hatches (fault-injection harness) ----

    /// Writes raw bytes, bypassing the codec entirely.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.conn.write_all(bytes)?;
        self.conn.flush()?;
        Ok(())
    }

    /// Sends a request without waiting for the reply.
    pub fn send_only(&mut self, req: &Request) -> Result<(), ClientError> {
        let bytes = encode(&req.to_json(), self.max_frame).map_err(ClientError::Frame)?;
        self.conn.write_all(&bytes)?;
        self.conn.flush()?;
        Ok(())
    }

    /// Slams the connection shut (both directions), mid-whatever.
    pub fn slam(&mut self) {
        let _ = self.conn.shutdown(std::net::Shutdown::Both);
    }
}
