//! Property suite for the wire codec: whatever bytes arrive — valid,
//! truncated, bit-flipped, oversized, or pure noise — the frame/JSON layer
//! must either decode or return a structured error. It must never panic,
//! never hang, and never mis-frame the stream after a recoverable error.
//!
//! The vendored proptest shim has no recursive/regex strategies, so
//! arbitrary JSON trees and requests are built deterministically from drawn
//! byte scripts (`json_from_script`, `request_from_script`).

use proptest::prelude::*;

use flowrel_server::frame::{encode, FrameError, FrameReader, HEADER_LEN};
use flowrel_server::json::{obj, Json, JsonLimits};
use flowrel_server::proto::{ComputeRequest, ProtoLimits, Request, Response, StrategySpec};

fn reader() -> FrameReader {
    FrameReader::new(1 << 20, JsonLimits::default())
}

/// Byte-script interpreter producing an arbitrary JSON value of bounded
/// depth and size. Consumes from the front of `script`; deterministic.
fn json_from_script(script: &mut &[u8], depth: usize) -> Json {
    let op = take(script);
    match op % if depth == 0 { 5 } else { 7 } {
        0 => Json::Null,
        1 => Json::Bool(take(script).is_multiple_of(2)),
        2 => {
            // finite numbers only: the renderer maps non-finite to null
            let raw = i64::from(take(script)) * 257 - 31000;
            Json::Num(raw as f64 / 7.0)
        }
        3 => Json::Num(f64::from(take(script))),
        4 => Json::Str(string_from_script(script)),
        5 => {
            let n = usize::from(take(script)) % 5;
            Json::Arr(
                (0..n)
                    .map(|_| json_from_script(script, depth - 1))
                    .collect(),
            )
        }
        _ => {
            let n = usize::from(take(script)) % 5;
            let mut seen = std::collections::HashSet::new();
            Json::Obj(
                (0..n)
                    .filter_map(|i| {
                        let key = format!("k{}-{}", i, take(script) % 16);
                        seen.insert(key.clone())
                            .then(|| (key, json_from_script(script, depth - 1)))
                    })
                    .collect(),
            )
        }
    }
}

fn take(script: &mut &[u8]) -> u8 {
    let (&b, rest) = script.split_first().unwrap_or((&0, &[]));
    *script = rest;
    b
}

/// Printable ASCII (plus escapes-in-waiting like quotes and backslashes).
fn string_from_script(script: &mut &[u8]) -> String {
    let n = usize::from(take(script)) % 20;
    (0..n)
        .map(|_| char::from(0x20 + take(script) % 0x5f))
        .collect()
}

/// Byte-script interpreter for *valid* requests.
fn request_from_script(script: &mut &[u8]) -> Request {
    match take(script) % 5 {
        0 => Request::Ping,
        1 => Request::Stats,
        2 => Request::Shutdown,
        3 => {
            let n = 1 + usize::from(take(script)) % 20;
            let token: String = (0..n)
                .map(|i| {
                    let c = take(script);
                    if i > 0 && i.is_multiple_of(7) {
                        '-'
                    } else {
                        char::from_digit(u32::from(c % 16), 16).unwrap_or('0')
                    }
                })
                .collect();
            Request::Resume { token }
        }
        _ => {
            let strategy = match take(script) % 4 {
                0 => StrategySpec::Auto,
                1 => StrategySpec::Naive,
                2 => StrategySpec::Factoring,
                _ => StrategySpec::Mc {
                    seed: u64::from(take(script)) << 8 | u64::from(take(script)),
                    samples: 1 + u64::from(take(script)),
                },
            };
            let mut text = string_from_script(script);
            if take(script).is_multiple_of(2) {
                text.push('\n');
                text.push_str(&string_from_script(script));
            }
            Request::Compute(ComputeRequest {
                net: text,
                strategy,
                timeout_ms: (take(script).is_multiple_of(2))
                    .then(|| u64::from(take(script)) * 1000),
                max_configs: (take(script).is_multiple_of(2)).then(|| u64::from(take(script)) + 1),
                hybrid: take(script).is_multiple_of(2),
                checkpoint: (take(script).is_multiple_of(3)).then(|| string_from_script(script)),
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → trickled decode reproduces the value exactly.
    #[test]
    fn frame_roundtrip(script in prop::collection::vec(any::<u8>(), 0..200), chunk in 1usize..7) {
        let v = json_from_script(&mut script.as_slice(), 3);
        let bytes = encode(&v, 1 << 20).unwrap();
        let mut r = reader();
        let mut out = None;
        for c in bytes.chunks(chunk) {
            r.push(c);
            if let Some(got) = r.try_frame().unwrap() {
                prop_assert!(out.is_none(), "one frame in, one frame out");
                out = Some(got);
            }
        }
        prop_assert_eq!(out, Some(v));
        prop_assert!(!r.has_partial());
    }

    /// Every strict prefix of a frame is just "not yet" — never an error,
    /// never a spurious frame.
    #[test]
    fn truncation_never_panics(script in prop::collection::vec(any::<u8>(), 0..200), cut in 0.0f64..1.0) {
        let v = json_from_script(&mut script.as_slice(), 3);
        let bytes = encode(&v, 1 << 20).unwrap();
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        let mut r = reader();
        r.push(&bytes[..keep.min(bytes.len() - 1)]);
        prop_assert_eq!(r.try_frame().unwrap(), None);
    }

    /// A bit flip anywhere yields a decoded value, a structured error, or
    /// "need more bytes" — never a panic or a hang. When the flip lands in
    /// the payload (not the length header), the stream stays frame-aligned
    /// and the next frame still decodes.
    #[test]
    fn bit_flips_never_panic(
        script in prop::collection::vec(any::<u8>(), 0..200),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let v = json_from_script(&mut script.as_slice(), 3);
        let mut bytes = encode(&v, 1 << 20).unwrap();
        let i = byte_idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let flipped_header = i < HEADER_LEN;
        let ping = obj([("op", Json::Str("ping".into()))]);
        bytes.extend(encode(&ping, 1 << 20).unwrap());
        let mut r = reader();
        r.push(&bytes);
        match r.try_frame() {
            Ok(_) => {}
            Err(e) => {
                if !flipped_header {
                    prop_assert!(e.recoverable(), "payload flip must not poison the stream: {e}");
                }
            }
        }
        if !flipped_header {
            prop_assert_eq!(r.try_frame().unwrap(), Some(ping));
        }
    }

    /// Arbitrary byte soup: the reader may reject or wait, never panic or
    /// loop — each `try_frame` call either consumes bytes or stops.
    #[test]
    fn byte_soup_never_panics(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = FrameReader::new(4096, JsonLimits::default());
        r.push(&noise);
        for _ in 0..64 {
            match r.try_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) if e.recoverable() => {}
                Err(_) => break,
            }
        }
    }

    /// Length headers beyond the cap are rejected as fatal, regardless of
    /// what follows.
    #[test]
    fn oversized_lengths_are_fatal(
        len in 4097u32..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut r = FrameReader::new(4096, JsonLimits::default());
        r.push(&len.to_be_bytes());
        r.push(&tail);
        let e = r.try_frame().unwrap_err();
        prop_assert!(matches!(e, FrameError::TooLarge { .. }));
        prop_assert!(!e.recoverable());
    }

    /// Valid requests survive the full request → JSON → frame → JSON →
    /// request pipeline unchanged.
    #[test]
    fn request_roundtrip(script in prop::collection::vec(any::<u8>(), 0..200)) {
        let req = request_from_script(&mut script.as_slice());
        let bytes = encode(&req.to_json(), 1 << 20).unwrap();
        let mut r = reader();
        r.push(&bytes);
        let v = r.try_frame().unwrap().expect("complete frame");
        let back = Request::from_json(&v, &ProtoLimits::default()).expect("valid request");
        prop_assert_eq!(back, req);
    }

    /// Arbitrary JSON fed to the request/response parsers: accept or
    /// structured error, never panic.
    #[test]
    fn parsers_never_panic(script in prop::collection::vec(any::<u8>(), 0..200)) {
        let v = json_from_script(&mut script.as_slice(), 3);
        let _ = Request::from_json(&v, &ProtoLimits::default());
        let _ = Response::from_json(&v);
    }
}
