//! Fault-injection harness: misbehaving clients against a live server.
//!
//! Every scenario asserts the same three invariants from the issue: the
//! server never panics (`stats.panics == 0`), never leaks a session or a
//! worker slot, and keeps serving correct answers to well-behaved clients
//! after each abuse.

use std::time::{Duration, Instant};

use flowrel_core::{fnet, FlowDemand, ReliabilityCalculator, Strategy};
use flowrel_server::proto::code;
use flowrel_server::server::{start, ServerConfig, ServerHandle};
use flowrel_server::{Client, ComputeRequest, Response, StrategySpec};
use workloads::grid;

/// A grid instance as `.fnet` text plus its exact naive reliability.
fn instance(w: usize, h: usize, seed: u64) -> (String, f64) {
    let inst = grid(w, h, seed);
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let text = fnet::serialize(&inst.net, Some(demand));
    let reference = ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&inst.net, demand)
        .unwrap()
        .reliability;
    (text, reference)
}

fn naive_compute(net: String) -> ComputeRequest {
    ComputeRequest {
        net,
        strategy: StrategySpec::Naive,
        timeout_ms: Some(120_000),
        max_configs: None,
        hybrid: false,
        checkpoint: None,
    }
}

fn server() -> ServerHandle {
    start(ServerConfig::default()).unwrap()
}

/// The server must still answer a fresh, well-behaved client exactly.
fn assert_still_serving(handle: &ServerHandle) {
    let (net, reference) = instance(3, 3, 5);
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.compute(naive_compute(net)).unwrap() {
        Response::Complete { reliability, .. } => assert_eq!(reliability, reference),
        other => panic!("expected Complete, got {other:?}"),
    }
    assert_eq!(handle.stats().panics, 0, "a fault leaked into a panic");
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(20), "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn garbage_payload_is_rejected_and_the_connection_survives() {
    let handle = server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // A well-formed length header framing bytes that are not JSON.
    let junk = b"\x89PNG not json at all";
    let mut frame = (junk.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(junk);
    client.send_raw(&frame).unwrap();
    match client.recv().unwrap() {
        Response::Error(e) => assert_eq!(e.code, code::PROTOCOL, "{e}"),
        other => panic!("expected a structured error, got {other:?}"),
    }

    // The stream is still frame-aligned: the same connection keeps working.
    client.ping().unwrap();
    let (net, reference) = instance(3, 3, 5);
    match client.compute(naive_compute(net)).unwrap() {
        Response::Complete { reliability, .. } => assert_eq!(reliability, reference),
        other => panic!("expected Complete, got {other:?}"),
    }
    assert!(handle.stats().protocol_errors >= 1);
    assert_still_serving(&handle);
    handle.begin_shutdown();
    handle.join();
}

#[test]
fn oversized_length_header_is_fatal_for_that_connection_only() {
    let handle = server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // A length header far beyond the frame cap: the server must reply with
    // a structured error and hang up — it must NOT try to buffer 4 GiB.
    client.send_raw(&u32::MAX.to_be_bytes()).unwrap();
    match client.recv().unwrap() {
        Response::Error(e) => assert_eq!(e.code, code::PROTOCOL, "{e}"),
        other => panic!("expected a structured error, got {other:?}"),
    }
    // The stream is unrecoverable; the server closes it.
    assert!(client.ping().is_err(), "connection should be closed");

    // Other clients are unaffected.
    assert_still_serving(&handle);
    handle.begin_shutdown();
    handle.join();
}

#[test]
fn client_disconnect_mid_compute_cancels_the_sweep() {
    let handle = start(ServerConfig {
        max_concurrent: 1,
        ..ServerConfig::default()
    })
    .unwrap();

    // Fire a long sweep (24 edges, ~17M configs), then vanish without
    // reading the reply. (No reference needed: the answer is discarded.)
    let big = grid(4, 4, 5);
    let big_net = fnet::serialize(
        &big.net,
        Some(FlowDemand::new(big.source, big.sink, big.demand)),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .send_only(&flowrel_server::Request::Compute(naive_compute(big_net)))
        .unwrap();
    wait_for("big request admitted", || {
        handle.stats().active_requests == 1
    });
    client.slam();

    // The probe notices the dead socket, trips the cancel token, and the
    // worker slot drains — the single-slot pool is usable again.
    wait_for("slot reclaimed after disconnect", || {
        handle.stats().active_requests == 0
    });
    wait_for("session reaped after disconnect", || {
        handle.stats().active_sessions == 0
    });
    assert_still_serving(&handle);
    handle.begin_shutdown();
    handle.join();
}

#[test]
fn deadline_storm_parks_distinct_tokens_that_all_resume_exactly() {
    let handle = server();
    let (net, reference) = instance(3, 3, 7);

    // Six concurrent clients, all asking for the same instance with a
    // 32-configuration budget: every one must get its own token.
    let mut threads = Vec::new();
    for _ in 0..6 {
        let addr = handle.addr().clone();
        let net = net.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.compute(ComputeRequest {
                max_configs: Some(32),
                ..naive_compute(net)
            })
            .unwrap()
        }));
    }
    let mut tokens = Vec::new();
    for t in threads {
        match t.join().unwrap() {
            Response::Partial {
                r_low,
                r_high,
                token,
                ..
            } => {
                assert!(r_low <= reference && reference <= r_high);
                tokens.push(token);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    }
    let distinct: std::collections::HashSet<_> = tokens.iter().cloned().collect();
    assert_eq!(distinct.len(), tokens.len(), "token collision: {tokens:?}");
    assert_eq!(handle.stats().parked, 6);

    // Every token resumes to the same bit-identical exact answer.
    for token in &tokens {
        let mut c = Client::connect(handle.addr()).unwrap();
        match c.resume(token).unwrap() {
            Response::Complete { reliability, .. } => {
                assert_eq!(reliability.to_bits(), reference.to_bits());
            }
            other => panic!("expected Complete from resume, got {other:?}"),
        }
    }
    assert_eq!(handle.stats().parked, 0);
    assert_still_serving(&handle);
    handle.begin_shutdown();
    handle.join();
}

#[test]
fn concurrent_resume_race_has_exactly_one_winner() {
    let handle = server();
    let (net, reference) = instance(3, 3, 9);

    let mut client = Client::connect(handle.addr()).unwrap();
    let token = match client
        .compute(ComputeRequest {
            max_configs: Some(32),
            ..naive_compute(net)
        })
        .unwrap()
    {
        Response::Partial { token, .. } => token,
        other => panic!("expected Partial, got {other:?}"),
    };

    // Two clients race to resume the same token.
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let addr = handle.addr().clone();
            let token = token.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.resume(&token).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Response> = racers.into_iter().map(|t| t.join().unwrap()).collect();

    let winners = outcomes
        .iter()
        .filter(|r| match r {
            Response::Complete { reliability, .. } => {
                assert_eq!(reliability.to_bits(), reference.to_bits());
                true
            }
            _ => false,
        })
        .count();
    let losers = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Error(e) if e.code == code::UNKNOWN_TOKEN))
        .count();
    assert_eq!(
        (winners, losers),
        (1, 1),
        "claim must be exclusive: {outcomes:?}"
    );
    assert_still_serving(&handle);
    handle.begin_shutdown();
    handle.join();
}
