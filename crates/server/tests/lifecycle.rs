//! Full-lifecycle test for the daemon: concurrent mixed-deadline traffic,
//! SIGTERM-style drain with in-flight work, crash-safe restart from the
//! state directory, and bit-identical resume of every parked session.
//!
//! The drain path is exercised exactly as the signal handler drives it
//! (`ServerHandle::begin_shutdown` is what the SIGTERM bridge trips), so the
//! test covers the same state machine without needing to fork a process.

use std::path::PathBuf;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use flowrel_core::{fnet, FlowDemand, ReliabilityCalculator, Strategy};
use flowrel_server::server::{start, ServerConfig};
use flowrel_server::{Client, ComputeRequest, Response, StrategySpec};
use workloads::grid;

/// A grid instance as `.fnet` text plus its exact naive reliability.
fn instance(w: usize, h: usize, seed: u64) -> (String, f64) {
    let inst = grid(w, h, seed);
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let text = fnet::serialize(&inst.net, Some(demand));
    let reference = ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&inst.net, demand)
        .unwrap()
        .reliability;
    (text, reference)
}

fn naive_compute(net: String) -> ComputeRequest {
    ComputeRequest {
        net,
        strategy: StrategySpec::Naive,
        timeout_ms: Some(120_000),
        max_configs: None,
        hybrid: false,
        checkpoint: None,
    }
}

fn temp_state_dir() -> PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    std::env::temp_dir().join(format!("flowrel-lifecycle-{}-{nanos}", std::process::id()))
}

fn config(state_dir: PathBuf) -> ServerConfig {
    ServerConfig {
        state_dir: Some(state_dir),
        max_concurrent: 3,
        ..ServerConfig::default()
    }
}

/// Two byte-distinct instances whose only difference — slack capacity on the
/// first hop — the structural reduction's capacity clamp erases: the second
/// ask must be served from the result cache under the post-reduction
/// fingerprint, and the stats must attribute the hit to the reduced key.
#[test]
fn reduction_unifies_structurally_equivalent_instances_in_the_cache() {
    let server = start(ServerConfig::default()).unwrap();
    let addr = server.addr().clone();
    let net_a = "directed\nnodes 3\nedge 0 1 5 0.9\nedge 1 2 1 0.8\ndemand 0 2 1\n";
    let net_b = "directed\nnodes 3\nedge 0 1 9 0.9\nedge 1 2 1 0.8\ndemand 0 2 1\n";
    let mut client = Client::connect(&addr).unwrap();
    let mut ask = |net: &str| match client.compute(naive_compute(net.to_string())).unwrap() {
        Response::Complete {
            reliability,
            cached,
            ..
        } => (reliability, cached),
        other => panic!("expected Complete, got {other:?}"),
    };
    let (r_a, cached_a) = ask(net_a);
    assert!(!cached_a, "first ask cannot be a cache hit");
    let (r_b, cached_b) = ask(net_b);
    assert!(
        cached_b,
        "net_b clamps to net_a's reduced shape and must hit the result cache"
    );
    assert_eq!(r_a.to_bits(), r_b.to_bits());
    let (_, cached_raw) = ask(net_a);
    assert!(cached_raw, "identical retransmit hits under the raw key");
    let stats = server.stats();
    assert_eq!(
        (
            stats.result_hits,
            stats.result_hits_raw,
            stats.result_hits_reduced
        ),
        (2, 1, 1),
        "one raw hit, one reduced hit"
    );
    server.begin_shutdown();
    server.join();
}

/// Multi-state instances travel the wire as `spectrum` lines; the instance
/// fingerprint is stamped over the full state space, so two instances that
/// differ only in a state probability never share a cache entry, while an
/// identical retransmit still hits.
#[test]
fn multistate_instances_travel_the_wire_and_fingerprint_distinctly() {
    let server = start(ServerConfig::default()).unwrap();
    let addr = server.addr().clone();
    let net_a = "directed\nnodes 3\nspectrum 0 1 0:0.2 1:0.3 2:0.5\nedge 1 2 2 0.1\ndemand 0 2 2\n";
    let net_b = "directed\nnodes 3\nspectrum 0 1 0:0.3 1:0.2 2:0.5\nedge 1 2 2 0.1\ndemand 0 2 2\n";
    let reference = |text: &str| {
        let f = fnet::parse(text).unwrap();
        ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&f.net, f.demand.unwrap())
            .unwrap()
            .reliability
    };
    let ref_a = reference(net_a);
    let ref_b = reference(net_b);
    // demand 2 needs the spectrum link's top state and the binary link up
    assert!((ref_a - 0.45).abs() < 1e-12);
    assert!((ref_b - 0.45).abs() < 1e-12);
    let mut client = Client::connect(&addr).unwrap();
    let mut ask = |net: &str| match client.compute(naive_compute(net.to_string())).unwrap() {
        Response::Complete {
            reliability,
            cached,
            ..
        } => (reliability, cached),
        other => panic!("expected Complete, got {other:?}"),
    };
    let (r_a, cached_a) = ask(net_a);
    assert_eq!(r_a, ref_a, "wire answer must equal the local exact answer");
    assert!(!cached_a);
    let (r_b, cached_b) = ask(net_b);
    assert_eq!(r_b, ref_b);
    assert!(
        !cached_b,
        "a different state probability must change the fingerprint"
    );
    let (_, cached_again) = ask(net_a);
    assert!(cached_again, "identical retransmit hits the result cache");
    server.begin_shutdown();
    server.join();
}

#[test]
fn drain_restart_resume_is_bit_identical() {
    let state_dir = temp_state_dir();
    let server = start(config(state_dir.clone())).unwrap();
    let addr = server.addr().clone();

    // Small instances: 12 edges, 4096 configs — exact answers in
    // milliseconds. The big instance: 24 edges, ~17M configs — a sweep of
    // hundreds of milliseconds, still running when the drain begins.
    let (small_net, small_ref) = instance(3, 3, 5);
    let (park_a_net, park_a_ref) = instance(3, 3, 1);
    let (park_b_net, park_b_ref) = instance(3, 3, 2);
    let (big_net, big_ref) = instance(4, 4, 5);

    // Phase 1: mixed-deadline traffic against the live server.
    // An unbudgeted request completes with the exact answer...
    let mut client = Client::connect(&addr).unwrap();
    match client.compute(naive_compute(small_net.clone())).unwrap() {
        Response::Complete {
            reliability,
            cached,
            ..
        } => {
            assert_eq!(reliability, small_ref, "server answer must be exact");
            assert!(!cached, "first ask cannot be a cache hit");
        }
        other => panic!("expected Complete, got {other:?}"),
    }

    // ...while config-budgeted requests on two distinct instances come back
    // partial, each with certified bounds and its own resume token.
    let park = |net: &str, reference: f64| -> String {
        let mut c = Client::connect(&addr).unwrap();
        let resp = c
            .compute(ComputeRequest {
                max_configs: Some(64),
                ..naive_compute(net.to_string())
            })
            .unwrap();
        match resp {
            Response::Partial {
                r_low,
                r_high,
                explored,
                token,
                ..
            } => {
                assert!(
                    r_low <= reference && reference <= r_high,
                    "bounds [{r_low}, {r_high}] must bracket {reference}"
                );
                assert!(explored < 1.0);
                token
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    };
    let token_a = park(&park_a_net, park_a_ref);
    let token_b = park(&park_b_net, park_b_ref);
    assert_ne!(token_a, token_b, "every parked session gets its own token");

    // Phase 2: drain with a long request in flight. The client thread holds
    // the connection; the main thread waits for admission, then trips the
    // same token the SIGTERM handler would.
    let big_clone = big_net.clone();
    let big_addr = addr.clone();
    let big_thread = std::thread::spawn(move || {
        let mut c = Client::connect(&big_addr).unwrap();
        c.compute(naive_compute(big_clone)).unwrap()
    });
    let admitted = Instant::now();
    while server.stats().active_requests == 0 {
        assert!(
            admitted.elapsed() < Duration::from_secs(10),
            "big request never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(30));
    server.begin_shutdown();

    // The in-flight request is interrupted, parked, and answered — the
    // client is not just hung up on.
    let token_big = match big_thread.join().unwrap() {
        Response::Partial {
            r_low,
            r_high,
            token,
            ..
        } => {
            assert!(
                r_low <= big_ref && big_ref <= r_high,
                "drain bounds [{r_low}, {r_high}] must bracket {big_ref}"
            );
            Some(token)
        }
        // On a very fast machine the sweep may have finished first.
        Response::Complete { reliability, .. } => {
            assert_eq!(reliability, big_ref);
            None
        }
        other => panic!("expected Partial or Complete at drain, got {other:?}"),
    };
    eprintln!("drain outcome: token_big = {token_big:?}");
    assert_eq!(server.stats().panics, 0);
    server.join();

    // Phase 3: restart against the same state directory — a new process
    // image, same disk. Every parked session must have survived.
    let server = start(config(state_dir.clone())).unwrap();
    let addr = server.addr().clone();
    let expected_parked = 2 + u64::from(token_big.is_some());
    assert_eq!(server.stats().parked, expected_parked);

    // Phase 4: resume each token; the completed answers must be exactly the
    // serial reference values — bit-identical, not merely close.
    let resume_exact = |token: &str, reference: f64| {
        let mut c = Client::connect(&addr).unwrap();
        match c.resume(token).unwrap() {
            Response::Complete { reliability, .. } => {
                assert_eq!(
                    reliability.to_bits(),
                    reference.to_bits(),
                    "resume must be bit-identical: {reliability} vs {reference}"
                );
            }
            other => panic!("expected Complete from resume, got {other:?}"),
        }
    };
    resume_exact(&token_a, park_a_ref);
    resume_exact(&token_b, park_b_ref);
    if let Some(token) = &token_big {
        resume_exact(token, big_ref);
    }
    assert_eq!(server.stats().parked, 0, "resumed sessions leave the lot");

    // A second identical ask is served from the result cache.
    let mut client = Client::connect(&addr).unwrap();
    for expect_cached in [false, true] {
        match client.compute(naive_compute(small_net.clone())).unwrap() {
            Response::Complete {
                reliability,
                cached,
                ..
            } => {
                assert_eq!(reliability, small_ref);
                assert_eq!(cached, expect_cached);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    // Phase 5: shutdown over the wire; join must return.
    assert!(matches!(
        client.shutdown_server().unwrap(),
        Response::ShuttingDown
    ));
    assert_eq!(server.stats().panics, 0);
    server.join();
    let _ = std::fs::remove_dir_all(&state_dir);
}
