//! A ready-to-analyse streaming scenario.

use netgraph::{Network, NodeId};

/// An overlay lowered to a flow network, with the roles needed to pose the
/// reliability question "can subscriber `t` still receive the full stream?".
#[derive(Clone, Debug)]
pub struct StreamingScenario {
    /// The overlay as a capacitated, failure-prone flow network.
    pub net: Network,
    /// The media server (flow source).
    pub server: NodeId,
    /// Node id of each peer, in peer order (the server is not a peer).
    pub peers: Vec<NodeId>,
    /// Stream bit-rate in unit sub-streams.
    pub stream_rate: u64,
}

impl StreamingScenario {
    /// The flow demand for delivering the full stream to `subscriber`.
    pub fn demand_for(&self, subscriber: NodeId) -> flow_demand::FlowDemandLike {
        flow_demand::FlowDemandLike {
            source: self.server,
            sink: subscriber,
            demand: self.stream_rate,
        }
    }
}

/// A tiny mirror of `flowrel_core::FlowDemand` so this crate does not depend
/// on the core crate (the dependency points the other way in examples).
pub mod flow_demand {
    use netgraph::NodeId;

    /// Source / sink / rate triple, convertible by callers into their demand
    /// type of choice.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct FlowDemandLike {
        /// Flow source (the media server).
        pub source: NodeId,
        /// Flow sink (the subscriber).
        pub sink: NodeId,
        /// Demanded bit-rate.
        pub demand: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn demand_roles() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let p = b.add_node();
        b.add_edge(s, p, 2, 0.1).unwrap();
        let sc = StreamingScenario {
            net: b.build(),
            server: s,
            peers: vec![p],
            stream_rate: 2,
        };
        let d = sc.demand_for(p);
        assert_eq!(d.source, s);
        assert_eq!(d.sink, p);
        assert_eq!(d.demand, 2);
    }
}
