//! # flowrel-overlay — P2P streaming overlay construction
//!
//! The paper's motivating domain (Sections I–II): video streaming overlays
//! whose delivery paths fail as peers churn. This crate builds the three
//! classic overlay shapes as [`netgraph::Network`]s ready for reliability
//! analysis:
//!
//! * [`tree::single_tree`] — a push tree rooted at the media server
//!   (SCRIBE / ESM style): simple, but every interior link is a bottleneck;
//! * [`multitree::multi_tree`] — the stream split into `d` unit sub-streams,
//!   each pushed down its own tree with rotated interior sets
//!   (SplitStream / CoopNet style): each peer is interior in one tree and a
//!   leaf in the others, so no single peer failure removes more than one
//!   sub-stream;
//! * [`mesh::random_mesh`] — a pull mesh (CoolStreaming / PRIME style): each
//!   peer links to a few random uploaders;
//! * [`hybrid::hybrid_tree_mesh`] — a treebone of stable peers plus auxiliary
//!   mesh links (mTreebone style, the paper’s reference \[16\]).
//!
//! Link failure probabilities come from a peer [`churn::ChurnModel`]: session
//! lengths are exponential, so the probability a connection from peer `u`
//! survives a streaming window `w` is `exp(−w / mean_session(u))`. The
//! paper's model requires *independent* link failures, so the churn model is
//! applied per connection (connection-level loss), not per peer — a
//! substitution documented in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod hybrid;
pub mod mesh;
pub mod multitree;
pub mod scenario;
pub mod tree;

pub use churn::{ChurnModel, Peer};
pub use hybrid::hybrid_tree_mesh;
pub use mesh::random_mesh;
pub use multitree::multi_tree;
pub use scenario::StreamingScenario;
pub use tree::single_tree;
