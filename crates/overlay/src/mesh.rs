//! Random pull-mesh overlay (CoolStreaming / PRIME style).

use netgraph::{GraphKind, NetworkBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::churn::{ChurnModel, Peer};
use crate::scenario::StreamingScenario;

/// Builds a random mesh: each peer pulls from `neighbors` distinct uploaders
/// chosen uniformly among the server and the *earlier* peers (so the overlay
/// is acyclic and every peer is reachable, as in a join-order bootstrap).
/// Link capacity is the uploader's per-connection share
/// (`upload_capacity.min(stream_rate)` for peers, the full rate for the
/// server); failure probability comes from the uploader's churn.
///
/// Deterministic per `seed`.
pub fn random_mesh(
    peers: &[Peer],
    neighbors: usize,
    stream_rate: u64,
    churn: &ChurnModel,
    seed: u64,
) -> StreamingScenario {
    assert!(neighbors >= 1, "each peer needs at least one uploader");
    assert!(!peers.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let server = b.add_node();
    // the server never churns, but its connections still suffer the model's
    // residual transport loss (same convention as the tree builders)
    let server_peer = Peer::new(u64::MAX, 1e18);
    let nodes: Vec<_> = (0..peers.len()).map(|_| b.add_node()).collect();
    for (i, &me) in nodes.iter().enumerate() {
        // candidate uploaders: the server plus peers that joined earlier
        let mut candidates: Vec<usize> = (0..=i).collect(); // 0 = server, j>0 = peer j-1
        candidates.shuffle(&mut rng);
        for &c in candidates.iter().take(neighbors.min(candidates.len())) {
            if c == 0 {
                let p = churn.link_failure_prob(&server_peer);
                b.add_edge(server, me, stream_rate, p).expect("valid edge");
            } else {
                let uploader = c - 1;
                let cap = peers[uploader].upload_capacity.min(stream_rate);
                let p = churn.link_failure_prob(&peers[uploader]);
                b.add_edge(nodes[uploader], me, cap, p).expect("valid edge");
            }
        }
    }
    StreamingScenario {
        net: b.build(),
        server,
        peers: nodes,
        stream_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxflow::{build_flow, SolverKind};

    fn peers(n: usize) -> Vec<Peer> {
        (0..n)
            .map(|i| Peer::new(2, 300.0 + 50.0 * i as f64))
            .collect()
    }

    #[test]
    fn mesh_is_deterministic_per_seed() {
        let a = random_mesh(&peers(6), 2, 2, &ChurnModel::new(60.0), 9);
        let b = random_mesh(&peers(6), 2, 2, &ChurnModel::new(60.0), 9);
        assert_eq!(a.net.edge_count(), b.net.edge_count());
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn every_peer_is_reachable() {
        let sc = random_mesh(&peers(8), 2, 1, &ChurnModel::new(60.0), 3);
        for &p in &sc.peers {
            let mut nf = build_flow(&sc.net, sc.server, p);
            nf.apply_all_alive();
            let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
            assert!(f >= 1, "peer {p} unreachable");
        }
    }

    #[test]
    fn neighbor_count_bounds_in_degree() {
        let sc = random_mesh(&peers(8), 3, 1, &ChurnModel::new(60.0), 5);
        let mut indeg = vec![0usize; sc.net.node_count()];
        for e in sc.net.edges() {
            indeg[e.dst.index()] += 1;
        }
        for &p in &sc.peers {
            assert!(indeg[p.index()] <= 3);
            assert!(indeg[p.index()] >= 1);
        }
    }

    #[test]
    fn first_peer_always_pulls_from_server() {
        let sc = random_mesh(&peers(4), 2, 1, &ChurnModel::new(60.0), 1);
        assert!(sc
            .net
            .edges()
            .iter()
            .any(|e| e.src == sc.server && e.dst == sc.peers[0]));
    }
}
