//! Multi-tree striped overlay (SplitStream / CoopNet style).
//!
//! The stream is split into `d` unit-rate sub-streams; sub-stream `g` is
//! pushed down its own tree whose *interior* nodes are the peers with index
//! `≡ g (mod d)`. Every peer is interior in exactly one tree and a leaf in
//! the others, so one peer departure can remove at most one sub-stream from
//! any subscriber — the fault-tolerance argument of the paper's references \[3\] and \[14\].

use netgraph::{GraphKind, NetworkBuilder};

use crate::churn::{ChurnModel, Peer};
use crate::scenario::StreamingScenario;

/// Builds the union of `d = stream_rate` striped trees over `peers`.
///
/// In tree `g`, the interior peers (indices `g, g+d, g+2d, …`) form a chain
/// fed by the server; every other peer attaches as a leaf to an interior
/// peer, round-robin. All links have capacity 1 and fail with the uploader's
/// churn probability.
///
/// # Panics
/// Panics when `stream_rate` is 0 or exceeds the number of peers.
pub fn multi_tree(peers: &[Peer], stream_rate: u64, churn: &ChurnModel) -> StreamingScenario {
    let d = stream_rate as usize;
    assert!(d >= 1, "stream rate must be at least 1");
    assert!(
        d <= peers.len(),
        "need at least one interior peer per sub-stream"
    );
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let server = b.add_node();
    let nodes: Vec<_> = (0..peers.len()).map(|_| b.add_node()).collect();
    for g in 0..d {
        let interior: Vec<usize> = (g..peers.len()).step_by(d).collect();
        // server feeds the head of the interior chain
        b.add_edge(server, nodes[interior[0]], 1, 0.0)
            .expect("valid edge");
        // interior chain
        for w in interior.windows(2) {
            let p = churn.link_failure_prob(&peers[w[0]]);
            b.add_edge(nodes[w[0]], nodes[w[1]], 1, p)
                .expect("valid edge");
        }
        // leaves: everyone not interior in this tree, attached round-robin
        let mut slot = 0usize;
        for (i, &leaf) in nodes.iter().enumerate() {
            if i % d == g {
                continue;
            }
            let host = interior[slot % interior.len()];
            slot += 1;
            let p = churn.link_failure_prob(&peers[host]);
            b.add_edge(nodes[host], leaf, 1, p).expect("valid edge");
        }
    }
    StreamingScenario {
        net: b.build(),
        server,
        peers: nodes,
        stream_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxflow::{build_flow, SolverKind};

    fn peers(n: usize) -> Vec<Peer> {
        (0..n)
            .map(|i| Peer::new(4, 600.0 + 10.0 * i as f64))
            .collect()
    }

    #[test]
    fn every_peer_receives_all_substreams() {
        let sc = multi_tree(&peers(6), 2, &ChurnModel::new(60.0));
        for &p in &sc.peers {
            let mut nf = build_flow(&sc.net, sc.server, p);
            nf.apply_all_alive();
            let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
            assert!(f >= 2, "peer {p} receives both sub-streams, got {f}");
        }
    }

    #[test]
    fn edge_count_is_d_trees() {
        let n = 6;
        let d = 2;
        let sc = multi_tree(&peers(n), d as u64, &ChurnModel::new(60.0));
        // each tree spans server + n peers: n links; d trees total
        assert_eq!(sc.net.edge_count(), d * n);
    }

    #[test]
    fn interior_sets_are_disjoint() {
        let n = 9;
        let d = 3;
        let sc = multi_tree(&peers(n), d, &ChurnModel::new(60.0));
        // a peer uploads only in the tree where it is interior: its out-degree
        // as uploader must touch only one stripe; structurally, every peer has
        // at least one outgoing link only if it hosts something
        let mut uploads = vec![0usize; sc.net.node_count()];
        for e in sc.net.edges() {
            uploads[e.src.index()] += 1;
        }
        // with 9 peers and 3 stripes, each stripe has 3 interior peers hosting
        // 2 chain links... at minimum, no peer's upload role explodes
        for (&node, count) in sc.peers.iter().zip(uploads.iter().skip(1)) {
            assert!(
                *count <= 2 + n / d as usize,
                "peer {node} over-uploads: {count}"
            );
        }
    }

    #[test]
    fn single_stripe_degenerates_to_chain_tree() {
        let sc = multi_tree(&peers(4), 1, &ChurnModel::new(60.0));
        assert_eq!(sc.net.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "interior peer")]
    fn too_many_stripes_rejected() {
        multi_tree(&peers(2), 3, &ChurnModel::new(60.0));
    }
}
