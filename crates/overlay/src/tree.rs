//! Single-tree push overlay (ESM / SCRIBE style).

use netgraph::{GraphKind, NetworkBuilder};

use crate::churn::{ChurnModel, Peer};
use crate::scenario::StreamingScenario;

/// Builds a complete `fanout`-ary push tree over `peers` (in order: peer 0 is
/// the root's first child, peers fill the tree level by level). Every link
/// carries the whole stream (`capacity = stream_rate`) and fails with the
/// uploader's churn probability.
///
/// The media server is node 0 and uploads to the first `fanout` peers.
pub fn single_tree(
    peers: &[Peer],
    fanout: usize,
    stream_rate: u64,
    churn: &ChurnModel,
) -> StreamingScenario {
    assert!(fanout >= 1, "fanout must be at least 1");
    assert!(!peers.is_empty(), "need at least one peer");
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let server = b.add_node();
    let nodes: Vec<_> = (0..peers.len()).map(|_| b.add_node()).collect();
    let server_peer = Peer::new(u64::MAX, f64::INFINITY.min(1e18)); // server never churns
    for (i, &child) in nodes.iter().enumerate() {
        // parent of peer i in the level-filled tree: the server for the first
        // `fanout` peers, otherwise peer (i - 1) / fanout... careful: with the
        // server as root, peer i's parent index is (i / fanout) - 1 shifted;
        // derive from the 1-based heap layout including the server as node 0.
        let heap_pos = i + 1; // server occupies heap position 0
        let parent_pos = (heap_pos - 1) / fanout;
        let (parent_node, uploader) = if parent_pos == 0 {
            (server, &server_peer)
        } else {
            (nodes[parent_pos - 1], &peers[parent_pos - 1])
        };
        let p = churn.link_failure_prob(uploader);
        b.add_edge(parent_node, child, stream_rate, p)
            .expect("valid edge");
    }
    StreamingScenario {
        net: b.build(),
        server,
        peers: nodes,
        stream_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxflow::{build_flow, SolverKind};

    fn peers(n: usize) -> Vec<Peer> {
        (0..n).map(|i| Peer::new(2, 600.0 + i as f64)).collect()
    }

    #[test]
    fn tree_shape_binary() {
        let sc = single_tree(&peers(7), 2, 1, &ChurnModel::new(60.0));
        // 7 peers + server, 7 links (a tree)
        assert_eq!(sc.net.node_count(), 8);
        assert_eq!(sc.net.edge_count(), 7);
        // server uploads to exactly 2 peers
        let server_out = sc.net.edges().iter().filter(|e| e.src == sc.server).count();
        assert_eq!(server_out, 2);
    }

    #[test]
    fn every_peer_reaches_full_stream() {
        let sc = single_tree(&peers(7), 2, 3, &ChurnModel::new(60.0));
        for &p in &sc.peers {
            let mut nf = build_flow(&sc.net, sc.server, p);
            nf.apply_all_alive();
            let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
            assert_eq!(f, 3, "peer {p} must receive the full stream");
        }
    }

    #[test]
    fn server_links_are_reliable() {
        let sc = single_tree(&peers(3), 3, 1, &ChurnModel::new(60.0));
        for e in sc.net.edges().iter().filter(|e| e.src == sc.server) {
            assert!(e.fail_prob < 1e-12, "server never churns");
        }
    }

    #[test]
    fn deep_chain_with_fanout_one() {
        let sc = single_tree(&peers(4), 1, 1, &ChurnModel::new(60.0));
        assert_eq!(sc.net.edge_count(), 4);
        // path: every non-root link's uploader is the previous peer
        for (i, e) in sc.net.edges().iter().enumerate().skip(1) {
            assert_eq!(e.src, sc.peers[i - 1]);
        }
    }
}
