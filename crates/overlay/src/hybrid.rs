//! Hybrid tree–mesh overlay (mTreebone style, the paper’s reference \[16\]).
//!
//! A *treebone* of the most stable peers pushes the stream; every peer also
//! keeps a few random mesh links as auxiliary pull paths that take over when
//! a backbone link fails. Flow-reliability analysis captures exactly this
//! interplay: the mesh links raise the max-flow redundancy around the fragile
//! backbone.

use netgraph::{GraphKind, NetworkBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::churn::{ChurnModel, Peer};
use crate::scenario::StreamingScenario;

/// Builds a treebone + mesh hybrid.
///
/// The `backbone_fraction` most stable peers (by mean session time, at least
/// one) form a chain backbone fed by the server and carrying the full rate;
/// every remaining peer attaches to the backbone round-robin. On top, every
/// peer adds `mesh_links` pull links from random earlier peers (capacity 1
/// each). Deterministic per `seed`.
pub fn hybrid_tree_mesh(
    peers: &[Peer],
    backbone_fraction: f64,
    mesh_links: usize,
    stream_rate: u64,
    churn: &ChurnModel,
    seed: u64,
) -> StreamingScenario {
    assert!(!peers.is_empty());
    assert!((0.0..=1.0).contains(&backbone_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let server = b.add_node();
    let server_peer = Peer::new(u64::MAX, 1e18);
    let nodes: Vec<_> = (0..peers.len()).map(|_| b.add_node()).collect();

    // stability ranking: longest mean session first
    let mut by_stability: Vec<usize> = (0..peers.len()).collect();
    by_stability.sort_by(|&a, &z| {
        peers[z]
            .mean_session_secs
            .partial_cmp(&peers[a].mean_session_secs)
            .expect("session times are finite")
    });
    let backbone_len =
        ((peers.len() as f64 * backbone_fraction).ceil() as usize).clamp(1, peers.len());
    let backbone = &by_stability[..backbone_len];

    // treebone: server -> chain of stable peers, full rate
    let p = churn.link_failure_prob(&server_peer);
    b.add_edge(server, nodes[backbone[0]], stream_rate, p)
        .expect("valid edge");
    for w in backbone.windows(2) {
        let p = churn.link_failure_prob(&peers[w[0]]);
        b.add_edge(nodes[w[0]], nodes[w[1]], stream_rate, p)
            .expect("valid edge");
    }
    // leaves hang off the backbone round-robin, full rate
    for (slot, &i) in by_stability[backbone_len..].iter().enumerate() {
        let host = backbone[slot % backbone_len];
        let p = churn.link_failure_prob(&peers[host]);
        b.add_edge(nodes[host], nodes[i], stream_rate, p)
            .expect("valid edge");
    }
    // auxiliary mesh links: every peer pulls from random earlier peers
    for i in 1..peers.len() {
        let mut candidates: Vec<usize> = (0..i).collect();
        candidates.shuffle(&mut rng);
        for &up in candidates.iter().take(mesh_links) {
            let cap = peers[up].upload_capacity.min(stream_rate).max(1);
            let p = churn.link_failure_prob(&peers[up]);
            b.add_edge(nodes[up], nodes[i], cap.min(1), p)
                .expect("valid edge");
        }
    }
    StreamingScenario {
        net: b.build(),
        server,
        peers: nodes,
        stream_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxflow::{build_flow, SolverKind};

    fn peers(n: usize) -> Vec<Peer> {
        // alternating stable/flaky population
        (0..n)
            .map(|i| Peer::new(3, if i % 2 == 0 { 1800.0 } else { 120.0 }))
            .collect()
    }

    #[test]
    fn backbone_uses_stable_peers() {
        let sc = hybrid_tree_mesh(&peers(6), 0.5, 0, 2, &ChurnModel::new(60.0), 1);
        // the server's successor is the most stable peer (index 0)
        let first = sc
            .net
            .edges()
            .iter()
            .find(|e| e.src == sc.server)
            .expect("server uploads");
        assert_eq!(first.dst, sc.peers[0]);
    }

    #[test]
    fn every_peer_reachable_at_full_rate() {
        let sc = hybrid_tree_mesh(&peers(7), 0.4, 2, 2, &ChurnModel::new(60.0), 3);
        for &p in &sc.peers {
            let mut nf = build_flow(&sc.net, sc.server, p);
            nf.apply_all_alive();
            let f = SolverKind::Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
            assert!(f >= 2, "peer {p} gets the full stream, got {f}");
        }
    }

    #[test]
    fn mesh_links_add_redundancy() {
        let bare = hybrid_tree_mesh(&peers(6), 0.5, 0, 1, &ChurnModel::new(60.0), 5);
        let rich = hybrid_tree_mesh(&peers(6), 0.5, 2, 1, &ChurnModel::new(60.0), 5);
        assert!(rich.net.edge_count() > bare.net.edge_count());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = hybrid_tree_mesh(&peers(6), 0.5, 2, 1, &ChurnModel::new(60.0), 9);
        let b = hybrid_tree_mesh(&peers(6), 0.5, 2, 1, &ChurnModel::new(60.0), 9);
        assert_eq!(a.net.edge_count(), b.net.edge_count());
        for (x, y) in a.net.edges().iter().zip(b.net.edges()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn single_peer_backbone() {
        let sc = hybrid_tree_mesh(&peers(3), 0.01, 1, 1, &ChurnModel::new(60.0), 2);
        // ceil(0.03) clamps to one backbone peer hosting everyone
        assert!(sc.net.edge_count() >= 3);
    }
}
