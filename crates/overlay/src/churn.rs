//! Peer churn → link failure probability.

/// A participating peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peer {
    /// Upload capacity in unit sub-streams the peer can forward concurrently.
    pub upload_capacity: u64,
    /// Mean session length, in seconds (exponentially distributed sessions).
    pub mean_session_secs: f64,
}

impl Peer {
    /// A peer with the given upload capacity and mean session time.
    pub fn new(upload_capacity: u64, mean_session_secs: f64) -> Self {
        assert!(mean_session_secs > 0.0, "mean session must be positive");
        Peer {
            upload_capacity,
            mean_session_secs,
        }
    }
}

/// Maps peer churn onto per-connection failure probabilities.
#[derive(Clone, Copy, Debug)]
pub struct ChurnModel {
    /// Length of the streaming window being analysed, in seconds.
    pub window_secs: f64,
    /// Residual connection loss applied even to infinitely stable peers
    /// (transport-level failures), in `[0, 1)`.
    pub base_loss: f64,
}

impl ChurnModel {
    /// A model for a streaming window of the given length with no residual
    /// transport loss.
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs >= 0.0);
        ChurnModel {
            window_secs,
            base_loss: 0.0,
        }
    }

    /// Adds residual connection loss.
    pub fn with_base_loss(mut self, base_loss: f64) -> Self {
        assert!((0.0..1.0).contains(&base_loss));
        self.base_loss = base_loss;
        self
    }

    /// Failure probability of a connection uploaded by `peer` during the
    /// window: `1 − (1 − base_loss) · exp(−window / mean_session)`.
    ///
    /// The result is strictly below 1, as the paper requires of `p(e)`.
    pub fn link_failure_prob(&self, peer: &Peer) -> f64 {
        let survive = (1.0 - self.base_loss) * (-self.window_secs / peer.mean_session_secs).exp();
        (1.0 - survive).min(1.0 - f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_peer_short_window() {
        let m = ChurnModel::new(60.0);
        let stable = Peer::new(4, 3600.0);
        let p = m.link_failure_prob(&stable);
        assert!((p - (1.0 - (-60.0f64 / 3600.0).exp())).abs() < 1e-12);
        assert!(p < 0.02);
    }

    #[test]
    fn flaky_peer_fails_more() {
        let m = ChurnModel::new(60.0);
        let stable = Peer::new(4, 3600.0);
        let flaky = Peer::new(4, 30.0);
        assert!(m.link_failure_prob(&flaky) > m.link_failure_prob(&stable));
        assert!(m.link_failure_prob(&flaky) > 0.8);
    }

    #[test]
    fn zero_window_only_base_loss() {
        let m = ChurnModel::new(0.0).with_base_loss(0.05);
        let p = m.link_failure_prob(&Peer::new(1, 100.0));
        assert!((p - 0.05).abs() < 1e-12);
    }

    #[test]
    fn probability_stays_below_one() {
        let m = ChurnModel::new(1e9);
        let p = m.link_failure_prob(&Peer::new(1, 1e-3));
        assert!(p < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_session() {
        Peer::new(1, 0.0);
    }
}
