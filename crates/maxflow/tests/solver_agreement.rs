//! Cross-solver agreement on random graphs: every bundled solver must return
//! the same maximum flow, the flow must satisfy conservation, and it must
//! equal the capacity of the extracted minimum cut (weak duality check).

use maxflow::{build_flow, min_cut, SolverKind};
use netgraph::{GraphKind, Network, NetworkBuilder, NodeId};
use proptest::prelude::*;

fn random_network(kind: GraphKind) -> impl Strategy<Value = (Network, NodeId, NodeId)> {
    (
        2usize..10,
        proptest::collection::vec((0usize..10, 0usize..10, 1u64..8), 1..25),
    )
        .prop_map(move |(n, raw)| {
            let mut b = NetworkBuilder::new(kind);
            let nodes = b.add_nodes(n);
            for (u, v, c) in raw {
                let (u, v) = (u % n, v % n);
                b.add_edge(nodes[u], nodes[v], c, 0.1).unwrap();
            }
            (b.build(), nodes[0], nodes[n - 1])
        })
}

fn flow_with(kind: SolverKind, net: &Network, s: NodeId, t: NodeId, limit: u64) -> u64 {
    let mut nf = build_flow(net, s, t);
    nf.apply_all_alive();
    let f = kind
        .solver()
        .solve(&mut nf.graph, nf.source, nf.sink, limit);
    // push-relabel leaves a preflow, not a flow; skip conservation for it
    if kind != SolverKind::PushRelabel && limit == u64::MAX {
        assert_eq!(nf.graph.check_conservation(nf.source, nf.sink).unwrap(), f);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_solvers_agree_directed((net, s, t) in random_network(GraphKind::Directed)) {
        let reference = flow_with(SolverKind::Dinic, &net, s, t, u64::MAX);
        for kind in SolverKind::ALL {
            prop_assert_eq!(flow_with(kind, &net, s, t, u64::MAX), reference, "{:?}", kind);
        }
    }

    #[test]
    fn all_solvers_agree_undirected((net, s, t) in random_network(GraphKind::Undirected)) {
        let reference = flow_with(SolverKind::Dinic, &net, s, t, u64::MAX);
        for kind in SolverKind::ALL {
            prop_assert_eq!(flow_with(kind, &net, s, t, u64::MAX), reference, "{:?}", kind);
        }
    }

    #[test]
    fn limited_solve_is_min_of_flow_and_limit(
        (net, s, t) in random_network(GraphKind::Directed),
        limit in 0u64..6,
    ) {
        let full = flow_with(SolverKind::Dinic, &net, s, t, u64::MAX);
        for kind in SolverKind::ALL {
            prop_assert_eq!(flow_with(kind, &net, s, t, limit), full.min(limit), "{:?}", kind);
        }
    }

    #[test]
    fn min_cut_matches_max_flow((net, s, t) in random_network(GraphKind::Directed)) {
        let flow = flow_with(SolverKind::Dinic, &net, s, t, u64::MAX);
        let cut = min_cut(&net, s, t, SolverKind::Dinic);
        prop_assert_eq!(cut.value, flow);
        let cap: u64 = cut.edges.iter().map(|&e| net.edge(e).capacity).sum();
        prop_assert_eq!(cap, flow, "cut capacity must equal flow value");
        // s on the source side, t not
        prop_assert!(cut.source_side.contains(&s));
        prop_assert!(!cut.source_side.contains(&t));
    }

    #[test]
    fn undirected_min_cut_matches((net, s, t) in random_network(GraphKind::Undirected)) {
        let flow = flow_with(SolverKind::Dinic, &net, s, t, u64::MAX);
        let cut = min_cut(&net, s, t, SolverKind::Dinic);
        prop_assert_eq!(cut.value, flow);
        let cap: u64 = cut.edges.iter().map(|&e| net.edge(e).capacity).sum();
        prop_assert_eq!(cap, flow);
    }
}
