//! Minimum s–t cut extraction from a solved residual graph.

use netgraph::{EdgeId, Network, NodeId};

use crate::graph::FlowGraph;
use crate::lower::build_flow;
use crate::solver::SolverKind;

/// A minimum s–t cut of a network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// The cut value (equals the maximum flow).
    pub value: u64,
    /// Network edges crossing the cut from the source side to the sink side.
    pub edges: Vec<EdgeId>,
    /// Nodes on the source side of the cut.
    pub source_side: Vec<NodeId>,
}

/// Nodes reachable from `s` in the residual graph (after a full solve).
pub(crate) fn residual_reachable(g: &FlowGraph, s: usize) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    seen[s] = true;
    let mut stack = vec![s];
    while let Some(u) = stack.pop() {
        for &arc in g.arcs_from(u) {
            let v = g.arc_head(arc);
            if !seen[v] && g.residual(arc) > 0 {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Computes a minimum s–t cut of `net` (all links alive) using `solver`.
///
/// For directed networks the cut contains edges from the source side to the
/// sink side; for undirected networks it contains every edge with endpoints on
/// opposite sides.
pub fn min_cut(net: &Network, s: NodeId, t: NodeId, solver: SolverKind) -> MinCut {
    let mut nf = build_flow(net, s, t);
    nf.apply_all_alive();
    let value = solver
        .solver()
        .solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
    let seen = residual_reachable(&nf.graph, nf.source);
    let mut edges = Vec::new();
    for (id, e) in net.edge_refs() {
        let su = seen[e.src.index()];
        let sv = seen[e.dst.index()];
        let crosses = match net.kind() {
            netgraph::GraphKind::Directed => su && !sv,
            netgraph::GraphKind::Undirected => su != sv,
        };
        if crosses {
            edges.push(id);
        }
    }
    let source_side = seen
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x)
        .map(|(i, _)| NodeId::from(i))
        .collect();
    MinCut {
        value,
        edges,
        source_side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn cut_value_equals_flow_and_capacity() {
        // s -2-> a -1-> t : min cut is the middle edge
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        let net = b.build();
        let cut = min_cut(&net, n[0], n[2], SolverKind::Dinic);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.edges, vec![EdgeId(1)]);
        assert_eq!(cut.source_side, vec![n[0], n[1]]);
    }

    #[test]
    fn cut_capacity_matches_value() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 3, 0.1).unwrap();
        b.add_edge(n[0], n[2], 2, 0.1).unwrap();
        b.add_edge(n[1], n[3], 2, 0.1).unwrap();
        b.add_edge(n[2], n[3], 3, 0.1).unwrap();
        let net = b.build();
        let cut = min_cut(&net, n[0], n[3], SolverKind::EdmondsKarp);
        let cap: u64 = cut.edges.iter().map(|&e| net.edge(e).capacity).sum();
        assert_eq!(cut.value, 4);
        assert_eq!(cap, cut.value);
    }

    #[test]
    fn undirected_cut_counts_both_orientations() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 5, 0.1).unwrap();
        b.add_edge(n[2], n[1], 1, 0.1).unwrap(); // declared toward the middle
        let net = b.build();
        let cut = min_cut(&net, n[0], n[2], SolverKind::Dinic);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.edges, vec![EdgeId(1)]);
    }

    #[test]
    fn disconnected_gives_empty_cut() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        let net = b.build();
        let cut = min_cut(&net, n[0], n[1], SolverKind::Dinic);
        assert_eq!(cut.value, 0);
        assert!(cut.edges.is_empty());
    }
}
