//! Warm-start incremental feasibility oracle.
//!
//! The configuration sweeps ask "does mask `c` admit `d` units of s–t flow?"
//! for a Gray-code sequence of masks — successive queries differ in one edge.
//! Re-solving from scratch throws away the previous answer's flow. This
//! module instead **repairs** the maintained flow across a flip:
//!
//! * **death** — cancel the flow routed through the dying arc pair: first
//!   zero the on-arc flow (push along the partner), which leaves an excess at
//!   the arc's tail and a deficit at its head; then walk flow-carrying paths
//!   backward from the excess node and forward from the deficit node
//!   (reverse-residual BFS over the flow decomposition) and cancel them until
//!   conservation holds again. The result is a valid flow on the smaller
//!   graph, so `flow ≤ maxflow(new mask)` still holds.
//! * **revival** — restore the arc pair's residual capacity in place
//!   ([`FlowGraph::revive`]); the maintained flow is untouched and remains
//!   valid because extra capacity never invalidates a flow.
//!
//! After the repairs the oracle re-reads the flow value straight off the
//! source's incident arcs ([`FlowGraph::source_outflow`]) and only runs the
//! (workspace-backed, allocation-free) solver to augment the *lost* amount —
//! or not at all: a feasible flow that survived the flip answers "feasible"
//! immediately, and a death can never turn an infeasible verdict feasible.
//! Since every solver in this crate augments the *current residual graph* to
//! exhaustion (up to `limit`), starting from a valid warm flow yields exactly
//! `min(maxflow, limit)` — the verdict is exact, never a heuristic.
//!
//! Full from-scratch re-solves are kept as a fallback (first query, state
//! explicitly invalidated by the caller, too many bits flipped at once, or a
//! defensive bail-out if a repair BFS cannot find a cancellation path) and
//! counted in [`RepairStats::full_resolves`].

use netgraph::EdgeMask;

use crate::graph::{ArcId, FlowGraph};
use crate::lower::NetworkFlow;
use crate::solver::SolverKind;
use crate::workspace::{prepare, Workspace};

/// Beyond this many flipped edges a from-scratch solve is cheaper than
/// path-by-path repair.
const MAX_WARM_FLIPS: u32 = 8;

/// Telemetry for the incremental oracle: how often it repaired in place
/// versus fell back to a cold solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Edge flips absorbed incrementally (deaths + revivals).
    pub flips: u64,
    /// Flow-decomposition paths cancelled while repairing deaths.
    pub repairs: u64,
    /// Full from-scratch re-solves (first query, invalidation, fallback).
    pub full_resolves: u64,
}

impl RepairStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RepairStats) {
        self.flips += other.flips;
        self.repairs += other.repairs;
        self.full_resolves += other.full_resolves;
    }
}

/// Warm-start state carried between successive feasibility queries against
/// one [`NetworkFlow`]. Owns the solver scratch [`Workspace`] too, so a
/// query allocates nothing once warmed up.
#[derive(Clone, Debug)]
pub struct WarmState {
    ws: Workspace,
    /// Alive-edge bits of the configuration the graph state reflects.
    bits: u64,
    /// Verdict of the last query.
    verdict: bool,
    /// Whether the residual graph was exhausted by the last query (no s–t
    /// residual path), i.e. an infeasibility cut can be read off it.
    cut_ready: bool,
    /// Whether `bits`/`verdict` and the graph state are trustworthy.
    valid: bool,
    /// Repair telemetry.
    pub stats: RepairStats,
}

impl Default for WarmState {
    fn default() -> Self {
        Self::new()
    }
}

impl WarmState {
    /// A fresh state; the first query always runs a full solve.
    pub fn new() -> Self {
        WarmState {
            ws: Workspace::new(),
            bits: 0,
            verdict: false,
            cut_ready: false,
            valid: false,
            stats: RepairStats::default(),
        }
    }

    /// Marks the maintained flow unusable. The next query runs a full solve.
    /// Call whenever the graph is mutated behind the oracle's back
    /// (terminal retuning, checkpoint resume, chunk handoff).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Returns the accumulated telemetry and resets it to zero.
    pub fn take_stats(&mut self) -> RepairStats {
        std::mem::take(&mut self.stats)
    }

    /// Answers whether configuration `new_bits` admits `required` units of
    /// s–t flow, warm-starting from the previous query when possible.
    ///
    /// With `exhaust` set the residual graph is always driven to exhaustion
    /// on an infeasible verdict (monotone shortcuts are skipped), so
    /// [`NetworkFlow::residual_cut_bits`] yields a certificate afterwards;
    /// on a feasible verdict [`NetworkFlow::flow_support_bits`] is always
    /// valid because the maintained flow is in the graph either way.
    pub fn admits(
        &mut self,
        nf: &mut NetworkFlow,
        solver: SolverKind,
        required: u64,
        new_bits: u64,
        exhaust: bool,
    ) -> bool {
        debug_assert!(nf.edge_arcs.len() <= 64, "warm oracle needs <= 64 edges");
        if required == 0 {
            return true; // trivially admitted; graph state left as-is
        }
        nf.graph.ensure_csr();
        if !self.valid {
            return self.full_solve(nf, solver, required, new_bits);
        }
        let diff = self.bits ^ new_bits;
        if diff.count_ones() > MAX_WARM_FLIPS {
            return self.full_solve(nf, solver, required, new_bits);
        }
        self.stats.flips += u64::from(diff.count_ones());
        let deaths = self.bits & diff;
        let revivals = new_bits & diff;
        let mut d = deaths;
        while d != 0 {
            let e = d.trailing_zeros() as usize;
            d &= d - 1;
            let arc = nf.edge_arcs[e];
            if cancel_arc_flow(
                &mut nf.graph,
                arc,
                nf.source,
                nf.sink,
                &mut self.ws,
                &mut self.stats,
            )
            .is_err()
            {
                // theory says a cancellation path always exists; if the walk
                // ever fails, fall back to an exact cold solve
                return self.full_solve(nf, solver, required, new_bits);
            }
            nf.graph.disable(arc);
        }
        let mut r = revivals;
        while r != 0 {
            let e = r.trailing_zeros() as usize;
            r &= r - 1;
            nf.graph.revive(nf.edge_arcs[e]);
        }

        let mut value = nf.graph.source_outflow(nf.source);
        let verdict;
        if value >= required {
            // the surviving warm flow already meets the demand
            verdict = true;
            self.cut_ready = false;
        } else if revivals == 0 && !self.verdict && (!exhaust || (diff == 0 && self.cut_ready)) {
            // deaths only: maxflow is monotone in the alive set, so an
            // infeasible verdict stands without touching the solver
            verdict = false;
            self.cut_ready = diff == 0 && self.cut_ready;
        } else {
            value += solver.solve_ws(
                &mut nf.graph,
                nf.source,
                nf.sink,
                required - value,
                &mut self.ws,
            );
            verdict = value >= required;
            // an augmentation that fell short ran to exhaustion
            self.cut_ready = !verdict;
        }
        self.bits = new_bits;
        self.verdict = verdict;
        verdict
    }

    fn full_solve(
        &mut self,
        nf: &mut NetworkFlow,
        solver: SolverKind,
        required: u64,
        new_bits: u64,
    ) -> bool {
        self.stats.full_resolves += 1;
        nf.apply_mask(EdgeMask::from_bits(new_bits, nf.edge_arcs.len()));
        let value = solver.solve_ws(&mut nf.graph, nf.source, nf.sink, required, &mut self.ws);
        let verdict = value >= required;
        self.bits = new_bits;
        self.verdict = verdict;
        self.cut_ready = !verdict;
        self.valid = true;
        verdict
    }
}

/// Cancels all flow routed through the arc pair of `a`, restoring flow
/// conservation at every non-terminal node. On return the pair carries no
/// flow and the graph holds a valid (possibly smaller) s–t flow. Errors only
/// if a cancellation path cannot be found, which a valid flow never exhibits;
/// callers treat that defensively with a full re-solve.
fn cancel_arc_flow(
    g: &mut FlowGraph,
    a: ArcId,
    s: usize,
    t: usize,
    ws: &mut Workspace,
    stats: &mut RepairStats,
) -> Result<(), ()> {
    let f = g.net_flow(a);
    if f == 0 {
        return Ok(());
    }
    // orient `af` along the direction the flow actually runs
    let (af, x) = if f > 0 {
        (a.0, f as u64)
    } else {
        (a.0 ^ 1, f.unsigned_abs())
    };
    let u = g.arc_tail(af); // flow left u ...
    let v = g.arc_head(af); // ... and entered v
    g.push(af ^ 1, x); // zero the on-arc flow
    if u == v {
        return Ok(()); // self-loop: excess and deficit coincide
    }
    // x units of inflow are now stranded at u (unless u is a terminal,
    // whose imbalance is unconstrained), and v is short x units of inflow.
    let mut excess = if u == s || u == t { 0 } else { x };
    let mut deficit = if v == s || v == t { 0 } else { x };
    while excess > 0 {
        // walk the stranded inflow backward to its origin (s, t, or v —
        // reaching v settles part of the deficit at the same time)
        let (end, cancelled) = cancel_backward_path(
            g,
            u,
            s,
            t,
            if deficit > 0 { Some(v) } else { None },
            excess,
            ws,
        )?;
        excess -= cancelled;
        // `deficit > 0` guard: when v is a terminal the walk may still end
        // there (as s or t), but there is no deficit to settle
        if end == v && deficit > 0 {
            deficit -= cancelled;
        }
        stats.repairs += 1;
    }
    while deficit > 0 {
        // walk the missing inflow's former continuation forward to t (or s)
        let cancelled = cancel_forward_path(g, v, s, t, deficit, ws)?;
        deficit -= cancelled;
        stats.repairs += 1;
    }
    Ok(())
}

/// BFS from `from` backward along flow-carrying arcs (arcs whose partner
/// carries positive flow *into* the current node) until `s`, `t`, or `via`
/// is reached; cancels the bottleneck (≤ `cap_amount`) along the found path.
/// Returns the reached endpoint and the cancelled amount.
fn cancel_backward_path(
    g: &mut FlowGraph,
    from: usize,
    s: usize,
    t: usize,
    via: Option<usize>,
    cap_amount: u64,
    ws: &mut Workspace,
) -> Result<(usize, u64), ()> {
    let n = g.node_count();
    prepare(&mut ws.parent, n, u32::MAX);
    ws.queue.clear();
    ws.queue.push(from as u32);
    let mut head = 0;
    let mut end = usize::MAX;
    'bfs: while head < ws.queue.len() {
        let w = ws.queue[head] as usize;
        head += 1;
        for &ar in g.arcs_from(w) {
            // `ar` points w -> p; its partner p -> w feeds w if it carries flow
            if g.flow_along(ar ^ 1) <= 0 {
                continue;
            }
            let p = g.arc_head(ar);
            if p == from || ws.parent[p] != u32::MAX {
                continue;
            }
            ws.parent[p] = ar;
            if p == s || p == t || Some(p) == via {
                end = p;
                break 'bfs;
            }
            ws.queue.push(p as u32);
        }
    }
    if end == usize::MAX {
        return Err(());
    }
    // bottleneck: the smallest flow on the partners along the path
    let mut amount = cap_amount;
    let mut p = end;
    while p != from {
        let ar = ws.parent[p];
        amount = amount.min(g.flow_along(ar ^ 1).max(0) as u64);
        p = g.arc_tail(ar);
    }
    let mut p = end;
    while p != from {
        let ar = ws.parent[p];
        g.push(ar, amount); // cancels the partner's flow
        p = g.arc_tail(ar);
    }
    Ok((end, amount))
}

/// BFS from `from` forward along flow-carrying arcs until `s` or `t` is
/// reached; cancels the bottleneck (≤ `cap_amount`) along the found path.
/// Returns the cancelled amount.
fn cancel_forward_path(
    g: &mut FlowGraph,
    from: usize,
    s: usize,
    t: usize,
    cap_amount: u64,
    ws: &mut Workspace,
) -> Result<u64, ()> {
    let n = g.node_count();
    prepare(&mut ws.parent, n, u32::MAX);
    ws.queue.clear();
    ws.queue.push(from as u32);
    let mut head = 0;
    let mut end = usize::MAX;
    'bfs: while head < ws.queue.len() {
        let w = ws.queue[head] as usize;
        head += 1;
        for &ar in g.arcs_from(w) {
            if g.flow_along(ar) <= 0 {
                continue;
            }
            let p = g.arc_head(ar);
            if p == from || ws.parent[p] != u32::MAX {
                continue;
            }
            ws.parent[p] = ar;
            if p == s || p == t {
                end = p;
                break 'bfs;
            }
            ws.queue.push(p as u32);
        }
    }
    if end == usize::MAX {
        return Err(());
    }
    let mut amount = cap_amount;
    let mut p = end;
    while p != from {
        let ar = ws.parent[p];
        amount = amount.min(g.flow_along(ar).max(0) as u64);
        p = g.arc_tail(ar);
    }
    let mut p = end;
    while p != from {
        let ar = ws.parent[p];
        g.push(ar ^ 1, amount); // cancels the arc's flow
        p = g.arc_tail(ar);
    }
    Ok(amount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::build_flow;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    fn diamond() -> netgraph::Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 2, 0.1).unwrap();
        b.add_edge(n[1], n[3], 2, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.1).unwrap();
        b.build()
    }

    fn brute(nf: &mut NetworkFlow, solver: SolverKind, required: u64, bits: u64) -> bool {
        nf.apply_mask(EdgeMask::from_bits(bits, nf.edge_arcs.len()));
        solver.solve(&mut nf.graph, nf.source, nf.sink, required) >= required
    }

    #[test]
    fn gray_walk_matches_cold_solves_on_diamond() {
        let net = diamond();
        for solver in SolverKind::ALL {
            let mut warm_nf = build_flow(&net, NodeId(0), NodeId(3));
            let mut cold_nf = warm_nf.clone();
            let mut state = WarmState::new();
            for i in 0..64u64 {
                let c = i ^ (i >> 1); // Gray code: one flip per step
                let bits = c & 0b1111;
                for d in [1u64, 2, 3, 4] {
                    let want = brute(&mut cold_nf, solver, d, bits);
                    let got = state.admits(&mut warm_nf, solver, d, bits, false);
                    assert_eq!(got, want, "solver {solver:?} bits {bits:b} demand {d}");
                }
            }
        }
    }

    #[test]
    fn conservation_holds_after_every_repair() {
        let net = diamond();
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        let mut state = WarmState::new();
        for i in 0..32u64 {
            let bits = (i ^ (i >> 1)) & 0b1111;
            state.admits(&mut nf, SolverKind::Dinic, 3, bits, false);
            nf.graph
                .check_conservation(nf.source, nf.sink)
                .expect("maintained flow must conserve");
        }
        assert!(state.stats.flips > 0, "walk must exercise the warm path");
    }

    #[test]
    fn exhaust_mode_yields_cut_certificates() {
        let net = diamond();
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        let mut state = WarmState::new();
        // all alive: feasible at 4
        assert!(state.admits(&mut nf, SolverKind::Dinic, 4, 0b1111, true));
        assert_ne!(nf.flow_support_bits(), 0);
        // kill edge 0: max flow drops to 2, infeasible at 4
        assert!(!state.admits(&mut nf, SolverKind::Dinic, 4, 0b1110, true));
        let (crossing, _) = nf.residual_cut_bits().expect("exhausted residual");
        assert_ne!(crossing, 0);
    }

    #[test]
    fn invalidate_forces_full_resolve() {
        let net = diamond();
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        let mut state = WarmState::new();
        assert!(state.admits(&mut nf, SolverKind::Dinic, 2, 0b1111, false));
        let before = state.stats.full_resolves;
        state.invalidate();
        assert!(state.admits(&mut nf, SolverKind::Dinic, 2, 0b1111, false));
        assert_eq!(state.stats.full_resolves, before + 1);
    }
}
