//! Capacity-scaling Ford–Fulkerson.
//!
//! Augments only along paths whose residual capacity is at least the current
//! scaling threshold `Δ`, halving `Δ` until 1. `O(|E|² log C)` — strongest
//! when capacities are large and skewed, which is where the unit-augmenting
//! solvers degrade.

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;
use crate::workspace::{prepare, Workspace};

/// Capacity-scaling Ford–Fulkerson.
#[derive(Clone, Copy, Debug, Default)]
pub struct CapacityScaling;

impl CapacityScaling {
    /// BFS for an augmenting path using only arcs with residual ≥ `delta`.
    fn find_path(
        g: &FlowGraph,
        s: usize,
        t: usize,
        delta: u64,
        parent_arc: &mut [u32],
        queue: &mut Vec<u32>,
    ) -> bool {
        parent_arc.fill(u32::MAX);
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &arc in g.arcs_from(u) {
                let v = g.arc_head(arc);
                if v != s && parent_arc[v] == u32::MAX && g.residual(arc) >= delta {
                    parent_arc[v] = arc;
                    if v == t {
                        return true;
                    }
                    queue.push(v as u32);
                }
            }
        }
        false
    }
}

impl MaxFlowSolver for CapacityScaling {
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        if s == t {
            return limit;
        }
        g.ensure_csr();
        let n = g.node_count();
        prepare(&mut ws.parent, n, u32::MAX);
        // largest power of two not exceeding the biggest source-side residual
        let max_cap = g
            .arcs_from(s)
            .iter()
            .map(|&a| g.residual(a))
            .max()
            .unwrap_or(0);
        if max_cap == 0 {
            return 0;
        }
        let mut delta = 1u64 << (63 - max_cap.leading_zeros());
        let mut flow = 0u64;
        while delta >= 1 {
            while flow < limit && Self::find_path(g, s, t, delta, &mut ws.parent, &mut ws.queue) {
                // bottleneck along the found path (≥ delta by construction)
                let mut aug = limit - flow;
                let mut v = t;
                while v != s {
                    let arc = ws.parent[v];
                    aug = aug.min(g.residual(arc));
                    v = g.arc_tail(arc);
                }
                let mut v = t;
                while v != s {
                    let arc = ws.parent[v];
                    g.push(arc, aug);
                    v = g.arc_tail(arc);
                }
                flow += aug;
            }
            if flow >= limit {
                break;
            }
            delta /= 2;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "capacity-scaling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_max_flow() {
        let mut g = FlowGraph::new(6);
        g.add_arc(0, 1, 16);
        g.add_arc(0, 2, 13);
        g.add_arc(1, 2, 10);
        g.add_arc(2, 1, 4);
        g.add_arc(1, 3, 12);
        g.add_arc(3, 2, 9);
        g.add_arc(2, 4, 14);
        g.add_arc(4, 3, 7);
        g.add_arc(3, 5, 20);
        g.add_arc(4, 5, 4);
        assert_eq!(CapacityScaling.solve(&mut g, 0, 5, u64::MAX), 23);
        assert_eq!(g.check_conservation(0, 5).unwrap(), 23);
    }

    #[test]
    fn huge_capacities_few_phases() {
        // the classic anti-Ford-Fulkerson diamond with a unit cross edge
        let big = 1_000_000_000;
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, big);
        g.add_arc(0, 2, big);
        g.add_arc(1, 2, 1);
        g.add_arc(1, 3, big);
        g.add_arc(2, 3, big);
        assert_eq!(CapacityScaling.solve(&mut g, 0, 3, u64::MAX), 2 * big);
    }

    #[test]
    fn respects_limit() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 1 << 40);
        assert_eq!(CapacityScaling.solve(&mut g, 0, 1, 12345), 12345);
    }

    #[test]
    fn zero_capacity_source() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 0);
        assert_eq!(CapacityScaling.solve(&mut g, 0, 1, u64::MAX), 0);
    }
}
