//! The solver trait and dispatch.

use crate::graph::FlowGraph;
use crate::workspace::Workspace;

/// A maximum-flow algorithm over a prepared [`FlowGraph`].
pub trait MaxFlowSolver {
    /// Computes a maximum s–t flow using caller-owned scratch space,
    /// stopping early once `limit` units are routed (pass `u64::MAX` for an
    /// unbounded solve). Returns `min(max_flow, limit)`. The graph retains
    /// the routed flow; call [`FlowGraph::reset`] before reusing it.
    ///
    /// Solvers never shrink the workspace: keep one [`Workspace`] per
    /// oracle/thread and reuse it across solves for allocation-free queries.
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64;

    /// Convenience wrapper around [`solve_ws`](Self::solve_ws) with a
    /// throwaway workspace, for one-off solves.
    fn solve(&self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64 {
        self.solve_ws(g, s, t, limit, &mut Workspace::new())
    }

    /// Human-readable solver name (for benches and logs).
    fn name(&self) -> &'static str;
}

/// Enumerates the bundled solvers, for configuration and benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverKind {
    /// Dinic's algorithm (level graph + blocking flow) — the default.
    #[default]
    Dinic,
    /// Edmonds–Karp (BFS shortest augmenting paths, saturating pushes).
    EdmondsKarp,
    /// BFS Ford–Fulkerson augmenting one unit per path — `O(d·|E|)` when only
    /// `d` units are demanded, the regime the paper analyses.
    BfsFordFulkerson,
    /// FIFO push-relabel with gap relabelling.
    PushRelabel,
    /// Capacity-scaling Ford–Fulkerson (`O(|E|² log C)`).
    CapacityScaling,
}

impl SolverKind {
    /// All bundled solver kinds.
    pub const ALL: [SolverKind; 5] = [
        SolverKind::Dinic,
        SolverKind::EdmondsKarp,
        SolverKind::BfsFordFulkerson,
        SolverKind::PushRelabel,
        SolverKind::CapacityScaling,
    ];

    /// Instantiates the solver.
    pub fn solver(self) -> Box<dyn MaxFlowSolver + Send + Sync> {
        match self {
            SolverKind::Dinic => Box::new(crate::Dinic),
            SolverKind::EdmondsKarp => Box::new(crate::EdmondsKarp),
            SolverKind::BfsFordFulkerson => Box::new(crate::BfsFordFulkerson),
            SolverKind::PushRelabel => Box::new(crate::PushRelabel),
            SolverKind::CapacityScaling => Box::new(crate::CapacityScaling),
        }
    }

    /// The solver's human-readable name without instantiating it.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Dinic => "dinic",
            SolverKind::EdmondsKarp => "edmonds-karp",
            SolverKind::BfsFordFulkerson => "bfs-ford-fulkerson",
            SolverKind::PushRelabel => "push-relabel",
            SolverKind::CapacityScaling => "capacity-scaling",
        }
    }

    /// Solves directly without boxing, with a throwaway workspace.
    pub fn solve(self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64 {
        self.solve_ws(g, s, t, limit, &mut Workspace::new())
    }

    /// Solves directly without boxing, reusing `ws` for scratch space.
    pub fn solve_ws(
        self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        use crate::solver::MaxFlowSolver as _;
        match self {
            SolverKind::Dinic => crate::Dinic.solve_ws(g, s, t, limit, ws),
            SolverKind::EdmondsKarp => crate::EdmondsKarp.solve_ws(g, s, t, limit, ws),
            SolverKind::BfsFordFulkerson => crate::BfsFordFulkerson.solve_ws(g, s, t, limit, ws),
            SolverKind::PushRelabel => crate::PushRelabel.solve_ws(g, s, t, limit, ws),
            SolverKind::CapacityScaling => crate::CapacityScaling.solve_ws(g, s, t, limit, ws),
        }
    }
}

/// Convenience predicate: does the prepared graph admit an s–t flow of at
/// least `demand`? (A demand of zero is trivially admitted.)
pub fn max_flow_at_least(
    solver: &dyn MaxFlowSolver,
    g: &mut FlowGraph,
    s: usize,
    t: usize,
    demand: u64,
) -> bool {
    if demand == 0 {
        return true;
    }
    solver.solve(g, s, t, demand) >= demand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_demand_is_trivially_met() {
        let mut g = FlowGraph::new(2); // no arcs at all
        assert!(max_flow_at_least(&crate::Dinic, &mut g, 0, 1, 0));
        assert!(!max_flow_at_least(&crate::Dinic, &mut g, 0, 1, 1));
    }

    #[test]
    fn solver_kinds_all_instantiate() {
        for kind in SolverKind::ALL {
            let s = kind.solver();
            assert!(!s.name().is_empty());
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn default_is_dinic() {
        assert_eq!(SolverKind::default(), SolverKind::Dinic);
    }

    #[test]
    fn workspace_reuse_across_solves_and_sizes() {
        let mut ws = Workspace::new();
        let mut g = FlowGraph::new(3);
        g.add_arc(0, 1, 2);
        g.add_arc(1, 2, 2);
        for kind in SolverKind::ALL {
            g.reset();
            assert_eq!(kind.solve_ws(&mut g, 0, 2, u64::MAX, &mut ws), 2);
        }
        // a smaller graph with the same (now larger) workspace
        let mut g2 = FlowGraph::new(2);
        g2.add_arc(0, 1, 7);
        for kind in SolverKind::ALL {
            g2.reset();
            assert_eq!(kind.solve_ws(&mut g2, 0, 1, u64::MAX, &mut ws), 7);
        }
    }
}
