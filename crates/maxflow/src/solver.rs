//! The solver trait and dispatch.

use crate::graph::FlowGraph;

/// A maximum-flow algorithm over a prepared [`FlowGraph`].
pub trait MaxFlowSolver {
    /// Computes a maximum s–t flow, stopping early once `limit` units are
    /// routed (pass `u64::MAX` for an unbounded solve). Returns
    /// `min(max_flow, limit)`. The graph retains the routed flow; call
    /// [`FlowGraph::reset`] before reusing it.
    fn solve(&self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64;

    /// Human-readable solver name (for benches and logs).
    fn name(&self) -> &'static str;
}

/// Enumerates the bundled solvers, for configuration and benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverKind {
    /// Dinic's algorithm (level graph + blocking flow) — the default.
    #[default]
    Dinic,
    /// Edmonds–Karp (BFS shortest augmenting paths, saturating pushes).
    EdmondsKarp,
    /// BFS Ford–Fulkerson augmenting one unit per path — `O(d·|E|)` when only
    /// `d` units are demanded, the regime the paper analyses.
    BfsFordFulkerson,
    /// FIFO push-relabel with gap relabelling.
    PushRelabel,
    /// Capacity-scaling Ford–Fulkerson (`O(|E|² log C)`).
    CapacityScaling,
}

impl SolverKind {
    /// All bundled solver kinds.
    pub const ALL: [SolverKind; 5] = [
        SolverKind::Dinic,
        SolverKind::EdmondsKarp,
        SolverKind::BfsFordFulkerson,
        SolverKind::PushRelabel,
        SolverKind::CapacityScaling,
    ];

    /// Instantiates the solver.
    pub fn solver(self) -> Box<dyn MaxFlowSolver + Send + Sync> {
        match self {
            SolverKind::Dinic => Box::new(crate::Dinic),
            SolverKind::EdmondsKarp => Box::new(crate::EdmondsKarp),
            SolverKind::BfsFordFulkerson => Box::new(crate::BfsFordFulkerson),
            SolverKind::PushRelabel => Box::new(crate::PushRelabel),
            SolverKind::CapacityScaling => Box::new(crate::CapacityScaling),
        }
    }

    /// Solves directly without boxing.
    pub fn solve(self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64 {
        use crate::solver::MaxFlowSolver as _;
        match self {
            SolverKind::Dinic => crate::Dinic.solve(g, s, t, limit),
            SolverKind::EdmondsKarp => crate::EdmondsKarp.solve(g, s, t, limit),
            SolverKind::BfsFordFulkerson => crate::BfsFordFulkerson.solve(g, s, t, limit),
            SolverKind::PushRelabel => crate::PushRelabel.solve(g, s, t, limit),
            SolverKind::CapacityScaling => crate::CapacityScaling.solve(g, s, t, limit),
        }
    }
}

/// Convenience predicate: does the prepared graph admit an s–t flow of at
/// least `demand`? (A demand of zero is trivially admitted.)
pub fn max_flow_at_least(
    solver: &dyn MaxFlowSolver,
    g: &mut FlowGraph,
    s: usize,
    t: usize,
    demand: u64,
) -> bool {
    if demand == 0 {
        return true;
    }
    solver.solve(g, s, t, demand) >= demand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_demand_is_trivially_met() {
        let mut g = FlowGraph::new(2); // no arcs at all
        assert!(max_flow_at_least(&crate::Dinic, &mut g, 0, 1, 0));
        assert!(!max_flow_at_least(&crate::Dinic, &mut g, 0, 1, 1));
    }

    #[test]
    fn solver_kinds_all_instantiate() {
        for kind in SolverKind::ALL {
            let s = kind.solver();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn default_is_dinic() {
        assert_eq!(SolverKind::default(), SolverKind::Dinic);
    }
}
