//! Dinic's algorithm: BFS level graph + DFS blocking flow.

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;
use crate::workspace::{prepare, Workspace};

/// Dinic's algorithm, `O(|V|²|E|)` worst case and far better in practice;
/// `O(√|E|·|E|)` on unit-capacity graphs. The workspace default.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dinic;

impl Dinic {
    fn bfs_levels(
        g: &FlowGraph,
        s: usize,
        t: usize,
        level: &mut [u32],
        queue: &mut Vec<u32>,
    ) -> bool {
        level.fill(u32::MAX);
        level[s] = 0;
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &arc in g.arcs_from(u) {
                let v = g.arc_head(arc);
                if level[v] == u32::MAX && g.residual(arc) > 0 {
                    level[v] = level[u] + 1;
                    if v == t {
                        return true;
                    }
                    queue.push(v as u32);
                }
            }
        }
        false
    }

    /// Iterative DFS pushing up to `limit` units along level-increasing arcs.
    fn blocking_flow(
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        level: &[u32],
        iter: &mut [usize],
        path: &mut Vec<u32>,
    ) -> u64 {
        let mut total = 0u64;
        // path holds the arcs of the current partial path from s
        path.clear();
        let mut u = s;
        while total < limit {
            if u == t {
                // augment along path by the bottleneck residual
                let aug = path
                    .iter()
                    .map(|&a| g.residual(a))
                    .min()
                    .unwrap_or_else(|| unreachable!("path to t cannot be empty"))
                    .min(limit - total);
                for &a in path.iter() {
                    g.push(a, aug);
                }
                total += aug;
                // retreat to the first saturated arc
                let mut cut = 0;
                for (i, &a) in path.iter().enumerate() {
                    if g.residual(a) == 0 {
                        cut = i;
                        break;
                    }
                }
                path.truncate(cut);
                u = match path.last() {
                    Some(&a) => g.arc_head(a),
                    None => s,
                };
                continue;
            }
            // advance along the next admissible arc out of u
            let mut advanced = false;
            while iter[u] < g.arcs_from(u).len() {
                let arc = g.arcs_from(u)[iter[u]];
                let v = g.arc_head(arc);
                if g.residual(arc) > 0 && level[v] == level[u] + 1 {
                    path.push(arc);
                    u = v;
                    advanced = true;
                    break;
                }
                iter[u] += 1;
            }
            if advanced {
                continue;
            }
            // dead end: retreat
            if u == s {
                break;
            }
            let arc = path
                .pop()
                .unwrap_or_else(|| unreachable!("non-source dead end must have a path"));
            u = g.arc_tail(arc);
            iter[u] += 1; // skip the arc that led to the dead end
        }
        total
    }
}

impl MaxFlowSolver for Dinic {
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        if s == t {
            return limit;
        }
        g.ensure_csr();
        let n = g.node_count();
        prepare(&mut ws.level, n, u32::MAX);
        prepare(&mut ws.cursor, n, 0);
        let mut flow = 0u64;
        while flow < limit && Self::bfs_levels(g, s, t, &mut ws.level, &mut ws.queue) {
            ws.cursor.fill(0);
            let pushed = Self::blocking_flow(
                g,
                s,
                t,
                limit - flow,
                &ws.level,
                &mut ws.cursor,
                &mut ws.path,
            );
            if pushed == 0 {
                break;
            }
            flow += pushed;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "dinic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic example: max flow 19.
    fn clrs_graph() -> FlowGraph {
        let mut g = FlowGraph::new(6);
        g.add_arc(0, 1, 16);
        g.add_arc(0, 2, 13);
        g.add_arc(1, 2, 10);
        g.add_arc(2, 1, 4);
        g.add_arc(1, 3, 12);
        g.add_arc(3, 2, 9);
        g.add_arc(2, 4, 14);
        g.add_arc(4, 3, 7);
        g.add_arc(3, 5, 20);
        g.add_arc(4, 5, 4);
        g
    }

    #[test]
    fn clrs_max_flow_is_23() {
        let mut g = clrs_graph();
        assert_eq!(Dinic.solve(&mut g, 0, 5, u64::MAX), 23);
        assert_eq!(g.check_conservation(0, 5).unwrap(), 23);
    }

    #[test]
    fn limit_stops_early() {
        let mut g = clrs_graph();
        assert_eq!(Dinic.solve(&mut g, 0, 5, 5), 5);
        assert_eq!(g.check_conservation(0, 5).unwrap(), 5);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 10);
        g.add_arc(2, 3, 10);
        assert_eq!(Dinic.solve(&mut g, 0, 3, u64::MAX), 0);
    }

    #[test]
    fn parallel_arcs_add_up() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 3);
        g.add_arc(0, 1, 4);
        assert_eq!(Dinic.solve(&mut g, 0, 1, u64::MAX), 7);
    }

    #[test]
    fn undirected_edge_flows_both_ways() {
        let mut g = FlowGraph::new(3);
        g.add_undirected(0, 1, 5);
        g.add_undirected(2, 1, 5); // declared "backwards"
        assert_eq!(Dinic.solve(&mut g, 0, 2, u64::MAX), 5);
    }

    #[test]
    fn source_equals_sink_returns_limit() {
        let mut g = FlowGraph::new(1);
        assert_eq!(Dinic.solve(&mut g, 0, 0, 7), 7);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut g = clrs_graph();
        assert_eq!(Dinic.solve(&mut g, 0, 5, u64::MAX), 23);
        g.reset();
        assert_eq!(Dinic.solve(&mut g, 0, 5, u64::MAX), 23);
    }

    #[test]
    fn zigzag_needs_back_edges() {
        // Flow must cancel along the middle arc to reach 2.
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 1);
        g.add_arc(0, 2, 1);
        g.add_arc(1, 2, 1);
        g.add_arc(1, 3, 1);
        g.add_arc(2, 3, 1);
        assert_eq!(Dinic.solve(&mut g, 0, 3, u64::MAX), 2);
    }
}
