//! Repeated min-cut probing over one lowered graph.
//!
//! The structural reduction pipeline (`flowrel_core::reduce`) certifies that
//! a link's capacity can never bind by comparing it against min-cuts between
//! *many* different node pairs of the same network, each with a few edges
//! masked out. Rebuilding a [`crate::FlowGraph`] per query would dominate the
//! cost; [`CutProber`] lowers the network once and answers every
//! `(source, sink, skipped edges)` query against the same graph, reusing one
//! [`Workspace`] — no allocation after construction.

use netgraph::{EdgeId, Network, NodeId};

use crate::lower::{build_flow, NetworkFlow};
use crate::solver::SolverKind;
use crate::workspace::Workspace;

/// Answers repeated "min-cut value between these two nodes, with these edges
/// removed" queries against a single lowered graph.
///
/// The solvers take terminals as plain node indices, so one lowering serves
/// arbitrary terminal pairs; `skip` masking uses the same per-edge arc
/// handles as configuration sweeps.
#[derive(Debug)]
pub struct CutProber {
    flow: NetworkFlow,
    ws: Workspace,
    solver: SolverKind,
}

impl CutProber {
    /// Lowers `net` once for probing with `solver`.
    pub fn new(net: &Network, solver: SolverKind) -> Self {
        // the terminals passed here are placeholders: every query names its
        // own pair, and build_flow adds no super-terminal structure
        let anchor = NodeId::from(0);
        CutProber {
            flow: build_flow(net, anchor, anchor),
            ws: Workspace::new(),
            solver,
        }
    }

    /// The min `s`–`t` cut value (equivalently, the max-flow value) of the
    /// network with every edge in `skip` removed. Returns [`u64::MAX`] when
    /// `s == t` (no cut separates a node from itself).
    ///
    /// # Panics
    /// Panics if a node or edge id is out of range for the probed network.
    pub fn min_cut_value(&mut self, s: NodeId, t: NodeId, skip: &[EdgeId]) -> u64 {
        if s == t {
            return u64::MAX;
        }
        self.flow.apply_all_alive();
        for &e in skip {
            self.flow.graph.disable(self.flow.edge_arcs[e.index()]);
        }
        self.solver.solve_ws(
            &mut self.flow.graph,
            s.index(),
            t.index(),
            u64::MAX,
            &mut self.ws,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn diamond(kind: GraphKind) -> Network {
        let mut b = NetworkBuilder::new(kind);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 3, 0.1).unwrap();
        b.add_edge(n[1], n[3], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 4, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn probes_arbitrary_pairs() {
        let net = diamond(GraphKind::Directed);
        let mut p = CutProber::new(&net, SolverKind::Dinic);
        assert_eq!(p.min_cut_value(NodeId(0), NodeId(3), &[]), 4); // 1 + 3
        assert_eq!(p.min_cut_value(NodeId(0), NodeId(1), &[]), 2);
        assert_eq!(p.min_cut_value(NodeId(1), NodeId(3), &[]), 1);
        assert_eq!(p.min_cut_value(NodeId(3), NodeId(0), &[]), 0); // directed
    }

    #[test]
    fn skip_masks_edges_per_query() {
        let net = diamond(GraphKind::Directed);
        let mut p = CutProber::new(&net, SolverKind::Dinic);
        // remove the top path: only 0 -> 2 -> 3 remains, min(3, 4) = 3
        assert_eq!(p.min_cut_value(NodeId(0), NodeId(3), &[EdgeId(0)]), 3);
        // queries after a skipped query see the full graph again
        assert_eq!(p.min_cut_value(NodeId(0), NodeId(3), &[]), 4);
        // removing both source edges disconnects
        assert_eq!(
            p.min_cut_value(NodeId(0), NodeId(3), &[EdgeId(0), EdgeId(1)]),
            0
        );
    }

    #[test]
    fn same_node_is_infinite() {
        let net = diamond(GraphKind::Undirected);
        let mut p = CutProber::new(&net, SolverKind::Dinic);
        assert_eq!(p.min_cut_value(NodeId(2), NodeId(2), &[]), u64::MAX);
    }

    #[test]
    fn undirected_cuts_ignore_orientation() {
        let net = diamond(GraphKind::Undirected);
        let mut p = CutProber::new(&net, SolverKind::Dinic);
        assert_eq!(p.min_cut_value(NodeId(3), NodeId(0), &[]), 4);
    }
}
