//! Edmonds–Karp: BFS shortest augmenting paths with saturating pushes.

use std::collections::VecDeque;

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;

/// Edmonds–Karp, `O(|V||E|²)`. Simple, dependable comparator for the
/// solver-ablation bench.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdmondsKarp;

impl MaxFlowSolver for EdmondsKarp {
    fn solve(&self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64 {
        if s == t {
            return limit;
        }
        let n = g.node_count();
        let mut parent_arc = vec![u32::MAX; n];
        let mut flow = 0u64;
        while flow < limit {
            parent_arc.fill(u32::MAX);
            let mut queue = VecDeque::new();
            queue.push_back(s);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &arc in g.arcs_from(u) {
                    let v = g.arc_head(arc);
                    if v != s && parent_arc[v] == u32::MAX && g.residual(arc) > 0 {
                        parent_arc[v] = arc;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !reached {
                break;
            }
            // bottleneck along the parent chain
            let mut aug = limit - flow;
            let mut v = t;
            while v != s {
                let arc = parent_arc[v];
                aug = aug.min(g.residual(arc));
                v = g.arc_tail(arc);
            }
            let mut v = t;
            while v != s {
                let arc = parent_arc[v];
                g.push(arc, aug);
                v = g.arc_tail(arc);
            }
            flow += aug;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "edmonds-karp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_max_flow() {
        let mut g = FlowGraph::new(6);
        g.add_arc(0, 1, 16);
        g.add_arc(0, 2, 13);
        g.add_arc(1, 2, 10);
        g.add_arc(2, 1, 4);
        g.add_arc(1, 3, 12);
        g.add_arc(3, 2, 9);
        g.add_arc(2, 4, 14);
        g.add_arc(4, 3, 7);
        g.add_arc(3, 5, 20);
        g.add_arc(4, 5, 4);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 5, u64::MAX), 23);
        assert_eq!(g.check_conservation(0, 5).unwrap(), 23);
    }

    #[test]
    fn respects_limit() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 100);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 1, 7), 7);
    }

    #[test]
    fn bottleneck_on_middle_edge() {
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 10);
        g.add_arc(1, 2, 3);
        g.add_arc(2, 3, 10);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 3, u64::MAX), 3);
    }
}
