//! Edmonds–Karp: BFS shortest augmenting paths with saturating pushes.

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;
use crate::workspace::{prepare, Workspace};

/// Edmonds–Karp, `O(|V||E|²)`. Simple, dependable comparator for the
/// solver-ablation bench.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdmondsKarp;

impl MaxFlowSolver for EdmondsKarp {
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        if s == t {
            return limit;
        }
        g.ensure_csr();
        let n = g.node_count();
        prepare(&mut ws.parent, n, u32::MAX);
        let mut flow = 0u64;
        while flow < limit {
            ws.parent.fill(u32::MAX);
            ws.queue.clear();
            ws.queue.push(s as u32);
            let mut head = 0;
            let mut reached = false;
            'bfs: while head < ws.queue.len() {
                let u = ws.queue[head] as usize;
                head += 1;
                for &arc in g.arcs_from(u) {
                    let v = g.arc_head(arc);
                    if v != s && ws.parent[v] == u32::MAX && g.residual(arc) > 0 {
                        ws.parent[v] = arc;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        ws.queue.push(v as u32);
                    }
                }
            }
            if !reached {
                break;
            }
            // bottleneck along the parent chain
            let mut aug = limit - flow;
            let mut v = t;
            while v != s {
                let arc = ws.parent[v];
                aug = aug.min(g.residual(arc));
                v = g.arc_tail(arc);
            }
            let mut v = t;
            while v != s {
                let arc = ws.parent[v];
                g.push(arc, aug);
                v = g.arc_tail(arc);
            }
            flow += aug;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "edmonds-karp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_max_flow() {
        let mut g = FlowGraph::new(6);
        g.add_arc(0, 1, 16);
        g.add_arc(0, 2, 13);
        g.add_arc(1, 2, 10);
        g.add_arc(2, 1, 4);
        g.add_arc(1, 3, 12);
        g.add_arc(3, 2, 9);
        g.add_arc(2, 4, 14);
        g.add_arc(4, 3, 7);
        g.add_arc(3, 5, 20);
        g.add_arc(4, 5, 4);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 5, u64::MAX), 23);
        assert_eq!(g.check_conservation(0, 5).unwrap(), 23);
    }

    #[test]
    fn respects_limit() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 100);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 1, 7), 7);
    }

    #[test]
    fn bottleneck_on_middle_edge() {
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 10);
        g.add_arc(1, 2, 3);
        g.add_arc(2, 3, 10);
        assert_eq!(EdmondsKarp.solve(&mut g, 0, 3, u64::MAX), 3);
    }
}
