//! BFS Ford–Fulkerson augmenting one unit at a time.
//!
//! When the question is "can the surviving subgraph carry `d` unit
//! sub-streams?", at most `d` augmentations of one unit each are needed, so
//! this solver runs in `O(d·|E|)` — this is exactly the `O(|V||E|)`-class
//! oracle the paper's complexity analysis assumes for constant `d`.

use std::collections::VecDeque;

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;

/// One BFS + one unit of flow per augmentation. Best when the demand (limit)
/// is a small constant, which is the paper's regime.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsFordFulkerson;

impl MaxFlowSolver for BfsFordFulkerson {
    fn solve(&self, g: &mut FlowGraph, s: usize, t: usize, limit: u64) -> u64 {
        if s == t {
            return limit;
        }
        let n = g.node_count();
        let mut parent_arc = vec![u32::MAX; n];
        let mut flow = 0u64;
        while flow < limit {
            parent_arc.fill(u32::MAX);
            let mut queue = VecDeque::new();
            queue.push_back(s);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &arc in g.arcs_from(u) {
                    let v = g.arc_head(arc);
                    if v != s && parent_arc[v] == u32::MAX && g.residual(arc) > 0 {
                        parent_arc[v] = arc;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !reached {
                break;
            }
            let mut v = t;
            while v != s {
                let arc = parent_arc[v];
                g.push(arc, 1);
                v = g.arc_tail(arc);
            }
            flow += 1;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "bfs-ford-fulkerson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_flow() {
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 2);
        g.add_arc(0, 2, 2);
        g.add_arc(1, 3, 2);
        g.add_arc(2, 3, 2);
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 3, u64::MAX), 4);
    }

    #[test]
    fn unit_augmentation_respects_limit() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 1_000_000);
        // would be pathological without a limit; with d=3 it's 3 BFS passes
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 1, 3), 3);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut g = FlowGraph::new(2);
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 1, 5), 0);
    }
}
