//! BFS Ford–Fulkerson augmenting one unit at a time.
//!
//! When the question is "can the surviving subgraph carry `d` unit
//! sub-streams?", at most `d` augmentations of one unit each are needed, so
//! this solver runs in `O(d·|E|)` — this is exactly the `O(|V||E|)`-class
//! oracle the paper's complexity analysis assumes for constant `d`.

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;
use crate::workspace::{prepare, Workspace};

/// One BFS + one unit of flow per augmentation. Best when the demand (limit)
/// is a small constant, which is the paper's regime.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsFordFulkerson;

impl MaxFlowSolver for BfsFordFulkerson {
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        if s == t {
            return limit;
        }
        g.ensure_csr();
        let n = g.node_count();
        prepare(&mut ws.parent, n, u32::MAX);
        let mut flow = 0u64;
        while flow < limit {
            ws.parent.fill(u32::MAX);
            ws.queue.clear();
            ws.queue.push(s as u32);
            let mut head = 0;
            let mut reached = false;
            'bfs: while head < ws.queue.len() {
                let u = ws.queue[head] as usize;
                head += 1;
                for &arc in g.arcs_from(u) {
                    let v = g.arc_head(arc);
                    if v != s && ws.parent[v] == u32::MAX && g.residual(arc) > 0 {
                        ws.parent[v] = arc;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        ws.queue.push(v as u32);
                    }
                }
            }
            if !reached {
                break;
            }
            let mut v = t;
            while v != s {
                let arc = ws.parent[v];
                g.push(arc, 1);
                v = g.arc_tail(arc);
            }
            flow += 1;
        }
        flow
    }

    fn name(&self) -> &'static str {
        "bfs-ford-fulkerson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_flow() {
        let mut g = FlowGraph::new(4);
        g.add_arc(0, 1, 2);
        g.add_arc(0, 2, 2);
        g.add_arc(1, 3, 2);
        g.add_arc(2, 3, 2);
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 3, u64::MAX), 4);
    }

    #[test]
    fn unit_augmentation_respects_limit() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 1_000_000);
        // would be pathological without a limit; with d=3 it's 3 BFS passes
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 1, 3), 3);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut g = FlowGraph::new(2);
        assert_eq!(BfsFordFulkerson.solve(&mut g, 0, 1, 5), 0);
    }
}
