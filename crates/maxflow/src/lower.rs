//! Lowering a [`netgraph::Network`] into a [`FlowGraph`].

use netgraph::{EdgeMask, GraphKind, Network, NodeId};

use crate::graph::{ArcId, FlowGraph};

/// A [`FlowGraph`] built from a [`Network`], remembering which arc realizes
/// each network edge so failure configurations can be applied cheaply.
#[derive(Clone, Debug)]
pub struct NetworkFlow {
    /// The lowered residual graph (may contain super-terminal nodes/arcs).
    pub graph: FlowGraph,
    /// For network edge `i`, `edge_arcs[i]` is its forward arc.
    pub edge_arcs: Vec<ArcId>,
    /// Flow source node index in `graph`.
    pub source: usize,
    /// Flow sink node index in `graph`.
    pub sink: usize,
    /// Super-source attachment arcs, one per source terminal, in the order
    /// given (empty when no super-source was needed).
    pub source_arcs: Vec<ArcId>,
    /// Super-sink attachment arcs, one per sink terminal, in the order given
    /// (empty when no super-sink was needed).
    pub sink_arcs: Vec<ArcId>,
}

impl NetworkFlow {
    /// Prepares the graph for one failure configuration: restores base
    /// capacities, then disables every edge that failed in `mask`.
    ///
    /// # Panics
    /// Panics if `mask.len()` differs from the number of network edges.
    pub fn apply_mask(&mut self, mask: EdgeMask) {
        assert_eq!(mask.len(), self.edge_arcs.len(), "mask/edge count mismatch");
        self.graph.reset();
        for (i, &arc) in self.edge_arcs.iter().enumerate() {
            if !mask.alive(i) {
                self.graph.disable(arc);
            }
        }
    }

    /// Prepares the graph with every edge alive.
    pub fn apply_all_alive(&mut self) {
        self.graph.reset();
    }

    /// Prepares the graph with every network edge disabled (super-terminal
    /// arcs, which cannot fail, keep their base capacity). The starting state
    /// of permutation-style samplers that revive links one at a time with
    /// [`revive_edge`](Self::revive_edge).
    pub fn apply_none_alive(&mut self) {
        self.graph.reset();
        for &arc in &self.edge_arcs {
            self.graph.disable(arc);
        }
    }

    /// Revives network edge `i`, restoring its base capacity in place while
    /// keeping all flow currently routed through the rest of the graph —
    /// follow-up solves only augment the *additional* flow the revived link
    /// enables. The edge must currently be disabled and flow-free, which
    /// holds for any edge not yet revived since the last
    /// [`apply_mask`](Self::apply_mask) / [`apply_none_alive`](Self::apply_none_alive).
    ///
    /// # Panics
    /// Panics if `i` is not a network edge index.
    pub fn revive_edge(&mut self, i: usize) {
        self.graph.revive(self.edge_arcs[i]);
    }

    /// Bitmask of network edges carrying nonzero flow after a *successful*
    /// feasibility solve.
    ///
    /// Because s–t flow feasibility is monotone in the set of alive links,
    /// the returned support is a reusable certificate: any configuration
    /// whose alive set contains it admits the same flow, with no further
    /// solve. Only meaningful while the routed flow is still in the graph
    /// (i.e. before the next [`apply_mask`](Self::apply_mask)).
    ///
    /// # Panics
    /// Panics if the network has more than 64 edges.
    pub fn flow_support_bits(&self) -> u64 {
        assert!(
            self.edge_arcs.len() <= 64,
            "support certificates need <= 64 edges"
        );
        let mut bits = 0u64;
        for (i, &arc) in self.edge_arcs.iter().enumerate() {
            if self.graph.net_flow(arc) != 0 {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// The saturated s–t cut witnessed by a *failed* (exhausted) solve, as
    /// `(crossing, fixed)`: the bitmask of network edges crossing the cut and
    /// the total base capacity of super-terminal arcs crossing it (arcs that
    /// are not network edges and cannot fail). Returns `None` when the sink
    /// is still reachable in the residual graph (the solve was not run to
    /// completion).
    ///
    /// The cut is the residual-reachability partition. Flow is bounded by
    /// the capacity of any cut, so for the same terminal setup *every*
    /// configuration satisfies `max_flow ≤ fixed + Σ capacity(e)` over its
    /// alive edges `e` in `crossing` — a reusable infeasibility certificate
    /// for any configuration whose bound falls below the required flow. A
    /// directed edge oriented sink-side → source-side contributes no cut
    /// capacity and is excluded; undirected edges cross in either
    /// orientation.
    ///
    /// # Panics
    /// Panics if the network has more than 64 edges.
    pub fn residual_cut_bits(&self) -> Option<(u64, u64)> {
        assert!(
            self.edge_arcs.len() <= 64,
            "cut certificates need <= 64 edges"
        );
        let seen = crate::mincut::residual_reachable(&self.graph, self.source);
        if seen[self.sink] {
            return None;
        }
        let mut bits = 0u64;
        for (i, &arc) in self.edge_arcs.iter().enumerate() {
            let u = self.graph.arc_tail(arc.0);
            let v = self.graph.arc_head(arc.0);
            // forward orientation S -> T always crosses; the reverse
            // orientation only carries capacity for undirected edges
            // (their reverse arc has nonzero base capacity).
            let crosses =
                (seen[u] && !seen[v]) || (!seen[u] && seen[v] && self.graph.base_of(arc.0 ^ 1) > 0);
            if crosses {
                bits |= 1 << i;
            }
        }
        let mut fixed = 0u64;
        for &arc in self.source_arcs.iter().chain(&self.sink_arcs) {
            let u = self.graph.arc_tail(arc.0);
            let v = self.graph.arc_head(arc.0);
            if seen[u] && !seen[v] {
                fixed += self.graph.base_of(arc.0);
            }
        }
        Some((bits, fixed))
    }
}

fn lower_edges(net: &Network, g: &mut FlowGraph) -> Vec<ArcId> {
    net.edges()
        .iter()
        .map(|e| match net.kind() {
            GraphKind::Directed => g.add_arc(e.src.index(), e.dst.index(), e.capacity),
            GraphKind::Undirected => g.add_undirected(e.src.index(), e.dst.index(), e.capacity),
        })
        .collect()
}

/// Lowers `net` for a plain `s → t` flow query.
pub fn build_flow(net: &Network, s: NodeId, t: NodeId) -> NetworkFlow {
    let mut graph = FlowGraph::new(net.node_count());
    let edge_arcs = lower_edges(net, &mut graph);
    graph.ensure_csr();
    NetworkFlow {
        graph,
        edge_arcs,
        source: s.index(),
        sink: t.index(),
        source_arcs: Vec::new(),
        sink_arcs: Vec::new(),
    }
}

/// Lowers `net` for a multi-terminal query: a super-source feeds each
/// `(node, supply)` in `sources`, and each `(node, demand)` in `sinks` drains
/// into a super-sink. With a single terminal on a side, no super node is added
/// on that side (the plain node is used and no capacity bound is imposed).
///
/// The per-terminal arcs are returned in `source_arcs` / `sink_arcs`, so
/// callers can retune the supplies/demands with
/// [`FlowGraph::set_base_capacity`] between queries — this is how the
/// realization-table construction of Section III-C iterates over assignments
/// without rebuilding the graph.
pub fn build_flow_multi(
    net: &Network,
    sources: &[(NodeId, u64)],
    sinks: &[(NodeId, u64)],
) -> NetworkFlow {
    assert!(
        !sources.is_empty() && !sinks.is_empty(),
        "need at least one source and sink"
    );
    let mut graph = FlowGraph::new(net.node_count());
    let edge_arcs = lower_edges(net, &mut graph);
    let mut source_arcs = Vec::new();
    let mut sink_arcs = Vec::new();

    let source = if sources.len() == 1 && sinks.iter().all(|&(n, _)| n != sources[0].0) {
        sources[0].0.index()
    } else {
        let ss = graph.add_node();
        for &(n, supply) in sources {
            source_arcs.push(graph.add_arc(ss, n.index(), supply));
        }
        ss
    };
    let sink = if sinks.len() == 1 && sinks[0].0.index() != source {
        sinks[0].0.index()
    } else {
        let st = graph.add_node();
        for &(n, demand) in sinks {
            sink_arcs.push(graph.add_arc(n.index(), st, demand));
        }
        st
    };
    graph.ensure_csr();
    NetworkFlow {
        graph,
        edge_arcs,
        source,
        sink,
        source_arcs,
        sink_arcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::MaxFlowSolver;
    use crate::Dinic;
    use netgraph::NetworkBuilder;

    fn diamond(kind: GraphKind) -> Network {
        let mut b = NetworkBuilder::new(kind);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 2, 0.1).unwrap();
        b.add_edge(n[1], n[3], 2, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn directed_lowering_flows() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        nf.apply_all_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 4);
    }

    #[test]
    fn undirected_lowering_flows_backwards_too() {
        let net = diamond(GraphKind::Undirected);
        let mut nf = build_flow(&net, NodeId(3), NodeId(0));
        nf.apply_all_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 4);
    }

    #[test]
    fn mask_disables_edges() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        // kill edge 0 (s->a): only the b-path remains
        nf.apply_mask(EdgeMask::from_bits(0b1110, 4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 2);
        // all edges dead
        nf.apply_mask(EdgeMask::all_failed(4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 0);
        // reuse with everything alive again
        nf.apply_mask(EdgeMask::all_alive(4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 4);
    }

    #[test]
    fn multi_sink_demands_bound_flow() {
        let net = diamond(GraphKind::Directed);
        // demand 1 at node 1 and 2 at node 2: total 3, but node2 can only get 2
        let mut nf = build_flow_multi(&net, &[(NodeId(0), 10)], &[(NodeId(1), 1), (NodeId(2), 2)]);
        nf.apply_all_alive();
        let f = Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX);
        assert_eq!(f, 3);
    }

    #[test]
    fn retuning_terminal_arcs() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow_multi(&net, &[(NodeId(0), 10)], &[(NodeId(1), 2), (NodeId(2), 2)]);
        nf.apply_all_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 4);
        // retarget to (0, 1): only one unit may drain via node 2
        assert!(
            nf.source_arcs.is_empty(),
            "single plain source, no super node"
        );
        let sink_arcs: Vec<ArcId> = nf.sink_arcs.clone();
        assert_eq!(sink_arcs.len(), 2);
        nf.graph.set_base_capacity(sink_arcs[0], 0);
        nf.graph.set_base_capacity(sink_arcs[1], 1);
        nf.apply_all_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 1);
    }

    #[test]
    fn feasible_support_is_a_superset_certificate() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        nf.apply_all_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, 2), 2);
        let support = nf.flow_support_bits();
        assert_ne!(support, 0);
        // the support itself, run as a configuration, admits the demand
        nf.apply_mask(EdgeMask::from_bits(support, 4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, 2), 2);
    }

    #[test]
    fn infeasible_cut_witnesses_the_bottleneck() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        // edges 0 (s->a) and 3 (b->t) dead: no flow at all
        nf.apply_mask(EdgeMask::from_bits(0b0110, 4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 0);
        let (crossing, fixed) = nf.residual_cut_bits().expect("sink unreachable");
        // the cut separates s from t using only dead edges
        assert_eq!(crossing & 0b0110, 0, "alive crossing capacity must be zero");
        assert_ne!(crossing, 0);
        assert_eq!(fixed, 0, "plain s-t lowering has no super-terminal arcs");
    }

    #[test]
    fn unexhausted_solve_yields_no_cut() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        nf.apply_all_alive();
        // early exit at 1 unit: residual sink still reachable
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, 1), 1);
        assert_eq!(nf.residual_cut_bits(), None);
    }

    #[test]
    fn undirected_cut_crosses_both_orientations() {
        // s - a declared both ways: kill the path and check both edges appear
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[2], n[1], 1, 0.1).unwrap(); // declared toward the middle
        let net = b.build();
        let mut nf = build_flow(&net, NodeId(0), NodeId(2));
        nf.apply_mask(EdgeMask::from_bits(0b01, 2)); // edge 1 dead
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 0);
        let (crossing, _) = nf.residual_cut_bits().expect("sink unreachable");
        assert!(
            crossing & 0b10 != 0,
            "the dead reverse-declared edge crosses"
        );
    }

    #[test]
    fn super_terminal_arcs_count_toward_the_cut() {
        let net = diamond(GraphKind::Directed);
        // super-source supplies nodes 0 and 1; kill node 0's outgoing edges
        let mut nf = build_flow_multi(&net, &[(NodeId(0), 1), (NodeId(1), 1)], &[(NodeId(3), 10)]);
        nf.apply_mask(EdgeMask::from_bits(0b1100, 4));
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 1);
        let (crossing, fixed) = nf.residual_cut_bits().expect("sink unreachable");
        assert_eq!(crossing, 0b0011, "node 0's dead edges cross the cut");
        assert_eq!(fixed, 1, "the saturated supply arc to node 1 crosses too");
    }

    #[test]
    fn revive_edges_augments_incrementally() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow(&net, NodeId(0), NodeId(3));
        nf.apply_none_alive();
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 0);
        // revive the a-path one link at a time; flow only appears once the
        // path is complete, and each solve augments on the warm residual
        nf.revive_edge(0); // s->a
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 0);
        nf.revive_edge(2); // a->t
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 2);
        // the b-path adds two more units on top of the retained flow
        nf.revive_edge(1);
        nf.revive_edge(3);
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 2);
    }

    #[test]
    fn multi_source_single_sink() {
        let net = diamond(GraphKind::Directed);
        let mut nf = build_flow_multi(&net, &[(NodeId(1), 1), (NodeId(2), 1)], &[(NodeId(3), 10)]);
        nf.apply_all_alive();
        // sinks.len()==1 and its node != super source, so plain node used:
        // flow bounded by the two supplies
        assert_eq!(Dinic.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX), 2);
    }
}
