//! Residual flow graph with paired arcs and cheap reset.

/// Handle to a forward arc in a [`FlowGraph`]; its reverse arc is implicit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ArcId(pub u32);

impl ArcId {
    #[inline]
    fn fwd(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn rev(self) -> usize {
        self.0 as usize ^ 1
    }
}

/// A residual graph: arcs are stored in forward/reverse pairs (`2k` and
/// `2k ^ 1`), so pushing flow along one arc frees capacity on its partner.
///
/// The graph separates **base** capacities (the configuration-independent
/// construction) from **residual** capacities (mutated during a solve), so the
/// exponential configuration sweeps of the reliability algorithms can reuse a
/// single allocation:
///
/// 1. [`FlowGraph::reset`] — restore residual = base;
/// 2. [`FlowGraph::disable`] — zero out the arcs of failed links;
/// 3. run a solver.
#[derive(Clone, Debug)]
pub struct FlowGraph {
    head: Vec<u32>,
    cap: Vec<u64>,
    base: Vec<u64>,
    adj: Vec<Vec<u32>>,
}

impl FlowGraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            head: Vec::new(),
            cap: Vec::new(),
            base: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of arc pairs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.head.len() / 2
    }

    fn push_pair(&mut self, u: usize, v: usize, cap_uv: u64, cap_vu: u64) -> ArcId {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "arc endpoint out of range"
        );
        let id = self.head.len() as u32;
        self.head.push(v as u32);
        self.head.push(u as u32);
        self.cap.push(cap_uv);
        self.cap.push(cap_vu);
        self.base.push(cap_uv);
        self.base.push(cap_vu);
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        ArcId(id)
    }

    /// Adds a directed arc `u → v` with the given capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: u64) -> ArcId {
        self.push_pair(u, v, cap, 0)
    }

    /// Adds an undirected edge `u — v`: capacity `cap` in both directions.
    pub fn add_undirected(&mut self, u: usize, v: usize, cap: u64) -> ArcId {
        self.push_pair(u, v, cap, cap)
    }

    /// Overwrites the *base* forward capacity of `a` (reverse base unchanged);
    /// takes effect at the next [`reset`](FlowGraph::reset). Used to retarget
    /// super-terminal demands between assignment queries.
    pub fn set_base_capacity(&mut self, a: ArcId, cap: u64) {
        self.base[a.fwd()] = cap;
    }

    /// Restores every residual capacity to its base value.
    pub fn reset(&mut self) {
        self.cap.copy_from_slice(&self.base);
    }

    /// Zeroes the residual capacity of `a` in both directions (a failed link).
    /// Call after [`reset`](FlowGraph::reset), before solving.
    pub fn disable(&mut self, a: ArcId) {
        self.cap[a.fwd()] = 0;
        self.cap[a.rev()] = 0;
    }

    /// Net flow currently routed through forward arc `a`
    /// (positive = along the arc's forward direction).
    pub fn net_flow(&self, a: ArcId) -> i64 {
        self.base[a.fwd()] as i64 - self.cap[a.fwd()] as i64
    }

    // -- internal accessors used by the solvers ----------------------------

    #[inline]
    pub(crate) fn arcs_from(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    #[inline]
    pub(crate) fn base_of(&self, arc: u32) -> u64 {
        self.base[arc as usize]
    }

    #[inline]
    pub(crate) fn arc_head(&self, arc: u32) -> usize {
        self.head[arc as usize] as usize
    }

    #[inline]
    pub(crate) fn arc_tail(&self, arc: u32) -> usize {
        self.head[(arc ^ 1) as usize] as usize
    }

    #[inline]
    pub(crate) fn residual(&self, arc: u32) -> u64 {
        self.cap[arc as usize]
    }

    #[inline]
    pub(crate) fn push(&mut self, arc: u32, amount: u64) {
        debug_assert!(self.cap[arc as usize] >= amount, "push exceeds residual");
        self.cap[arc as usize] -= amount;
        self.cap[(arc ^ 1) as usize] += amount;
    }

    /// Checks flow conservation at every node other than `s` and `t`, and
    /// returns the net outflow of `s`. Used by tests and debug assertions.
    pub fn check_conservation(&self, s: usize, t: usize) -> Result<u64, String> {
        let mut net = vec![0i64; self.node_count()];
        for pair in 0..self.arc_count() {
            let a = ArcId((pair * 2) as u32);
            let f = self.net_flow(a);
            let u = self.arc_tail(a.0);
            let v = self.arc_head(a.0);
            net[u] -= f;
            net[v] += f;
        }
        for (i, &x) in net.iter().enumerate() {
            if i != s && i != t && x != 0 {
                return Err(format!("conservation violated at node {i}: net {x}"));
            }
        }
        if net[s] > 0 {
            return Err(format!("source has positive inflow {}", net[s]));
        }
        Ok((-net[s]) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_pairs_are_adjacent() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        assert_eq!(a, ArcId(0));
        assert_eq!(g.arc_head(0), 1);
        assert_eq!(g.arc_head(1), 0);
        assert_eq!(g.residual(0), 5);
        assert_eq!(g.residual(1), 0);
    }

    #[test]
    fn push_moves_residual() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.push(a.0, 3);
        assert_eq!(g.residual(0), 2);
        assert_eq!(g.residual(1), 3);
        assert_eq!(g.net_flow(a), 3);
    }

    #[test]
    fn reset_restores_base() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.push(a.0, 5);
        g.reset();
        assert_eq!(g.residual(0), 5);
        assert_eq!(g.net_flow(a), 0);
    }

    #[test]
    fn disable_zeroes_both_directions() {
        let mut g = FlowGraph::new(2);
        let a = g.add_undirected(0, 1, 4);
        g.reset();
        g.disable(a);
        assert_eq!(g.residual(0), 0);
        assert_eq!(g.residual(1), 0);
        g.reset();
        assert_eq!(g.residual(0), 4);
        assert_eq!(g.residual(1), 4);
    }

    #[test]
    fn set_base_capacity_applies_on_reset() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.set_base_capacity(a, 9);
        assert_eq!(g.residual(0), 5, "takes effect only after reset");
        g.reset();
        assert_eq!(g.residual(0), 9);
    }

    #[test]
    fn undirected_net_flow_can_be_negative() {
        let mut g = FlowGraph::new(2);
        let a = g.add_undirected(0, 1, 4);
        g.push(a.0 ^ 1, 2); // push along the reverse direction
        assert_eq!(g.net_flow(a), -2);
    }

    #[test]
    fn conservation_detects_violation() {
        let mut g = FlowGraph::new(3);
        let a = g.add_arc(0, 1, 5);
        g.add_arc(1, 2, 5);
        g.push(a.0, 3); // flow enters node 1 but never leaves
        assert!(g.check_conservation(0, 2).is_err());
        assert!(g.check_conservation(0, 1).is_ok());
    }
}
