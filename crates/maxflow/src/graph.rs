//! Residual flow graph with paired arcs, cheap reset, and a CSR adjacency.

/// Handle to a forward arc in a [`FlowGraph`]; its reverse arc is implicit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ArcId(pub u32);

impl ArcId {
    #[inline]
    fn fwd(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn rev(self) -> usize {
        self.0 as usize ^ 1
    }
}

/// A residual graph: arcs are stored in forward/reverse pairs (`2k` and
/// `2k ^ 1`), so pushing flow along one arc frees capacity on its partner.
///
/// The graph separates **base** capacities (the configuration-independent
/// construction) from **residual** capacities (mutated during a solve), so the
/// exponential configuration sweeps of the reliability algorithms can reuse a
/// single allocation:
///
/// 1. [`FlowGraph::reset`] — restore residual = base;
/// 2. [`FlowGraph::disable`] — zero out the arcs of failed links;
/// 3. run a solver.
///
/// Adjacency is kept in CSR form (`csr_off`/`csr_arcs`): one flat arc array
/// indexed by per-node offsets, rebuilt lazily after topology changes. The
/// per-node arc order equals insertion order (ascending arc id), so solver
/// traversal order is identical to the former `Vec<Vec<u32>>` layout while
/// every adjacency scan walks contiguous memory.
#[derive(Clone, Debug)]
pub struct FlowGraph {
    head: Vec<u32>,
    cap: Vec<u64>,
    base: Vec<u64>,
    nodes: usize,
    csr_off: Vec<u32>,
    csr_arcs: Vec<u32>,
    csr_valid: bool,
}

impl FlowGraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            head: Vec::new(),
            cap: Vec::new(),
            base: Vec::new(),
            nodes: n,
            csr_off: Vec::new(),
            csr_arcs: Vec::new(),
            csr_valid: false,
        }
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.nodes += 1;
        self.csr_valid = false;
        self.nodes - 1
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of arc pairs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.head.len() / 2
    }

    fn push_pair(&mut self, u: usize, v: usize, cap_uv: u64, cap_vu: u64) -> ArcId {
        assert!(
            u < self.nodes && v < self.nodes,
            "arc endpoint out of range"
        );
        let id = self.head.len() as u32;
        self.head.push(v as u32);
        self.head.push(u as u32);
        self.cap.push(cap_uv);
        self.cap.push(cap_vu);
        self.base.push(cap_uv);
        self.base.push(cap_vu);
        self.csr_valid = false;
        ArcId(id)
    }

    /// Adds a directed arc `u → v` with the given capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: u64) -> ArcId {
        self.push_pair(u, v, cap, 0)
    }

    /// Adds an undirected edge `u — v`: capacity `cap` in both directions.
    pub fn add_undirected(&mut self, u: usize, v: usize, cap: u64) -> ArcId {
        self.push_pair(u, v, cap, cap)
    }

    /// (Re)builds the CSR adjacency if a topology change invalidated it.
    /// Solvers call this once at entry; afterwards [`arcs_from`](Self::arcs_from)
    /// is a contiguous slice lookup. Capacity mutations never invalidate it.
    pub fn ensure_csr(&mut self) {
        if self.csr_valid {
            return;
        }
        let n = self.nodes;
        self.csr_off.clear();
        self.csr_off.resize(n + 1, 0);
        for a in 0..self.head.len() {
            // the tail of arc `a` is the head of its partner
            let tail = self.head[a ^ 1] as usize;
            self.csr_off[tail + 1] += 1;
        }
        for u in 0..n {
            self.csr_off[u + 1] += self.csr_off[u];
        }
        self.csr_arcs.clear();
        self.csr_arcs.resize(self.head.len(), 0);
        let mut cursor: Vec<u32> = self.csr_off[..n].to_vec();
        for a in 0..self.head.len() {
            let tail = self.head[a ^ 1] as usize;
            self.csr_arcs[cursor[tail] as usize] = a as u32;
            cursor[tail] += 1;
        }
        self.csr_valid = true;
    }

    /// Overwrites the *base* forward capacity of `a` (reverse base unchanged);
    /// takes effect at the next [`reset`](FlowGraph::reset). Used to retarget
    /// super-terminal demands between assignment queries.
    pub fn set_base_capacity(&mut self, a: ArcId, cap: u64) {
        self.base[a.fwd()] = cap;
    }

    /// Restores every residual capacity to its base value.
    pub fn reset(&mut self) {
        self.cap.copy_from_slice(&self.base);
    }

    /// Zeroes the residual capacity of `a` in both directions (a failed link).
    /// Call after [`reset`](FlowGraph::reset), before solving — or, in the
    /// incremental path, after cancelling any flow the arc pair carries.
    pub fn disable(&mut self, a: ArcId) {
        self.cap[a.fwd()] = 0;
        self.cap[a.rev()] = 0;
    }

    /// Restores the residual capacity of a [`disable`](Self::disable)d arc to
    /// its base values in place (a revived link). The pair must carry no flow,
    /// which holds for any arc disabled while flow-free.
    pub fn revive(&mut self, a: ArcId) {
        debug_assert!(
            self.cap[a.fwd()] == 0 && self.cap[a.rev()] == 0,
            "revive of a non-disabled arc"
        );
        self.cap[a.fwd()] = self.base[a.fwd()];
        self.cap[a.rev()] = self.base[a.rev()];
    }

    /// Net flow currently routed through forward arc `a`
    /// (positive = along the arc's forward direction).
    ///
    /// A disabled pair (both residuals zero) carries no flow by construction
    /// and reports zero, so flow supports and conservation checks stay exact
    /// under failure masks.
    pub fn net_flow(&self, a: ArcId) -> i64 {
        if self.cap[a.fwd()] == 0 && self.cap[a.rev()] == 0 {
            return 0;
        }
        self.base[a.fwd()] as i64 - self.cap[a.fwd()] as i64
    }

    /// Net flow currently leaving node `s`, skipping disabled pairs. This is
    /// the value of the maintained flow when `s` is the source; the
    /// incremental oracle recomputes it after repairs instead of tracking
    /// deltas. Requires a built CSR (any solver call builds it).
    pub fn source_outflow(&self, s: usize) -> u64 {
        let mut net = 0i64;
        for &arc in self.arcs_from(s) {
            let a = arc as usize;
            let p = (arc ^ 1) as usize;
            if self.cap[a] == 0 && self.cap[p] == 0 {
                continue; // disabled pair: no flow
            }
            net += self.base[a] as i64 - self.cap[a] as i64;
        }
        net.max(0) as u64
    }

    // -- internal accessors used by the solvers ----------------------------

    #[inline]
    pub(crate) fn arcs_from(&self, u: usize) -> &[u32] {
        debug_assert!(self.csr_valid, "ensure_csr must run before adjacency scans");
        &self.csr_arcs[self.csr_off[u] as usize..self.csr_off[u + 1] as usize]
    }

    #[inline]
    pub(crate) fn base_of(&self, arc: u32) -> u64 {
        self.base[arc as usize]
    }

    #[inline]
    pub(crate) fn arc_head(&self, arc: u32) -> usize {
        self.head[arc as usize] as usize
    }

    #[inline]
    pub(crate) fn arc_tail(&self, arc: u32) -> usize {
        self.head[(arc ^ 1) as usize] as usize
    }

    #[inline]
    pub(crate) fn residual(&self, arc: u32) -> u64 {
        self.cap[arc as usize]
    }

    /// Net flow along arc `arc` (in its own direction), zero for disabled
    /// pairs. Companion to [`net_flow`](Self::net_flow) for raw arc ids.
    #[inline]
    pub(crate) fn flow_along(&self, arc: u32) -> i64 {
        let a = arc as usize;
        let p = (arc ^ 1) as usize;
        if self.cap[a] == 0 && self.cap[p] == 0 {
            return 0;
        }
        self.base[a] as i64 - self.cap[a] as i64
    }

    #[inline]
    pub(crate) fn push(&mut self, arc: u32, amount: u64) {
        debug_assert!(self.cap[arc as usize] >= amount, "push exceeds residual");
        self.cap[arc as usize] -= amount;
        self.cap[(arc ^ 1) as usize] += amount;
    }

    /// Checks flow conservation at every node other than `s` and `t`, and
    /// returns the net outflow of `s`. Used by tests and debug assertions.
    pub fn check_conservation(&self, s: usize, t: usize) -> Result<u64, String> {
        let mut net = vec![0i64; self.node_count()];
        for pair in 0..self.arc_count() {
            let a = ArcId((pair * 2) as u32);
            let f = self.net_flow(a);
            let u = self.arc_tail(a.0);
            let v = self.arc_head(a.0);
            net[u] -= f;
            net[v] += f;
        }
        for (i, &x) in net.iter().enumerate() {
            if i != s && i != t && x != 0 {
                return Err(format!("conservation violated at node {i}: net {x}"));
            }
        }
        if net[s] > 0 {
            return Err(format!("source has positive inflow {}", net[s]));
        }
        Ok((-net[s]) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_pairs_are_adjacent() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        assert_eq!(a, ArcId(0));
        assert_eq!(g.arc_head(0), 1);
        assert_eq!(g.arc_head(1), 0);
        assert_eq!(g.residual(0), 5);
        assert_eq!(g.residual(1), 0);
    }

    #[test]
    fn push_moves_residual() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.push(a.0, 3);
        assert_eq!(g.residual(0), 2);
        assert_eq!(g.residual(1), 3);
        assert_eq!(g.net_flow(a), 3);
    }

    #[test]
    fn reset_restores_base() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.push(a.0, 5);
        g.reset();
        assert_eq!(g.residual(0), 5);
        assert_eq!(g.net_flow(a), 0);
    }

    #[test]
    fn disable_zeroes_both_directions() {
        let mut g = FlowGraph::new(2);
        let a = g.add_undirected(0, 1, 4);
        g.reset();
        g.disable(a);
        assert_eq!(g.residual(0), 0);
        assert_eq!(g.residual(1), 0);
        g.reset();
        assert_eq!(g.residual(0), 4);
        assert_eq!(g.residual(1), 4);
    }

    #[test]
    fn revive_restores_base_in_place() {
        let mut g = FlowGraph::new(2);
        let a = g.add_undirected(0, 1, 4);
        g.reset();
        g.disable(a);
        g.revive(a);
        assert_eq!(g.residual(0), 4);
        assert_eq!(g.residual(1), 4);
    }

    #[test]
    fn disabled_arc_reports_zero_flow() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.disable(a);
        assert_eq!(g.net_flow(a), 0, "a dead link carries no flow");
    }

    #[test]
    fn set_base_capacity_applies_on_reset() {
        let mut g = FlowGraph::new(2);
        let a = g.add_arc(0, 1, 5);
        g.set_base_capacity(a, 9);
        assert_eq!(g.residual(0), 5, "takes effect only after reset");
        g.reset();
        assert_eq!(g.residual(0), 9);
    }

    #[test]
    fn undirected_net_flow_can_be_negative() {
        let mut g = FlowGraph::new(2);
        let a = g.add_undirected(0, 1, 4);
        g.push(a.0 ^ 1, 2); // push along the reverse direction
        assert_eq!(g.net_flow(a), -2);
    }

    #[test]
    fn conservation_detects_violation() {
        let mut g = FlowGraph::new(3);
        let a = g.add_arc(0, 1, 5);
        g.add_arc(1, 2, 5);
        g.push(a.0, 3); // flow enters node 1 but never leaves
        assert!(g.check_conservation(0, 2).is_err());
        assert!(g.check_conservation(0, 1).is_ok());
    }

    #[test]
    fn csr_matches_insertion_order() {
        let mut g = FlowGraph::new(3);
        g.add_arc(0, 1, 1); // arcs 0 (0->1), 1 (1->0)
        g.add_arc(0, 2, 1); // arcs 2 (0->2), 3 (2->0)
        g.add_arc(1, 2, 1); // arcs 4 (1->2), 5 (2->1)
        g.ensure_csr();
        assert_eq!(g.arcs_from(0), &[0, 2]);
        assert_eq!(g.arcs_from(1), &[1, 4]);
        assert_eq!(g.arcs_from(2), &[3, 5]);
    }

    #[test]
    fn csr_rebuilds_after_add_node() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 1);
        g.ensure_csr();
        let v = g.add_node();
        g.add_arc(1, v, 1);
        g.ensure_csr();
        assert_eq!(g.arcs_from(1), &[1, 2]);
        assert_eq!(g.arcs_from(v), &[3]);
    }

    #[test]
    fn source_outflow_skips_disabled_pairs() {
        let mut g = FlowGraph::new(3);
        let a = g.add_arc(0, 1, 5);
        let b = g.add_arc(0, 2, 7);
        g.ensure_csr();
        g.push(a.0, 3);
        g.disable(b);
        assert_eq!(g.source_outflow(0), 3);
    }
}
