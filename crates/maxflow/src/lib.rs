//! # maxflow — the max-flow oracle substrate
//!
//! The reliability algorithms decide, for every failure configuration, whether
//! the surviving subgraph admits an s–t flow of value ≥ `d`. This crate is
//! that oracle. It provides:
//!
//! * [`FlowGraph`] — a mutable residual graph with paired forward/backward
//!   arcs, cheap capacity reset (so one graph is reused across the exponential
//!   configuration sweep without reallocation), and per-network-edge arc
//!   handles for masking out failed links;
//! * [`build_flow`] / [`build_flow_multi`] — lowering from a
//!   [`netgraph::Network`] (with optional super-source/super-sink terminals,
//!   used for the per-assignment multi-sink demands of Section III-C);
//! * five solvers behind the [`MaxFlowSolver`] trait — [`Dinic`] (default),
//!   [`EdmondsKarp`], [`BfsFordFulkerson`] (one augmenting path per unit of
//!   flow, the `O(d·|E|)` choice matching the paper's constant-`d` analysis),
//!   [`PushRelabel`] (FIFO with gap relabelling), and [`CapacityScaling`];
//! * all solvers support an early-exit `limit`: augmentation stops as soon as
//!   `limit` units are routed, since the reliability calculation only ever
//!   asks "is max-flow ≥ d?";
//! * [`min_cut`] — minimum s–t cut extraction from a residual graph;
//! * monotonicity witnesses — after a solve, [`NetworkFlow::flow_support_bits`]
//!   (feasible: the edges carrying flow) and
//!   [`NetworkFlow::residual_cut_bits`] (infeasible: the edges crossing the
//!   saturated cut) turn one solver call into a certificate that classifies
//!   whole families of related failure configurations without solving again.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity_scaling;
pub mod dinic;
pub mod edmonds_karp;
pub mod ford_fulkerson;
pub mod graph;
pub mod incremental;
pub mod lower;
pub mod mincut;
pub mod prober;
pub mod push_relabel;
pub mod solver;
pub mod workspace;

pub use capacity_scaling::CapacityScaling;
pub use dinic::Dinic;
pub use edmonds_karp::EdmondsKarp;
pub use ford_fulkerson::BfsFordFulkerson;
pub use graph::{ArcId, FlowGraph};
pub use incremental::{RepairStats, WarmState};
pub use lower::{build_flow, build_flow_multi, NetworkFlow};
pub use mincut::min_cut;
pub use prober::CutProber;
pub use push_relabel::PushRelabel;
pub use solver::{max_flow_at_least, MaxFlowSolver, SolverKind};
pub use workspace::Workspace;
