//! Reusable solver scratch space.
//!
//! Every solver needs per-node scratch (BFS levels, parent arcs, cursors,
//! queues). Allocating those inside `solve` put a handful of heap
//! allocations on the hot path of the exponential configuration sweeps. A
//! [`Workspace`] owns all of them; an oracle keeps one alive across millions
//! of solves and passes it to
//! [`MaxFlowSolver::solve_ws`](crate::MaxFlowSolver::solve_ws), so a solve
//! allocates nothing once the buffers have grown to the graph's node count.

use std::collections::VecDeque;

/// Reusable scratch buffers shared by all bundled solvers and the
/// incremental repair routines. Cheap to create empty; buffers grow on first
/// use and are retained (and reused) afterwards.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// BFS levels (Dinic).
    pub(crate) level: Vec<u32>,
    /// Per-node arc cursor (Dinic's `iter`, push-relabel's `current`).
    pub(crate) cursor: Vec<usize>,
    /// Parent arc per node (BFS augmenting-path solvers, repair BFS).
    pub(crate) parent: Vec<u32>,
    /// Plain FIFO for bounded BFS passes (each node enqueued at most once).
    pub(crate) queue: Vec<u32>,
    /// Current-path arc stack (Dinic DFS) / source-arc snapshot (push-relabel).
    pub(crate) path: Vec<u32>,
    /// Per-node excess (push-relabel).
    pub(crate) excess: Vec<u64>,
    /// Per-node height (push-relabel).
    pub(crate) height: Vec<usize>,
    /// Nodes per height, `2n + 1` slots (push-relabel gap heuristic).
    pub(crate) count: Vec<usize>,
    /// Unbounded FIFO (push-relabel active set: nodes can re-enter).
    pub(crate) deque: VecDeque<u32>,
}

impl Workspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resizes a scratch vector to `n` slots filled with `fill`. `resize` keeps
/// the backing allocation when shrinking and `fill` rewrites live slots, so
/// after the first growth this never touches the allocator.
#[inline]
pub(crate) fn prepare<T: Copy>(buf: &mut Vec<T>, n: usize, fill: T) {
    buf.resize(n, fill);
    buf.fill(fill);
}
