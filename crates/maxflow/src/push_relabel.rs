//! FIFO push-relabel with the gap heuristic.
//!
//! Push-relabel computes the full maximum flow; the early-exit `limit` is
//! applied to the returned value only (the preflow cannot stop mid-way and
//! still be a valid flow). It is included as the asymptotically strongest
//! comparator (`O(|V|³)`) for the solver-ablation bench.

use crate::graph::FlowGraph;
use crate::solver::MaxFlowSolver;
use crate::workspace::{prepare, Workspace};

/// FIFO push-relabel with gap relabelling.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushRelabel;

impl MaxFlowSolver for PushRelabel {
    fn solve_ws(
        &self,
        g: &mut FlowGraph,
        s: usize,
        t: usize,
        limit: u64,
        ws: &mut Workspace,
    ) -> u64 {
        if s == t {
            return limit;
        }
        g.ensure_csr();
        let n = g.node_count();
        prepare(&mut ws.height, n, 0);
        prepare(&mut ws.excess, n, 0);
        prepare(&mut ws.cursor, n, 0);
        prepare(&mut ws.count, 2 * n + 1, 0); // nodes per height
        let height = &mut ws.height;
        let excess = &mut ws.excess;
        let current = &mut ws.cursor;
        let count = &mut ws.count;
        let active = &mut ws.deque;
        active.clear();

        height[s] = n;
        count[0] = n - 1;
        count[n] += 1;

        // saturate source arcs (snapshot them: pushing mutates g)
        ws.path.clear();
        ws.path.extend_from_slice(g.arcs_from(s));
        for i in 0..ws.path.len() {
            let arc = ws.path[i];
            let cap = g.residual(arc);
            if cap > 0 {
                let v = g.arc_head(arc);
                g.push(arc, cap);
                excess[v] += cap;
                if v != t && v != s && excess[v] == cap {
                    active.push_back(v as u32);
                }
            }
        }

        while let Some(u) = active.pop_front() {
            let u = u as usize;
            // discharge u completely
            while excess[u] > 0 {
                if current[u] == g.arcs_from(u).len() {
                    // relabel
                    let old_h = height[u];
                    let mut min_h = usize::MAX;
                    for &arc in g.arcs_from(u) {
                        if g.residual(arc) > 0 {
                            min_h = min_h.min(height[g.arc_head(arc)]);
                        }
                    }
                    if min_h == usize::MAX {
                        break; // no admissible arcs ever; excess is stuck
                    }
                    count[old_h] -= 1;
                    height[u] = min_h + 1;
                    count[height[u]] += 1;
                    current[u] = 0;
                    // gap heuristic: heights (old_h, n) became unreachable
                    if count[old_h] == 0 && old_h < n {
                        for v in 0..n {
                            if v != s && height[v] > old_h && height[v] <= n {
                                count[height[v]] -= 1;
                                height[v] = n + 1;
                                count[height[v]] += 1;
                            }
                        }
                    }
                    continue;
                }
                let arc = g.arcs_from(u)[current[u]];
                let v = g.arc_head(arc);
                if g.residual(arc) > 0 && height[u] == height[v] + 1 {
                    let amount = excess[u].min(g.residual(arc));
                    g.push(arc, amount);
                    excess[u] -= amount;
                    let was_inactive = excess[v] == 0;
                    excess[v] += amount;
                    if was_inactive && v != s && v != t {
                        active.push_back(v as u32);
                    }
                } else {
                    current[u] += 1;
                }
            }
        }
        excess[t].min(limit)
    }

    fn name(&self) -> &'static str {
        "push-relabel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_max_flow() {
        let mut g = FlowGraph::new(6);
        g.add_arc(0, 1, 16);
        g.add_arc(0, 2, 13);
        g.add_arc(1, 2, 10);
        g.add_arc(2, 1, 4);
        g.add_arc(1, 3, 12);
        g.add_arc(3, 2, 9);
        g.add_arc(2, 4, 14);
        g.add_arc(4, 3, 7);
        g.add_arc(3, 5, 20);
        g.add_arc(4, 5, 4);
        assert_eq!(PushRelabel.solve(&mut g, 0, 5, u64::MAX), 23);
    }

    #[test]
    fn limit_caps_return_value() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 10);
        assert_eq!(PushRelabel.solve(&mut g, 0, 1, 4), 4);
    }

    #[test]
    fn handles_dead_end_excess() {
        // excess pushed into node 1 can only return to s
        let mut g = FlowGraph::new(3);
        g.add_arc(0, 1, 10);
        g.add_arc(1, 2, 3);
        assert_eq!(PushRelabel.solve(&mut g, 0, 2, u64::MAX), 3);
    }

    #[test]
    fn two_node_direct() {
        let mut g = FlowGraph::new(2);
        g.add_arc(0, 1, 5);
        assert_eq!(PushRelabel.solve(&mut g, 0, 1, u64::MAX), 5);
    }

    #[test]
    fn star_graph() {
        let mut g = FlowGraph::new(5);
        for v in 1..4 {
            g.add_arc(0, v, 2);
            g.add_arc(v, 4, 1);
        }
        assert_eq!(PushRelabel.solve(&mut g, 0, 4, u64::MAX), 3);
    }
}
