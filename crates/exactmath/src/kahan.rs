//! Compensated floating-point summation (Neumaier's variant of Kahan).
//!
//! The reliability accumulators add up to `2^|E|` tiny products; plain
//! sequential summation loses up to `log2(n)` bits of precision. Neumaier
//! summation keeps a running compensation term and handles the case where the
//! addend is larger than the running sum (which Kahan's original misses).

/// A running compensated sum.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// Starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Merges another compensated sum into this one (for parallel reduce).
    pub fn merge(&mut self, other: NeumaierSum) {
        self.add(other.sum);
        self.comp += other.comp;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.comp
    }

    /// The internal `(sum, compensation)` state, for checkpointing a running
    /// accumulation. Restoring via [`NeumaierSum::from_parts`] and continuing
    /// reproduces the uninterrupted sequential sum bit for bit.
    pub fn parts(&self) -> (f64, f64) {
        (self.sum, self.comp)
    }

    /// Rebuilds an accumulator from a saved [`NeumaierSum::parts`] state.
    pub fn from_parts(sum: f64, comp: f64) -> Self {
        NeumaierSum { sum, comp }
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = NeumaierSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_simple_values() {
        let s: NeumaierSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.total(), 6.0);
    }

    #[test]
    fn classic_neumaier_case() {
        // 1 + 1e100 + 1 - 1e100 == 2 exactly with compensation, 0 without
        let s: NeumaierSum = [1.0, 1e100, 1.0, -1e100].into_iter().collect();
        assert_eq!(s.total(), 2.0);
    }

    #[test]
    fn beats_naive_on_many_small_terms() {
        let n = 1_000_000;
        let tiny = 1e-10f64;
        let mut naive = 1.0f64;
        let mut comp = NeumaierSum::new();
        comp.add(1.0);
        for _ in 0..n {
            naive += tiny;
            comp.add(tiny);
        }
        let exact = 1.0 + n as f64 * tiny;
        assert!((comp.total() - exact).abs() <= (naive - exact).abs());
        assert!((comp.total() - exact).abs() < 1e-12);
    }

    #[test]
    fn parts_roundtrip_is_bit_identical() {
        let xs: Vec<f64> = (0..100).map(|i| 1.0 / (i as f64 + 3.0)).collect();
        let full: NeumaierSum = xs.iter().copied().collect();
        let mut head = NeumaierSum::new();
        for &x in &xs[..37] {
            head.add(x);
        }
        let (sum, comp) = head.parts();
        let mut resumed = NeumaierSum::from_parts(sum, comp);
        for &x in &xs[37..] {
            resumed.add(x);
        }
        assert_eq!(resumed.total().to_bits(), full.total().to_bits());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: NeumaierSum = xs.iter().copied().collect();
        let mut a = NeumaierSum::new();
        let mut b = NeumaierSum::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(b);
        assert!((a.total() - seq.total()).abs() < 1e-12);
    }
}
