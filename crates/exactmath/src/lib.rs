//! # exactmath — exact arithmetic substrate
//!
//! Reliability values are sums of `2^|E|` products of link probabilities.
//! Floating point handles this well in practice, but *proving* the optimized
//! algorithms correct requires an exact reference: if every `p(e)` is
//! rational, the reliability is rational and can be computed without error.
//! This crate provides that reference arithmetic, built from scratch:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (schoolbook
//!   multiplication, binary long division, binary GCD);
//! * [`BigInt`] — sign + magnitude;
//! * [`BigRational`] — always-reduced fractions, with exact conversion from
//!   `f64` (every finite `f64` is a dyadic rational) and accurate conversion
//!   back to `f64`;
//! * [`NeumaierSum`] — compensated `f64` summation used by the floating-point
//!   reliability accumulators, where the number of summands is exponential.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod biguint;
pub mod kahan;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use kahan::NeumaierSum;
pub use rational::BigRational;
