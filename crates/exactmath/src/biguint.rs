//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, normalized so the top limb is nonzero (zero is
//! the empty limb vector). Algorithms favour simplicity and auditability over
//! asymptotics: schoolbook multiplication, binary long division, binary GCD —
//! the operand sizes in this workspace (products of at most a few dozen
//! probabilities) stay in the low thousands of bits.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; empty means zero; top limb nonzero otherwise.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(x: u64) -> Self {
        if x == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![x] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(x: u128) -> Self {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let mut v = BigUint {
            limbs: vec![lo, hi],
        };
        v.normalize();
        v
    }

    /// To `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (bit 0 is least significant).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|&w| w >> (i % 64) & 1 == 1)
    }

    /// Sets the `i`-th bit, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Number of trailing zero bits (`None` for zero).
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &w) in self.limbs.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(longer.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.limbs.len() {
            let a = longer.limbs[i];
            let b = shorter.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self << n`.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &w) in self.limbs.iter().enumerate() {
            if bit_shift == 0 {
                out[i + limb_shift] |= w;
            } else {
                out[i + limb_shift] |= w << bit_shift;
                out[i + limb_shift + 1] |= w >> (64 - bit_shift);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self >> n`.
    pub fn shr(&self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut w = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    w |= next << (64 - bit_shift);
                }
            }
            out.push(w);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `(self / divisor, self % divisor)` by binary long division.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        let n = self.bits();
        let mut quot = BigUint::zero();
        let mut rem = BigUint::zero();
        for i in (0..n).rev() {
            rem = rem.shl(1);
            if self.bit(i) {
                rem.set_bit(0);
            }
            if rem >= *divisor {
                rem = rem.sub(divisor);
                quot.set_bit(i);
            }
        }
        (quot, rem)
    }

    /// Fast path: divide by a single machine word.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 64 | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let za = self
            .trailing_zeros()
            .unwrap_or_else(|| unreachable!("nonzero"));
        let zb = other
            .trailing_zeros()
            .unwrap_or_else(|| unreachable!("nonzero"));
        let shift = za.min(zb);
        let mut a = self.shr(za);
        let mut b = other.clone();
        loop {
            b = b.shr(
                b.trailing_zeros()
                    .unwrap_or_else(|| unreachable!("nonzero")),
            );
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Approximate value as `f64` (`inf` when it overflows).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &w in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + w as f64; // 2^64
            if acc.is_infinite() {
                return acc;
            }
        }
        acc
    }

    /// Parses a base-10 string of ASCII digits.
    pub fn from_decimal(s: &str) -> Option<BigUint> {
        if s.is_empty() {
            return None;
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for ch in s.chars() {
            let d = ch.to_digit(10)?;
            acc = acc.mul(&ten).add(&BigUint::from_u64(d as u64));
        }
        Some(acc)
    }

    /// Renders as base-10 digits.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000); // 10^19
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks
            .pop()
            .unwrap_or_else(|| unreachable!("nonzero"))
            .to_string();
        for chunk in chunks.into_iter().rev() {
            out.push_str(&format!("{chunk:019}"));
        }
        out
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(x: u128) -> BigUint {
        BigUint::from_u128(x)
    }

    #[test]
    fn construction_and_zero() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(big(0).to_u128(), Some(0));
        assert_eq!(big(u128::MAX).to_u128(), Some(u128::MAX));
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(big(1 << 64).bits(), 65);
        let x = big(0b1010);
        assert!(x.bit(1) && x.bit(3));
        assert!(!x.bit(0) && !x.bit(2) && !x.bit(100));
        let mut y = BigUint::zero();
        y.set_bit(130);
        assert_eq!(y.bits(), 131);
        assert!(y.bit(130));
    }

    #[test]
    fn trailing_zeros_examples() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!(big(1 << 70).trailing_zeros(), Some(70));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = big(u64::MAX as u128);
        assert_eq!(a.add(&BigUint::one()).to_u128(), Some(1 << 64));
        let b = big(u128::MAX);
        assert_eq!(b.add(&BigUint::one()).bits(), 129);
    }

    #[test]
    fn sub_borrows() {
        let a = big(1 << 64);
        assert_eq!(a.sub(&BigUint::one()).to_u128(), Some(u64::MAX as u128));
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&big(2));
    }

    #[test]
    fn mul_schoolbook() {
        assert_eq!(big(0).mul(&big(55)), BigUint::zero());
        assert_eq!(
            big(u64::MAX as u128).mul(&big(u64::MAX as u128)).to_u128(),
            Some(u64::MAX as u128 * u64::MAX as u128)
        );
        // 2^100 * 2^100 = 2^200
        let x = BigUint::one().shl(100);
        assert_eq!(x.mul(&x), BigUint::one().shl(200));
    }

    #[test]
    fn shifts_roundtrip() {
        let x = big(0xDEAD_BEEF_CAFE_BABE);
        for n in [0usize, 1, 63, 64, 65, 127, 130] {
            assert_eq!(x.shl(n).shr(n), x, "n={n}");
        }
        assert_eq!(big(0b1011).shr(2).to_u128(), Some(0b10));
    }

    #[test]
    fn div_rem_binary() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!((q.to_u128(), r.to_u128()), (Some(142), Some(6)));
        let big_num = BigUint::one().shl(200).add(&big(12345));
        let d = BigUint::one().shl(100).add(&big(7)); // >1 limb: binary path
        let (q, r) = big_num.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), big_num);
        assert!(r < d);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_examples() {
        assert_eq!(big(12).gcd(&big(18)).to_u128(), Some(6));
        assert_eq!(big(0).gcd(&big(5)).to_u128(), Some(5));
        assert_eq!(big(5).gcd(&big(0)).to_u128(), Some(5));
        assert_eq!(big(17).gcd(&big(13)).to_u128(), Some(1));
        let a = BigUint::one().shl(100).mul(&big(6));
        let b = BigUint::one().shl(100).mul(&big(4));
        assert_eq!(a.gcd(&b), BigUint::one().shl(100).mul(&big(2)));
    }

    #[test]
    fn pow_examples() {
        assert_eq!(big(2).pow(10).to_u128(), Some(1024));
        assert_eq!(big(10).pow(0), BigUint::one());
        assert_eq!(big(3).pow(40).to_decimal(), "12157665459056928801");
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            assert_eq!(BigUint::from_decimal(s).unwrap().to_decimal(), s);
        }
        assert!(BigUint::from_decimal("12a").is_none());
        assert!(BigUint::from_decimal("").is_none());
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::zero().to_f64(), 0.0);
        assert_eq!(big(1 << 52).to_f64(), (1u64 << 52) as f64);
        let x = BigUint::one().shl(100);
        assert!((x.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-15);
    }

    #[test]
    fn ordering() {
        assert!(big(5) > big(4));
        assert!(BigUint::one().shl(64) > big(u64::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), std::cmp::Ordering::Equal);
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in 0u128..1u128 << 100, b in 0u128..1u128 << 100) {
            prop_assert_eq!(big(a).add(&big(b)).to_u128(), Some(a + b));
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u128..1u128 << 60, b in 0u128..1u128 << 60) {
            prop_assert_eq!(big(a).mul(&big(b)).to_u128(), Some(a * b));
        }

        #[test]
        fn prop_sub_inverts_add(a in any::<u128>(), b in any::<u128>()) {
            let s = big(a).add(&big(b));
            prop_assert_eq!(s.sub(&big(b)), big(a));
        }

        #[test]
        fn prop_div_rem_reconstructs(a in any::<u128>(), b in 1u128..) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
            prop_assert!(r < big(b));
        }

        #[test]
        fn prop_gcd_divides_both(a in 1u128..1u128 << 80, b in 1u128..1u128 << 80) {
            let g = big(a).gcd(&big(b));
            let (_, r1) = big(a).div_rem(&g);
            let (_, r2) = big(b).div_rem(&g);
            prop_assert!(r1.is_zero() && r2.is_zero());
            // matches u128 Euclid
            let (mut x, mut y) = (a, b);
            while y != 0 { let t = x % y; x = y; y = t; }
            prop_assert_eq!(g.to_u128(), Some(x));
        }

        #[test]
        fn prop_decimal_roundtrip(a in any::<u128>()) {
            let s = big(a).to_decimal();
            prop_assert_eq!(s.clone(), a.to_string());
            prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), big(a));
        }

        #[test]
        fn prop_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }
    }
}
