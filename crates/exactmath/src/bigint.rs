//! Signed arbitrary-precision integers (sign + magnitude).

use std::cmp::Ordering;
use std::fmt;

use crate::biguint::BigUint;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Plus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Negative (magnitude is nonzero).
    Minus,
}

/// A signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude (zero magnitude forces `Plus`).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// From a signed machine word.
    pub fn from_i64(x: i64) -> Self {
        if x < 0 {
            BigInt {
                sign: Sign::Minus,
                mag: BigUint::from_u64(x.unsigned_abs()),
            }
        } else {
            BigInt {
                sign: Sign::Plus,
                mag: BigUint::from_u64(x as u64),
            }
        }
    }

    /// From an unsigned magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag,
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `-self`.
    pub fn neg(&self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: if self.sign == Sign::Plus {
                    Sign::Minus
                } else {
                    Sign::Plus
                },
                mag: self.mag.clone(),
            }
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.sign == other.sign {
            BigInt::from_sign_mag(self.sign, self.mag.add(&other.mag))
        } else {
            match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, self.mag.sub(&other.mag)),
                Ordering::Less => BigInt::from_sign_mag(other.sign, other.mag.sub(&self.mag)),
            }
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_sign_mag(sign, self.mag.mul(&other.mag))
    }

    /// Approximate value as `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.sign == Sign::Minus {
            -m
        } else {
            m
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bi(x: i64) -> BigInt {
        BigInt::from_i64(x)
    }

    #[test]
    fn construction() {
        assert!(BigInt::zero().is_zero());
        assert!(!bi(-5).is_zero());
        assert!(bi(-5).is_negative());
        assert!(!bi(5).is_negative());
        // zero magnitude forces Plus
        let z = BigInt::from_sign_mag(Sign::Minus, BigUint::zero());
        assert_eq!(z.sign(), Sign::Plus);
    }

    #[test]
    fn negation() {
        assert_eq!(bi(5).neg(), bi(-5));
        assert_eq!(bi(-5).neg(), bi(5));
        assert_eq!(BigInt::zero().neg(), BigInt::zero());
    }

    #[test]
    fn display() {
        assert_eq!(bi(-42).to_string(), "-42");
        assert_eq!(bi(42).to_string(), "42");
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    #[test]
    fn min_i64_roundtrips() {
        let m = BigInt::from_i64(i64::MIN);
        assert_eq!(m.to_string(), i64::MIN.to_string());
    }

    proptest! {
        #[test]
        fn prop_add_matches_i128(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
            let (a64, b64) = (a as i64, b as i64);
            let sum = bi(a64).add(&bi(b64));
            prop_assert_eq!(sum.to_string(), (a64 as i128 + b64 as i128).to_string());
        }

        #[test]
        fn prop_sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let d = bi(a).sub(&bi(b));
            prop_assert_eq!(d.to_string(), (a as i128 - b as i128).to_string());
        }

        #[test]
        fn prop_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let p = bi(a).mul(&bi(b));
            prop_assert_eq!(p.to_string(), (a as i128 * b as i128).to_string());
        }

        #[test]
        fn prop_cmp_matches_i64(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
        }

        #[test]
        fn prop_add_neg_is_zero(a in any::<i64>()) {
            prop_assert!(bi(a).add(&bi(a).neg()).is_zero());
        }
    }
}
