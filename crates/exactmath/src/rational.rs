//! Always-reduced arbitrary-precision rationals.

use std::cmp::Ordering;
use std::fmt;

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;

/// A rational number `num / den` with `den > 0` and `gcd(|num|, den) = 1`.
///
/// This is the exact value domain for reliabilities: when every link failure
/// probability is rational, every intermediate quantity of the paper's
/// algorithms is a `BigRational` and no rounding ever occurs.
#[derive(Clone, PartialEq, Eq)]
pub struct BigRational {
    num: BigInt,
    den: BigUint,
}

impl BigRational {
    /// Zero.
    pub fn zero() -> Self {
        BigRational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigRational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// `n / d` as an exact rational.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn from_ratio(n: u64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Self::new(
            BigInt::from_biguint(BigUint::from_u64(n)),
            BigUint::from_u64(d),
        )
    }

    /// Signed ratio `n / d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn from_ratio_i64(n: i64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Self::new(BigInt::from_i64(n), BigUint::from_u64(d))
    }

    /// An integer as a rational.
    pub fn from_int(n: i64) -> Self {
        BigRational {
            num: BigInt::from_i64(n),
            den: BigUint::one(),
        }
    }

    /// Builds and reduces `num / den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            return BigRational { num, den };
        }
        let (nm, _) = num.magnitude().div_rem(&g);
        let (nd, _) = den.div_rem(&g);
        BigRational {
            num: BigInt::from_sign_mag(num.sign(), nm),
            den: nd,
        }
    }

    /// Exact conversion from a finite `f64` (every finite `f64` is a dyadic
    /// rational `m · 2^e`).
    ///
    /// # Panics
    /// Panics on NaN or infinity.
    pub fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "cannot convert non-finite f64 to a rational");
        if x == 0.0 {
            return Self::zero();
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let raw_exp = (bits >> 52 & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // mantissa m and exponent e such that |x| = m * 2^e
        let (m, e) = if raw_exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | 1 << 52, raw_exp - 1075)
        };
        let mag = BigUint::from_u64(m);
        let sign = if neg { Sign::Minus } else { Sign::Plus };
        if e >= 0 {
            BigRational::new(
                BigInt::from_sign_mag(sign, mag.shl(e as usize)),
                BigUint::one(),
            )
        } else {
            BigRational::new(
                BigInt::from_sign_mag(sign, mag),
                BigUint::one().shl((-e) as usize),
            )
        }
    }

    /// The numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `self + other`.
    pub fn add(&self, other: &BigRational) -> BigRational {
        let num = self
            .num
            .mul(&BigInt::from_biguint(other.den.clone()))
            .add(&other.num.mul(&BigInt::from_biguint(self.den.clone())));
        BigRational::new(num, self.den.mul(&other.den))
    }

    /// `self - other`.
    pub fn sub(&self, other: &BigRational) -> BigRational {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigRational) -> BigRational {
        BigRational::new(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    /// `self / other`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div(&self, other: &BigRational) -> BigRational {
        assert!(!other.is_zero(), "division by zero rational");
        let sign = if self.num.sign() == other.num.sign() {
            Sign::Plus
        } else {
            Sign::Minus
        };
        let num = self.num.magnitude().mul(&other.den);
        let den = self.den.mul(other.num.magnitude());
        BigRational::new(BigInt::from_sign_mag(sign, num), den)
    }

    /// `-self`.
    pub fn neg(&self) -> BigRational {
        BigRational {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// `1 - self` (the complement, ubiquitous in reliability formulas).
    pub fn complement(&self) -> BigRational {
        BigRational::one().sub(self)
    }

    /// Renders the value as a decimal string with `digits` fractional digits
    /// (truncated toward zero). Exact rationals often have astronomically
    /// long reduced forms; this is the human-readable view.
    pub fn to_decimal_string(&self, digits: usize) -> String {
        let mag = self.num.magnitude();
        let (int_part, rem) = mag.div_rem(&self.den);
        let mut out = String::new();
        if self.num.is_negative() {
            out.push('-');
        }
        out.push_str(&int_part.to_decimal());
        if digits > 0 {
            out.push('.');
            let mut rem = rem;
            let ten = BigUint::from_u64(10);
            for _ in 0..digits {
                rem = rem.mul(&ten);
                let (digit, r) = rem.div_rem(&self.den);
                out.push_str(&digit.to_decimal());
                rem = r;
            }
        }
        out
    }

    /// Accurate conversion to `f64`: the quotient is computed with ~64
    /// significant bits before rounding, so the result is within a few ulp.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        // scale so the integer quotient has ~64 significant bits
        let shift = 64 - (nb - db);
        let (q, _) = if shift >= 0 {
            self.num.magnitude().shl(shift as usize).div_rem(&self.den)
        } else {
            self.num
                .magnitude()
                .div_rem(&self.den.shl((-shift) as usize))
        };
        let val = ldexp(q.to_f64(), -shift as i32);
        if self.num.is_negative() {
            -val
        } else {
            val
        }
    }
}

/// `x · 2^e` with the exponent applied in chunks, so magnitudes that pass
/// through the subnormal range on their way to a representable value do not
/// prematurely underflow or overflow.
fn ldexp(mut x: f64, mut e: i32) -> f64 {
    while e > 1000 {
        x *= 2f64.powi(1000);
        e -= 1000;
    }
    while e < -1000 {
        x *= 2f64.powi(-1000);
        e += 1000;
    }
    x * 2f64.powi(e)
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0)
        self.num
            .mul(&BigInt::from_biguint(other.den.clone()))
            .cmp(&other.num.mul(&BigInt::from_biguint(self.den.clone())))
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio_i64(n, d)
    }

    #[test]
    fn reduction() {
        assert_eq!(r(6, 8), r(3, 4));
        assert_eq!(r(6, 8).to_string(), "3/4");
        assert_eq!(r(-6, 8).to_string(), "-3/4");
        assert_eq!(r(0, 5), BigRational::zero());
        assert_eq!(r(8, 4).to_string(), "2");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2).add(&r(1, 3)), r(5, 6));
        assert_eq!(r(1, 2).sub(&r(1, 3)), r(1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(1, 2).div(&r(1, 4)), r(2, 1));
        assert_eq!(r(-1, 2).mul(&r(-1, 2)), r(1, 4));
        assert_eq!(r(-1, 2).div(&r(1, 2)), r(-1, 1));
    }

    #[test]
    fn complement() {
        assert_eq!(r(1, 4).complement(), r(3, 4));
        assert_eq!(BigRational::zero().complement(), BigRational::one());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(1, 1_000_000));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
    }

    #[test]
    fn from_f64_exact_dyadics() {
        assert_eq!(BigRational::from_f64(0.5), r(1, 2));
        assert_eq!(BigRational::from_f64(0.25), r(1, 4));
        assert_eq!(BigRational::from_f64(-1.75), r(-7, 4));
        assert_eq!(BigRational::from_f64(0.0), BigRational::zero());
        assert_eq!(BigRational::from_f64(3.0), BigRational::from_int(3));
    }

    #[test]
    fn from_f64_subnormal() {
        let tiny = f64::MIN_POSITIVE * f64::EPSILON; // smallest subnormal
        let q = BigRational::from_f64(tiny);
        assert!(!q.is_zero());
        assert!((q.to_f64() - tiny).abs() <= f64::EPSILON * tiny);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_rejects_nan() {
        BigRational::from_f64(f64::NAN);
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(r(1, 2).to_decimal_string(3), "0.500");
        assert_eq!(r(-7, 4).to_decimal_string(2), "-1.75");
        assert_eq!(r(1, 3).to_decimal_string(6), "0.333333");
        assert_eq!(r(22, 7).to_decimal_string(4), "3.1428");
        assert_eq!(r(5, 1).to_decimal_string(0), "5");
        assert_eq!(BigRational::zero().to_decimal_string(2), "0.00");
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        let third = r(1, 3).to_f64();
        assert!((third - 1.0 / 3.0).abs() < 1e-16);
        // huge denominator
        let q = BigRational::new(BigInt::one(), BigUint::one().shl(200));
        assert!((q.to_f64() - 2f64.powi(-200)).abs() < 1e-75);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        BigRational::from_ratio(1, 0);
    }

    proptest! {
        #[test]
        fn prop_f64_roundtrip(x in -1.0f64..1.0) {
            let q = BigRational::from_f64(x);
            // conversion from f64 is exact, so converting back must be exact
            prop_assert_eq!(q.to_f64(), x);
        }

        #[test]
        fn prop_field_ops_match_f64(
            a in 1i64..1000, b in 1u64..1000, c in 1i64..1000, d in 1u64..1000,
        ) {
            let (x, y) = (r(a, b), r(c, d));
            let af = a as f64 / b as f64;
            let cf = c as f64 / d as f64;
            prop_assert!((x.add(&y).to_f64() - (af + cf)).abs() < 1e-9);
            prop_assert!((x.mul(&y).to_f64() - (af * cf)).abs() < 1e-9);
            prop_assert!((x.sub(&y).to_f64() - (af - cf)).abs() < 1e-9);
            prop_assert!((x.div(&y).to_f64() - (af / cf)).abs() < 1e-6);
        }

        #[test]
        fn prop_add_commutes_and_associates(
            a in -100i64..100, b in 1u64..50, c in -100i64..100, d in 1u64..50,
            e in -100i64..100, f in 1u64..50,
        ) {
            let (x, y, z) = (r(a, b), r(c, d), r(e, f));
            prop_assert_eq!(x.add(&y), y.add(&x));
            prop_assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
            prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
        }

        #[test]
        fn prop_sub_then_add_roundtrips(a in -100i64..100, b in 1u64..50, c in -100i64..100, d in 1u64..50) {
            let (x, y) = (r(a, b), r(c, d));
            prop_assert_eq!(x.sub(&y).add(&y), x);
        }
    }
}
