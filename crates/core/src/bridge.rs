//! Series decomposition along bridges — the paper's `k = 1` case
//! (Fig. 2 / Eq. 1), applied recursively.
//!
//! If a bridge `e' = (x, y)` separates `s` from `t`, then
//! `r(G) = r(G_s, (s, x, d)) · (1 − p(e')) · r(G_t, (y, t, d))` provided
//! `c(e') ≥ d` (zero otherwise). Each side may itself contain further
//! separating bridges, so the decomposition recurses; leaves fall back to
//! naive enumeration. On a chain of `B` bridges this reduces the exponent
//! from `|E|` to the largest bridge-free segment.

use exactmath::BigRational;
use netgraph::{connected_components, find_bridges, Network, NodeId};

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::naive::reliability_naive_weighted;
use crate::options::CalcOptions;
use crate::weight::{edge_weights, edge_weights_exact, EdgeWeights, Weight};

fn bridge_rec<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<W, ReliabilityError> {
    if demand.demand == 0 {
        return Ok(W::one());
    }
    // disconnected endpoints can never carry flow, whatever survives
    if !connected_components(net, |_| false).same(demand.source, demand.sink) {
        return Ok(W::zero());
    }
    // find a bridge separating s and t
    for e in find_bridges(net) {
        let comps = connected_components(net, |i| i == e.index());
        if comps.same(demand.source, demand.sink) {
            continue;
        }
        let edge = *net.edge(e);
        let s_label = comps.label(demand.source);
        let t_label = comps.label(demand.sink);
        // the bridge must join the s- and t-components directly (an
        // unrelated bridge elsewhere cannot be the separator here, since
        // s and t are connected before its removal)
        let labels = (comps.label(edge.src), comps.label(edge.dst));
        debug_assert!(
            labels == (s_label, t_label) || labels == (t_label, s_label),
            "separating bridge must join the two sides"
        );
        if edge.capacity < demand.demand {
            return Ok(W::zero());
        }
        // endpoint of the bridge on each side
        let (x, y) = if comps.label(edge.src) == s_label {
            (edge.src, edge.dst)
        } else {
            (edge.dst, edge.src)
        };
        // the removal may leave more than two components (other bridges
        // elsewhere); keep only the s- and t-sides, everything else is
        // irrelevant to the demand and marginalizes out of the probability
        let side = |label: u32| -> Vec<NodeId> { comps.members(label) };
        let (s_net, s_map, s_origin) = net.induced(&side(s_label), None);
        let (t_net, t_map, t_origin) = net.induced(&side(comps.label(demand.sink)), None);
        let w_s: EdgeWeights<W> = s_origin
            .iter()
            .map(|&i| weights[i.index()].clone())
            .collect();
        let w_t: EdgeWeights<W> = t_origin
            .iter()
            .map(|&i| weights[i.index()].clone())
            .collect();
        let r_s = bridge_rec(
            &s_net,
            FlowDemand::new(
                s_map
                    .get(demand.source)
                    .unwrap_or_else(|| unreachable!("source on s side")),
                s_map
                    .get(x)
                    .unwrap_or_else(|| unreachable!("bridge endpoint on s side")),
                demand.demand,
            ),
            &w_s,
            opts,
        )?;
        let r_t = bridge_rec(
            &t_net,
            FlowDemand::new(
                t_map
                    .get(y)
                    .unwrap_or_else(|| unreachable!("bridge endpoint on t side")),
                t_map
                    .get(demand.sink)
                    .unwrap_or_else(|| unreachable!("sink on t side")),
                demand.demand,
            ),
            &w_t,
            opts,
        )?;
        // Eq. 1: r = r(G_s) · (1 − p(e')) · r(G_t)
        let up = weights[e.index()].0.clone();
        return Ok(r_s.mul(&up).mul(&r_t));
    }
    // no separating bridge left: enumerate this segment
    reliability_naive_weighted(net, demand, weights, opts)
}

/// Reliability by recursive bridge decomposition, `f64`.
pub fn reliability_bridge(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    demand.validate(net)?;
    bridge_rec(net, demand, &edge_weights(net), opts)
}

/// Reliability by recursive bridge decomposition, exact.
pub fn reliability_bridge_exact(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    demand.validate(net)?;
    bridge_rec(net, demand, &edge_weights_exact(net), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::{GraphKind, NetworkBuilder};

    /// Chain of diamonds connected by bridges.
    fn diamond_chain(segments: usize) -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let mut prev = b.add_node();
        let source = prev;
        for i in 0..segments {
            let a = b.add_node();
            let c = b.add_node();
            let d = b.add_node();
            b.add_edge(prev, a, 1, 0.1).unwrap();
            b.add_edge(prev, c, 1, 0.2).unwrap();
            b.add_edge(a, d, 1, 0.15).unwrap();
            b.add_edge(c, d, 1, 0.25).unwrap();
            if i + 1 < segments {
                let next = b.add_node();
                b.add_edge(d, next, 1, 0.05).unwrap(); // bridge
                prev = next;
            } else {
                prev = d;
            }
        }
        let sink = prev;
        (b.build(), FlowDemand::new(source, sink, 1))
    }

    #[test]
    fn single_diamond_no_bridge_falls_back() {
        let (net, d) = diamond_chain(1);
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let bridge = reliability_bridge(&net, d, &CalcOptions::default()).unwrap();
        assert!((naive - bridge).abs() < 1e-12);
    }

    #[test]
    fn chain_matches_naive() {
        for segments in 2..=3 {
            let (net, d) = diamond_chain(segments);
            let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
            let bridge = reliability_bridge(&net, d, &CalcOptions::default()).unwrap();
            assert!(
                (naive - bridge).abs() < 1e-12,
                "segments={segments}: {naive} vs {bridge}"
            );
        }
    }

    #[test]
    fn chain_scales_past_naive_limits() {
        // 8 segments: 8*4 + 7 = 39 links — naive would refuse at default
        // bounds, bridge decomposition handles each 4-link segment alone
        let (net, d) = diamond_chain(8);
        assert!(reliability_naive(&net, d, &CalcOptions::default()).is_err());
        let r = reliability_bridge(&net, d, &CalcOptions::default()).unwrap();
        // per segment: both paths fail: (1-0.9*0.85)(1-0.8*0.75) each
        let seg: f64 = 1.0 - (1.0 - 0.9 * 0.85) * (1.0 - 0.8 * 0.75);
        let expected = seg.powi(8) * 0.95f64.powi(7);
        assert!((r - expected).abs() < 1e-9, "{r} vs {expected}");
    }

    #[test]
    fn bridge_capacity_below_demand_gives_zero() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let r = reliability_bridge(
            &net,
            FlowDemand::new(n[0], n[1], 2),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn exact_matches_float() {
        let (net, d) = diamond_chain(2);
        let f = reliability_bridge(&net, d, &CalcOptions::default()).unwrap();
        let e = reliability_bridge_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((f - e.to_f64()).abs() < 1e-12);
    }
}
