//! The paper-faithful array data structure of Section III-C.
//!
//! One entry per failure configuration of a side component; each entry is a
//! `|D|`-bit sequence whose bit `j` records whether the configuration
//! realizes assignment `j` (delivers the per-assignment sub-stream amounts
//! across the bottleneck). Built with `|D| · 2^{|E_c|}` max-flow invocations,
//! exactly as the paper describes.
//!
//! The streamed [`crate::spectrum::RealizationSpectrum`] supersedes this
//! structure for the actual computation (it needs `O(2^{|D|})` memory instead
//! of `O(2^{|E_c|})`); the table remains for illustration (regenerating
//! Table I and Fig. 5) and for the memory-ablation bench.

use crate::certcache::SweepStats;
use crate::error::ReliabilityError;
use crate::oracle::SideOracle;
use crate::sweep::{sweep_table, SweepConfig};

/// The realization array of one side: `masks[c]` has bit `j` set iff side
/// configuration `c` realizes assignment `j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RealizationTable {
    /// Number of assignments `|D|` (bit width of each entry).
    pub assign_count: usize,
    /// Number of side links (the array has `2^side_edges` entries).
    pub side_edges: usize,
    /// One realization mask per failure configuration.
    pub masks: Vec<u32>,
}

impl RealizationTable {
    /// Builds the array by solving one max-flow per (configuration,
    /// assignment) pair.
    ///
    /// `prune_infeasible` skips assignments that fail even with every side
    /// link alive (exact, by monotonicity of flow in link availability).
    pub fn build(
        oracle: &mut SideOracle,
        max_side_edges: usize,
        max_assignments: usize,
        prune_infeasible: bool,
    ) -> Result<Self, ReliabilityError> {
        Self::build_with(
            oracle,
            max_side_edges,
            max_assignments,
            prune_infeasible,
            &SweepConfig::serial(),
        )
        .map(|(t, _)| t)
    }

    /// Builds the array through the shared sweep engine ([`crate::sweep`]),
    /// returning the engine's counters alongside.
    pub fn build_with(
        oracle: &mut SideOracle,
        max_side_edges: usize,
        max_assignments: usize,
        prune_infeasible: bool,
        cfg: &SweepConfig,
    ) -> Result<(Self, SweepStats), ReliabilityError> {
        let m = oracle.edge_count();
        let dn = oracle.assignment_count();
        if m > max_side_edges {
            return Err(ReliabilityError::SideTooLarge {
                count: m,
                max: max_side_edges,
            });
        }
        if dn > max_assignments || dn > 31 {
            return Err(ReliabilityError::TooManyAssignments {
                count: dn,
                max: max_assignments.min(31),
            });
        }
        let live: Vec<usize> = (0..dn)
            .filter(|&j| !prune_infeasible || oracle.feasible_at_best(j))
            .collect();
        let (masks, stats) = sweep_table(oracle, &live, cfg);
        Ok((
            RealizationTable {
                assign_count: dn,
                side_edges: m,
                masks,
            },
            stats,
        ))
    }

    /// The realization mask of configuration `c`.
    pub fn mask(&self, c: usize) -> u32 {
        self.masks[c]
    }

    /// The assignments realized by configuration `c`, as indices.
    pub fn realized(&self, c: usize) -> Vec<usize> {
        (0..self.assign_count)
            .filter(|&j| self.masks[c] >> j & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use crate::decompose::Side;
    use maxflow::SolverKind;
    use netgraph::{GraphKind, NetworkBuilder};

    fn asg(amounts: &[i64]) -> Assignment {
        Assignment {
            amounts: amounts.to_vec(),
        }
    }

    /// s with two unit links to one attach point.
    fn simple_side() -> Side {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[0],
            attach: vec![n[1]],
            is_source_side: true,
        }
    }

    #[test]
    fn table_records_monotone_realizations() {
        let side = simple_side();
        let assignments = vec![asg(&[1]), asg(&[2])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let t = RealizationTable::build(&mut o, 10, 10, true).unwrap();
        assert_eq!(t.masks.len(), 4);
        // config 00: nothing; 01/10: assignment (1) only; 11: both
        assert_eq!(t.mask(0b00), 0b00);
        assert_eq!(t.mask(0b01), 0b01);
        assert_eq!(t.mask(0b10), 0b01);
        assert_eq!(t.mask(0b11), 0b11);
        assert_eq!(t.realized(0b11), vec![0, 1]);
    }

    #[test]
    fn pruning_matches_unpruned() {
        let side = simple_side();
        // (3) is infeasible even with both links alive
        let assignments = vec![asg(&[1]), asg(&[3])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let pruned = RealizationTable::build(&mut o, 10, 10, true).unwrap();
        let mut o2 = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let full = RealizationTable::build(&mut o2, 10, 10, false).unwrap();
        assert_eq!(pruned, full);
    }

    #[test]
    fn certificates_do_not_change_the_table() {
        let side = simple_side();
        let assignments = vec![asg(&[1]), asg(&[2])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let (plain, s0) =
            RealizationTable::build_with(&mut o, 10, 10, true, &SweepConfig::serial()).unwrap();
        let mut o2 = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let cfg = SweepConfig {
            certificates: true,
            cache_size: 8,
            ..SweepConfig::serial()
        };
        let (cached, s1) = RealizationTable::build_with(&mut o2, 10, 10, true, &cfg).unwrap();
        assert_eq!(plain, cached, "cache hits must reproduce every table entry");
        assert_eq!(s0.solver_calls_avoided(), 0);
        assert!(s1.solver_calls_avoided() > 0);
    }

    #[test]
    fn bounds_enforced() {
        let side = simple_side();
        let assignments = vec![asg(&[1])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert!(matches!(
            RealizationTable::build(&mut o, 1, 10, true),
            Err(ReliabilityError::SideTooLarge { count: 2, max: 1 })
        ));
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert!(matches!(
            RealizationTable::build(&mut o, 10, 0, true),
            Err(ReliabilityError::TooManyAssignments { .. })
        ));
    }
}
