//! The factoring (conditioning) algorithm with flow-based pruning — a classic
//! exact comparator for network-reliability problems.
//!
//! Condition on one undecided link at a time:
//! `R = p(e) · R[e failed] + (1 − p(e)) · R[e alive]`.
//! Two bounds prune entire subtrees exactly:
//!
//! * **optimistic** — if the demand is infeasible even with every undecided
//!   link alive, the subtree contributes 0;
//! * **pessimistic** — if the demand is feasible with every undecided link
//!   failed, every configuration below succeeds and the subtree contributes
//!   its full remaining probability mass.
//!
//! Worst case remains `O(2^|E|)`, but on most instances the bounds collapse
//! large parts of the tree; the benches quantify the gap against the naive
//! sweep and the bottleneck algorithm.

use exactmath::BigRational;
use netgraph::{EdgeMask, Network};

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;
use crate::preprocess::relevance_reduce;
use crate::weight::{edge_weights, edge_weights_exact, EdgeWeights, Weight};

struct Factoring<'a, W: Weight> {
    oracle: DemandOracle,
    weights: &'a EdgeWeights<W>,
    m: usize,
    /// Number of conditioning leaves visited (for the ablation bench).
    leaves: u64,
}

impl<W: Weight> Factoring<'_, W> {
    /// `alive` — links conditioned alive; `undecided` — not yet conditioned.
    /// Everything else is conditioned failed.
    fn go(&mut self, alive: u64, undecided: u64) -> W {
        // optimistic: all undecided alive
        if !self
            .oracle
            .admits(EdgeMask::from_bits(alive | undecided, self.m))
        {
            self.leaves += 1;
            return W::zero();
        }
        // pessimistic: all undecided failed
        if self.oracle.admits(EdgeMask::from_bits(alive, self.m)) {
            self.leaves += 1;
            return W::one();
        }
        // both bounds open: condition on the lowest undecided link
        let e = undecided.trailing_zeros() as usize;
        let rest = undecided & !(1 << e);
        let (up, down) = &self.weights[e];
        let (up, down) = (up.clone(), down.clone());
        let with_e = self.go(alive | 1 << e, rest);
        let without_e = self.go(alive, rest);
        up.mul(&with_e).add(&down.mul(&without_e))
    }
}

/// Factoring reliability over any weight domain; also returns the number of
/// conditioning leaves visited (2^|E| would be the unpruned count).
pub fn reliability_factoring_weighted<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<(W, u64), ReliabilityError> {
    demand.validate(net)?;
    assert_eq!(weights.len(), net.edge_count(), "one weight pair per link");
    // delete links on no s→t path (exact; see crate::preprocess)
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let w: EdgeWeights<W> = reduced
            .edge_origin
            .iter()
            .map(|&i| weights[i].clone())
            .collect();
        return reliability_factoring_weighted(&reduced.net, reduced.demand, &w, opts);
    }
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "factoring supports at most 64 links"
    );
    if m > opts.max_enum_edges.max(40) {
        // factoring prunes aggressively, so allow somewhat more than naive,
        // but still refuse hopeless instances
        return Err(ReliabilityError::TooManyEdges {
            count: m,
            max: opts.max_enum_edges.max(40),
        });
    }
    if demand.demand == 0 {
        return Ok((W::one(), 1));
    }
    let oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    let mut f = Factoring {
        oracle,
        weights,
        m,
        leaves: 0,
    };
    let all = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let r = f.go(0, all);
    Ok((r, f.leaves))
}

/// Factoring reliability, `f64`.
pub fn reliability_factoring(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    reliability_factoring_weighted(net, demand, &edge_weights(net), opts).map(|(r, _)| r)
}

/// Factoring reliability, exact.
pub fn reliability_factoring_exact(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    reliability_factoring_weighted(net, demand, &edge_weights_exact(net), opts).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    fn mesh() -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (0, 3),
        ];
        let probs = [0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.35, 0.4];
        for (&(u, v), &p) in edges.iter().zip(&probs) {
            b.add_edge(n[u], n[v], 1, p).unwrap();
        }
        (b.build(), FlowDemand::new(n[0], n[4], 1))
    }

    #[test]
    fn matches_naive() {
        let (net, d) = mesh();
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let (fact, leaves) =
            reliability_factoring_weighted(&net, d, &edge_weights(&net), &CalcOptions::default())
                .unwrap();
        assert!((naive - fact).abs() < 1e-12);
        assert!(leaves < 1 << net.edge_count(), "pruning must cut the tree");
    }

    #[test]
    fn matches_naive_demand_two() {
        let (net, mut d) = mesh();
        d.demand = 2;
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let fact = reliability_factoring(&net, d, &CalcOptions::default()).unwrap();
        assert!((naive - fact).abs() < 1e-12);
    }

    #[test]
    fn infeasible_is_zero_in_one_leaf() {
        let (net, mut d) = mesh();
        d.demand = 50;
        let (r, leaves) =
            reliability_factoring_weighted(&net, d, &edge_weights(&net), &CalcOptions::default())
                .unwrap();
        assert_eq!(r, 0.0);
        assert_eq!(leaves, 1, "optimistic bound fires at the root");
    }

    #[test]
    fn perfect_network_is_one_in_one_leaf() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        let net = b.build();
        // p = 0: even "all failed" keeps... no — all-failed removes the link.
        // The pessimistic bound does not fire, but the tree is tiny anyway.
        let (r, _) = reliability_factoring_weighted(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 1),
            &edge_weights(&net),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn exact_matches_float() {
        let (net, d) = mesh();
        let f = reliability_factoring(&net, d, &CalcOptions::default()).unwrap();
        let e = reliability_factoring_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((f - e.to_f64()).abs() < 1e-12);
    }
}
