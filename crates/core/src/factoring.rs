//! The factoring (conditioning) algorithm with flow-based pruning — a classic
//! exact comparator for network-reliability problems.
//!
//! Condition on one undecided link at a time:
//! `R = p(e) · R[e failed] + (1 − p(e)) · R[e alive]`.
//! Two bounds prune entire subtrees exactly:
//!
//! * **optimistic** — if the demand is infeasible even with every undecided
//!   link alive, the subtree contributes 0;
//! * **pessimistic** — if the demand is feasible with every undecided link
//!   failed, every configuration below succeeds and the subtree contributes
//!   its full remaining probability mass.
//!
//! Worst case remains `O(2^|E|)`, but on most instances the bounds collapse
//! large parts of the tree; the benches quantify the gap against the naive
//! sweep and the bottleneck algorithm.

use exactmath::BigRational;
use netgraph::{EdgeMask, Network};

use crate::checkpoint::FactoringCheckpoint;
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;
use crate::preprocess::relevance_reduce;
use crate::weight::{edge_weights, edge_weights_exact, EdgeWeights, Weight};

struct Factoring<'a, W: Weight> {
    oracle: DemandOracle,
    weights: &'a EdgeWeights<W>,
    m: usize,
    /// Number of conditioning leaves visited (for the ablation bench).
    leaves: u64,
}

impl<W: Weight> Factoring<'_, W> {
    /// `alive` — links conditioned alive; `undecided` — not yet conditioned.
    /// Everything else is conditioned failed.
    fn go(&mut self, alive: u64, undecided: u64) -> W {
        // optimistic: all undecided alive
        if !self
            .oracle
            .admits(EdgeMask::from_bits(alive | undecided, self.m))
        {
            self.leaves += 1;
            return W::zero();
        }
        // pessimistic: all undecided failed
        if self.oracle.admits(EdgeMask::from_bits(alive, self.m)) {
            self.leaves += 1;
            return W::one();
        }
        // both bounds open: condition on the lowest undecided link
        let e = undecided.trailing_zeros() as usize;
        let rest = undecided & !(1 << e);
        let (up, down) = &self.weights[e];
        let (up, down) = (up.clone(), down.clone());
        let with_e = self.go(alive | 1 << e, rest);
        let without_e = self.go(alive, rest);
        up.mul(&with_e).add(&down.mul(&without_e))
    }
}

/// Factoring reliability over any weight domain; also returns the number of
/// conditioning leaves visited (2^|E| would be the unpruned count).
pub fn reliability_factoring_weighted<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<(W, u64), ReliabilityError> {
    demand.validate(net)?;
    assert_eq!(weights.len(), net.edge_count(), "one weight pair per link");
    // delete links on no s→t path (exact; see crate::preprocess)
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let w: EdgeWeights<W> = reduced
            .edge_origin
            .iter()
            .map(|&i| weights[i].clone())
            .collect();
        return reliability_factoring_weighted(&reduced.net, reduced.demand, &w, opts);
    }
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "factoring supports at most 64 links"
    );
    if m > opts.max_enum_edges.max(40) {
        // factoring prunes aggressively, so allow somewhat more than naive,
        // but still refuse hopeless instances
        return Err(ReliabilityError::TooManyEdges {
            count: m,
            max: opts.max_enum_edges.max(40),
        });
    }
    if demand.demand == 0 {
        return Ok((W::one(), 1));
    }
    let oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    let mut f = Factoring {
        oracle,
        weights,
        m,
        leaves: 0,
    };
    let all = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let r = f.go(0, all);
    Ok((r, f.leaves))
}

/// Factoring reliability, `f64`.
pub fn reliability_factoring(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    reliability_factoring_weighted(net, demand, &edge_weights(net), opts).map(|(r, _)| r)
}

/// Result of a budgeted factoring (conditioning) run.
#[derive(Clone, Debug)]
pub enum FactoringOutcome {
    /// The budget sufficed: every conditioning subtree was resolved.
    Complete {
        /// The exact reliability (up to compensated `f64` rounding; the
        /// flat traversal may differ from [`reliability_factoring`] in the
        /// last bits because the summation order differs).
        reliability: f64,
        /// Conditioning leaves resolved.
        leaves: u64,
    },
    /// The budget ran out between conditioning steps; `[r_low, r_high]` is
    /// a rigorous interval around the exact reliability.
    Partial {
        /// Certified lower bound (mass of subtrees proven feasible).
        r_low: f64,
        /// Certified upper bound (`r_low` plus all unresolved mass).
        r_high: f64,
        /// Probability mass of the conditioning frames resolved so far.
        explored: f64,
        /// Resume state; feed back in (same instance) to continue.
        checkpoint: FactoringCheckpoint,
    },
}

/// Probability mass of a conditioning frame: the product, over links already
/// conditioned (neither undecided nor outside the network), of the alive or
/// failed weight. A pure function of the frame, so an interrupted run and
/// its resumption compute identical masses.
fn frame_mass(weights: &[(f64, f64)], all: u64, alive: u64, undecided: u64) -> f64 {
    let mut decided = all & !undecided;
    let mut mass = 1.0;
    while decided != 0 {
        let i = decided.trailing_zeros() as usize;
        mass *= if alive >> i & 1 == 1 {
            weights[i].0
        } else {
            weights[i].1
        };
        decided &= decided - 1;
    }
    mass
}

/// Neumaier-compensated `acc += x`.
fn neumaier_add(acc: &mut (f64, f64), x: f64) {
    let t = acc.0 + x;
    if acc.0.abs() >= x.abs() {
        acc.1 += (acc.0 - t) + x;
    } else {
        acc.1 += (x - t) + acc.0;
    }
    acc.0 = t;
}

/// Budget-aware factoring: conditions depth-first exactly like
/// [`reliability_factoring`], but polls `opts.budget` between conditioning
/// steps (one grant unit per frame) and, when interrupted, returns the
/// bounds accumulated so far plus a checkpoint of the unresolved subtrees.
///
/// Determinism: the explicit stack reproduces the recursive visit order
/// (alive-branch first), frame masses are pure functions of the frame, and
/// feasible-leaf masses enter one compensated accumulator in visit order —
/// so an interrupted run resumed to completion returns the same bits as an
/// uninterrupted `reliability_factoring_anytime` run.
pub fn reliability_factoring_anytime(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
    resume: Option<&FactoringCheckpoint>,
) -> Result<FactoringOutcome, ReliabilityError> {
    demand.validate(net)?;
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        // The reduction is deterministic, so checkpoint frames always refer
        // to the same reduced link indexing on both runs.
        return reliability_factoring_anytime(&reduced.net, reduced.demand, opts, resume);
    }
    let m = net.edge_count();
    if m > EdgeMask::MAX_EDGES {
        return Err(ReliabilityError::EdgeMaskOverflow {
            count: m,
            max: EdgeMask::MAX_EDGES,
        });
    }
    if m > opts.max_enum_edges.max(40) {
        return Err(ReliabilityError::TooManyEdges {
            count: m,
            max: opts.max_enum_edges.max(40),
        });
    }
    if demand.demand == 0 {
        return Ok(FactoringOutcome::Complete {
            reliability: 1.0,
            leaves: 1,
        });
    }
    let weights: Vec<(f64, f64)> = net
        .edges()
        .iter()
        .map(|e| (1.0 - e.fail_prob, e.fail_prob))
        .collect();
    let all = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let (mut acc, mut leaves, mut stack) = match resume {
        Some(ck) => {
            for &(alive, undecided) in &ck.pending {
                if alive & undecided != 0 || (alive | undecided) & !all != 0 {
                    return Err(ReliabilityError::CheckpointMismatch {
                        reason: "factoring frame does not fit this network's links".into(),
                    });
                }
            }
            // `pending` is stored in visit order; the stack pops from the
            // back, so reverse it.
            let mut st = ck.pending.clone();
            st.reverse();
            (ck.accum, ck.leaves, st)
        }
        None => ((0.0, 0.0), 0, vec![(0u64, all)]),
    };
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    let sentinel = opts.budget.start();
    while let Some((alive, undecided)) = stack.pop() {
        if sentinel.grant(1, 1) == 0 {
            // This frame and everything below it on the stack is pending;
            // restore visit order for the checkpoint.
            stack.push((alive, undecided));
            stack.reverse();
            let pending_mass: f64 = stack
                .iter()
                .map(|&(a, u)| frame_mass(&weights, all, a, u))
                .sum();
            let r_low = (acc.0 + acc.1).clamp(0.0, 1.0);
            return Ok(FactoringOutcome::Partial {
                r_low,
                r_high: (r_low + pending_mass).clamp(r_low, 1.0),
                explored: (1.0 - pending_mass).clamp(0.0, 1.0),
                checkpoint: FactoringCheckpoint {
                    accum: acc,
                    leaves,
                    pending: stack,
                },
            });
        }
        // optimistic: all undecided alive
        if !oracle.admits(EdgeMask::from_bits(alive | undecided, m)) {
            leaves += 1;
            continue;
        }
        // pessimistic: all undecided failed
        if oracle.admits(EdgeMask::from_bits(alive, m)) {
            leaves += 1;
            neumaier_add(&mut acc, frame_mass(&weights, all, alive, undecided));
            continue;
        }
        // both bounds open: condition on the lowest undecided link; push the
        // failed branch first so the alive branch pops first, matching the
        // recursive visit order.
        let e = undecided.trailing_zeros();
        let rest = undecided & !(1u64 << e);
        stack.push((alive, rest));
        stack.push((alive | 1 << e, rest));
    }
    Ok(FactoringOutcome::Complete {
        reliability: (acc.0 + acc.1).clamp(0.0, 1.0),
        leaves,
    })
}

/// Factoring reliability, exact.
pub fn reliability_factoring_exact(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    reliability_factoring_weighted(net, demand, &edge_weights_exact(net), opts).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    fn mesh() -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (0, 3),
        ];
        let probs = [0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.35, 0.4];
        for (&(u, v), &p) in edges.iter().zip(&probs) {
            b.add_edge(n[u], n[v], 1, p).unwrap();
        }
        (b.build(), FlowDemand::new(n[0], n[4], 1))
    }

    #[test]
    fn matches_naive() {
        let (net, d) = mesh();
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let (fact, leaves) =
            reliability_factoring_weighted(&net, d, &edge_weights(&net), &CalcOptions::default())
                .unwrap();
        assert!((naive - fact).abs() < 1e-12);
        assert!(leaves < 1 << net.edge_count(), "pruning must cut the tree");
    }

    #[test]
    fn matches_naive_demand_two() {
        let (net, mut d) = mesh();
        d.demand = 2;
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let fact = reliability_factoring(&net, d, &CalcOptions::default()).unwrap();
        assert!((naive - fact).abs() < 1e-12);
    }

    #[test]
    fn infeasible_is_zero_in_one_leaf() {
        let (net, mut d) = mesh();
        d.demand = 50;
        let (r, leaves) =
            reliability_factoring_weighted(&net, d, &edge_weights(&net), &CalcOptions::default())
                .unwrap();
        assert_eq!(r, 0.0);
        assert_eq!(leaves, 1, "optimistic bound fires at the root");
    }

    #[test]
    fn perfect_network_is_one_in_one_leaf() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        let net = b.build();
        // p = 0: even "all failed" keeps... no — all-failed removes the link.
        // The pessimistic bound does not fire, but the tree is tiny anyway.
        let (r, _) = reliability_factoring_weighted(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 1),
            &edge_weights(&net),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn exact_matches_float() {
        let (net, d) = mesh();
        let f = reliability_factoring(&net, d, &CalcOptions::default()).unwrap();
        let e = reliability_factoring_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((f - e.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn anytime_unbudgeted_matches_recursive() {
        let (net, d) = mesh();
        let recursive = reliability_factoring(&net, d, &CalcOptions::default()).unwrap();
        match reliability_factoring_anytime(&net, d, &CalcOptions::default(), None).unwrap() {
            FactoringOutcome::Complete {
                reliability,
                leaves,
            } => {
                assert!((reliability - recursive).abs() < 1e-12);
                assert!(leaves > 0);
            }
            FactoringOutcome::Partial { .. } => panic!("unlimited budget must complete"),
        }
    }

    #[test]
    fn anytime_resume_is_bit_identical() {
        let (net, d) = mesh();
        let uninterrupted =
            match reliability_factoring_anytime(&net, d, &CalcOptions::default(), None).unwrap() {
                FactoringOutcome::Complete {
                    reliability,
                    leaves,
                } => (reliability, leaves),
                FactoringOutcome::Partial { .. } => panic!("unlimited budget must complete"),
            };
        let tiny = CalcOptions {
            budget: crate::budget::Budget {
                max_configs: Some(3),
                ..crate::budget::Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        let mut ck = None;
        let mut last_low = 0.0f64;
        let mut last_high = 1.0f64;
        for step in 0..100_000 {
            match reliability_factoring_anytime(&net, d, &tiny, ck.as_ref()).unwrap() {
                FactoringOutcome::Complete {
                    reliability,
                    leaves,
                } => {
                    assert_eq!(reliability.to_bits(), uninterrupted.0.to_bits());
                    assert_eq!(leaves, uninterrupted.1);
                    assert!(step > 0, "budget of 3 frames cannot finish in one run");
                    return;
                }
                FactoringOutcome::Partial {
                    r_low,
                    r_high,
                    explored,
                    checkpoint,
                } => {
                    assert!(r_low >= last_low - 1e-15, "lower bound must not regress");
                    assert!(r_high <= last_high + 1e-15, "upper bound must not regress");
                    assert!(r_low <= uninterrupted.0 + 1e-12);
                    assert!(r_high >= uninterrupted.0 - 1e-12);
                    assert!((0.0..=1.0).contains(&explored));
                    last_low = r_low;
                    last_high = r_high;
                    ck = Some(checkpoint);
                }
            }
        }
        panic!("resume loop failed to converge");
    }

    #[test]
    fn anytime_immediate_cancel_reports_vacuous_bounds() {
        let (net, d) = mesh();
        let cancel = crate::budget::CancelToken::new();
        cancel.trip();
        let opts = CalcOptions {
            budget: crate::budget::Budget {
                cancel: Some(cancel),
                ..crate::budget::Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        match reliability_factoring_anytime(&net, d, &opts, None).unwrap() {
            FactoringOutcome::Partial {
                r_low,
                r_high,
                explored,
                checkpoint,
            } => {
                assert_eq!(r_low, 0.0);
                assert_eq!(r_high, 1.0);
                assert_eq!(explored, 0.0);
                assert_eq!(
                    checkpoint.pending.len(),
                    1,
                    "only the root frame is pending"
                );
            }
            FactoringOutcome::Complete { .. } => panic!("tripped token must interrupt"),
        }
    }

    #[test]
    fn anytime_rejects_foreign_frames() {
        let (net, d) = mesh();
        let bad = FactoringCheckpoint {
            accum: (0.0, 0.0),
            leaves: 0,
            pending: vec![(1u64 << 63, 0)],
        };
        let err = reliability_factoring_anytime(&net, d, &CalcOptions::default(), Some(&bad))
            .unwrap_err();
        assert!(matches!(err, ReliabilityError::CheckpointMismatch { .. }));
    }
}
