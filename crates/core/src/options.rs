//! Tuning knobs shared by the algorithms.

use maxflow::SolverKind;
use montecarlo::{EstimatorKind, McSettings};

use crate::accumulate::AccumulationMethod;
use crate::assign::AssignmentModel;
use crate::budget::Budget;

/// Options shared by the reliability algorithms.
#[derive(Clone, Debug)]
pub struct CalcOptions {
    /// Max-flow solver used for all feasibility oracles.
    pub solver: SolverKind,
    /// Refuse exhaustive enumeration over more than this many fallible links.
    pub max_enum_edges: usize,
    /// Refuse bottleneck sides with more than this many links.
    pub max_side_edges: usize,
    /// Refuse assignment sets larger than this (masks are `u32`-backed, so
    /// the hard ceiling is 31; the default is lower because the accumulation
    /// cost grows with `2^|D|`).
    pub max_assignments: usize,
    /// Parallelize configuration enumeration with rayon.
    pub parallel: bool,
    /// Accumulation variant (Section IV); all three produce the same value.
    pub accumulation: AccumulationMethod,
    /// Assignment model. The default is the exact net-crossing extension:
    /// the paper's forward-only model silently *undercounts* whenever the
    /// bottleneck admits reverse flow and the optimal routing weaves across
    /// the cut — which happens on ordinary graphs when the most balanced cut
    /// is "diagonal" (see `tests/model_gap.rs`). Use
    /// [`CalcOptions::paper_faithful`] for the paper's model.
    pub assignment_model: AssignmentModel,
    /// Skip per-assignment work when the assignment is infeasible even with
    /// every side link alive (a cheap, exact pruning).
    pub prune_infeasible_assignments: bool,
    /// Treat links with `p(e) = 0` as always alive instead of enumerating
    /// them (exact; factors `2^{#perfect}` out of the naive sweep).
    pub factor_perfect_links: bool,
    /// Cache monotonicity certificates (flow supports and saturated cuts)
    /// during configuration sweeps and consult them before the solver. Exact:
    /// a cache hit returns the verdict the solver would.
    pub certificate_cache: bool,
    /// Certificates retained per cache (per kind; sweeps keep one cache per
    /// worker and, for side sweeps, per assignment).
    pub certificate_cache_size: usize,
    /// Carry a warm feasible flow across Gray-code configuration steps,
    /// repairing it per flipped link instead of re-solving from scratch
    /// (see [`maxflow::incremental`]). Exact: verdicts — and therefore all
    /// sums, bounds, and checkpoints — are identical with it on or off.
    pub incremental: bool,
    /// Sweeps whose total configuration count falls below this threshold run
    /// serially even when [`parallel`](Self::parallel) is set — below ~10k
    /// configs the fork/join and per-worker clone overhead outweighs the
    /// parallel speedup.
    pub parallel_threshold: u64,
    /// Work/time limits for the run. The default is unlimited; with any
    /// limit set, budget-aware entry points stop at a clean cursor and
    /// return a rigorous `[R_low, R_high]` interval plus a resume
    /// checkpoint instead of running to completion (see [`crate::budget`]).
    pub budget: Budget,
    /// Maximum recursion depth of the decomposition planner
    /// ([`crate::plan`]): how many nested `Bridge` splits the planner may
    /// stack before it stops looking for structure and emits a leaf. `0`
    /// disables recursive decomposition entirely (every strategy degenerates
    /// to its one-level PR-1 behavior). Depth is consumed only by recursive
    /// splits, so the default comfortably covers any chain the enumeration
    /// bounds could accept.
    pub max_depth: usize,
    /// Let the planner re-enter itself on the sides of multi-assignment
    /// `Cut` nodes (not only single-assignment bridges): a side is *peeled*
    /// at an internal cut that separates its terminal from every attach
    /// point with a unique assignment, factoring the side spectrum into a
    /// scalar subtree times a smaller side. Off, every multi-assignment cut
    /// is swept whole (the PR 5 planner).
    pub recursive_cut_sides: bool,
    /// Hybrid exact/statistical plan execution: allow the plan interpreter
    /// to place a Monte-Carlo estimator at a scalar leaf (naive or flat cut)
    /// whose remaining predicted cost exceeds the configuration allowance
    /// its subtree was apportioned, instead of starting an exact sweep that
    /// cannot finish. The result is then a labelled *statistical* interval
    /// rather than a certified value; with the knob off (the default) plans
    /// are always certified-or-partial. Requires a tracked configuration
    /// budget (`budget.max_configs`) — without an allowance there is no
    /// share to compare against and every leaf stays exact.
    pub hybrid: bool,
    /// Monte-Carlo settings template for hybrid plan leaves: base seed,
    /// batch size, stopping target, estimator. Each sampled leaf derives its
    /// own seed from the base via a plan-leaf stream domain keyed by the
    /// leaf's DFS slot index, and [`EstimatorKind::Auto`] is resolved *per
    /// leaf* (dagger when that leaf's subnetwork has a strata-sized
    /// bottleneck, permutation otherwise). Ignored unless
    /// [`hybrid`](Self::hybrid) is set.
    pub hybrid_mc: McSettings,
    /// Run the structural reduction pipeline ([`crate::reduce`]) — capacity-
    /// factor pruning, forced-link conditioning, parallel-link merging — on
    /// the instance before planning or sweeping. Exact: the reduced instance
    /// has the identical reliability; reports and checkpoints carry a
    /// reconstruction map back to original link ids. `--no-reduce` on the
    /// CLI turns it off.
    pub reduce: bool,
}

impl Default for CalcOptions {
    fn default() -> Self {
        CalcOptions {
            solver: SolverKind::Dinic,
            max_enum_edges: 30,
            max_side_edges: 26,
            max_assignments: 20,
            parallel: false,
            accumulation: AccumulationMethod::Complement,
            assignment_model: AssignmentModel::Net,
            prune_infeasible_assignments: true,
            factor_perfect_links: true,
            certificate_cache: true,
            certificate_cache_size: 32,
            incremental: true,
            parallel_threshold: 10_000,
            budget: Budget::unlimited(),
            max_depth: 64,
            recursive_cut_sides: true,
            hybrid: false,
            hybrid_mc: McSettings {
                estimator: EstimatorKind::Auto,
                ..McSettings::default()
            },
            reduce: true,
        }
    }
}

impl CalcOptions {
    /// Default options with parallel enumeration enabled.
    pub fn parallel() -> Self {
        CalcOptions {
            parallel: true,
            ..Default::default()
        }
    }

    /// Paper-faithful options: BFS Ford–Fulkerson oracle, direct
    /// inclusion–exclusion, forward-only assignments, no pruning shortcuts.
    pub fn paper_faithful() -> Self {
        CalcOptions {
            solver: SolverKind::BfsFordFulkerson,
            accumulation: AccumulationMethod::PaperDirect,
            assignment_model: AssignmentModel::ForwardOnly,
            prune_infeasible_assignments: false,
            factor_perfect_links: false,
            parallel: false,
            certificate_cache: false,
            incremental: false,
            reduce: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = CalcOptions::default();
        assert!(o.max_enum_edges <= 32);
        assert!(o.max_assignments <= 31, "assignment masks are u32");
        assert!(!o.parallel);
        assert_eq!(
            o.assignment_model,
            AssignmentModel::Net,
            "default must be exact"
        );
    }

    #[test]
    fn paper_faithful_uses_direct_accumulation() {
        let o = CalcOptions::paper_faithful();
        assert_eq!(o.accumulation, AccumulationMethod::PaperDirect);
        assert_eq!(o.assignment_model, AssignmentModel::ForwardOnly);
        assert_eq!(o.solver, SolverKind::BfsFordFulkerson);
        assert!(!o.factor_perfect_links);
        assert!(
            !o.certificate_cache,
            "paper-faithful runs solve every config"
        );
    }

    #[test]
    fn hybrid_is_off_by_default_and_auto_resolved() {
        let o = CalcOptions::default();
        assert!(!o.hybrid, "hybrid leaves are opt-in");
        assert_eq!(
            o.hybrid_mc.estimator,
            EstimatorKind::Auto,
            "hybrid leaves resolve their estimator per leaf"
        );
    }

    #[test]
    fn certificate_cache_is_on_by_default() {
        let o = CalcOptions::default();
        assert!(o.certificate_cache);
        assert!(o.certificate_cache_size > 0);
    }
}
