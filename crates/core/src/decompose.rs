//! Splitting the network along a bottleneck set into the two side
//! subnetworks `G_s` and `G_t` (Section III-A, Fig. 2).

use netgraph::{EdgeId, Network, NodeId};

use crate::bottleneck::BottleneckSet;
use crate::demand::FlowDemand;

/// One side of the decomposition: an induced subnetwork with renumbered
/// nodes, plus the geometry needed to pose its flow subproblems.
#[derive(Clone, Debug)]
pub struct Side {
    /// The component as a standalone network.
    pub net: Network,
    /// For side edge `i`, its id in the parent network.
    pub edge_origin: Vec<EdgeId>,
    /// The demand terminal inside this side (`s` on the source side, `t` on
    /// the sink side), renumbered.
    pub terminal: NodeId,
    /// For bottleneck link `i` (in cut order), its endpoint inside this side
    /// (`x_i` on the source side, `y_i` on the sink side), renumbered.
    pub attach: Vec<NodeId>,
    /// True for `G_s`, false for `G_t`.
    pub is_source_side: bool,
}

/// The two sides plus the cut.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The bottleneck links, in increasing id order.
    pub cut: Vec<EdgeId>,
    /// Whether each cut link is oriented source-side → sink-side.
    pub forward_oriented: Vec<bool>,
    /// The component containing the source.
    pub side_s: Side,
    /// The component containing the sink.
    pub side_t: Side,
}

fn build_side(
    net: &Network,
    set: &BottleneckSet,
    nodes: &[NodeId],
    terminal: NodeId,
    is_source_side: bool,
) -> Side {
    let (sub, map, edge_origin) = net.induced(nodes, None);
    let attach = set
        .edges
        .iter()
        .zip(&set.forward_oriented)
        .map(|(&e, &fwd)| {
            let edge = net.edge(e);
            // the endpoint on this side: for a forward-oriented link the src
            // is on the source side and the dst on the sink side
            let endpoint = match (is_source_side, fwd) {
                (true, true) | (false, false) => edge.src,
                (true, false) | (false, true) => edge.dst,
            };
            map.get(endpoint)
                .unwrap_or_else(|| unreachable!("bottleneck endpoint must lie on this side"))
        })
        .collect();
    Side {
        net: sub,
        edge_origin,
        terminal: map
            .get(terminal)
            .unwrap_or_else(|| unreachable!("terminal must lie on this side")),
        attach,
        is_source_side,
    }
}

/// Splits `net` along the (already validated) bottleneck set.
pub fn decompose(net: &Network, demand: &FlowDemand, set: &BottleneckSet) -> Decomposition {
    let side_s = build_side(net, set, &set.side_s_nodes, demand.source, true);
    let side_t = build_side(net, set, &set.side_t_nodes, demand.sink, false);
    debug_assert_eq!(side_s.net.edge_count(), set.side_s_edges);
    debug_assert_eq!(side_t.net.edge_count(), set.side_t_edges);
    Decomposition {
        cut: set.edges.clone(),
        forward_oriented: set.forward_oriented.clone(),
        side_s,
        side_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottleneck::validate_bottleneck_set;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn decomposes_two_link_cut() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap(); // 0: s->a  (side s)
        b.add_edge(n[0], n[2], 2, 0.2).unwrap(); // 1: s->b  (side s)
        b.add_edge(n[1], n[3], 2, 0.3).unwrap(); // 2: cut a->c
        b.add_edge(n[2], n[4], 2, 0.4).unwrap(); // 3: cut b->d
        b.add_edge(n[3], n[5], 2, 0.5).unwrap(); // 4: c->t  (side t)
        b.add_edge(n[4], n[5], 2, 0.6).unwrap(); // 5: d->t  (side t)
        let net = b.build();
        let set = validate_bottleneck_set(&net, n[0], n[5], &[EdgeId(2), EdgeId(3)]).unwrap();
        let d = FlowDemand::new(n[0], n[5], 2);
        let dec = decompose(&net, &d, &set);

        assert_eq!(dec.side_s.net.node_count(), 3);
        assert_eq!(dec.side_s.net.edge_count(), 2);
        assert_eq!(dec.side_s.edge_origin, vec![EdgeId(0), EdgeId(1)]);
        assert!(dec.side_s.is_source_side);
        // side-s nodes sorted: [s=n0, a=n1, b=n2] -> renumbered 0,1,2
        assert_eq!(dec.side_s.terminal, NodeId(0));
        assert_eq!(dec.side_s.attach, vec![NodeId(1), NodeId(2)]); // a, b

        assert_eq!(dec.side_t.net.node_count(), 3);
        assert_eq!(dec.side_t.net.edge_count(), 2);
        assert_eq!(dec.side_t.edge_origin, vec![EdgeId(4), EdgeId(5)]);
        // side-t nodes sorted: [c=n3, d=n4, t=n5] -> renumbered 0,1,2
        assert_eq!(dec.side_t.terminal, NodeId(2));
        assert_eq!(dec.side_t.attach, vec![NodeId(0), NodeId(1)]); // c, d
        assert!(!dec.side_t.is_source_side);

        // probabilities carried over
        assert_eq!(dec.side_t.net.edge(EdgeId(0)).fail_prob, 0.5);
    }

    #[test]
    fn backward_oriented_attach_points() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap(); // s -> a
        b.add_edge(n[1], n[2], 2, 0.1).unwrap(); // cut a -> b (forward)
        b.add_edge(n[3], n[1], 2, 0.1).unwrap(); // cut c -> a (backward)
        b.add_edge(n[2], n[3], 2, 0.1).unwrap(); // b -> c
        let net = b.build();
        let set = validate_bottleneck_set(&net, n[0], n[2], &[EdgeId(1), EdgeId(2)]).unwrap();
        let d = FlowDemand::new(n[0], n[2], 1);
        let dec = decompose(&net, &d, &set);
        // side s = {s=n0, a=n1}; cut edge 1 attaches at a, cut edge 2 (backward,
        // c->a) also attaches at a on the source side
        assert_eq!(dec.side_s.attach, vec![NodeId(1), NodeId(1)]);
        // side t = {b=n2, c=n3} renumbered to {0, 1}
        assert_eq!(dec.side_t.attach, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn single_node_side() {
        // s directly behind the cut: side s has no edges at all
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap(); // cut s->a
        b.add_edge(n[1], n[2], 1, 0.1).unwrap(); // a->t
        let net = b.build();
        let set = validate_bottleneck_set(&net, n[0], n[2], &[EdgeId(0)]).unwrap();
        let dec = decompose(&net, &FlowDemand::new(n[0], n[2], 1), &set);
        assert_eq!(dec.side_s.net.node_count(), 1);
        assert_eq!(dec.side_s.net.edge_count(), 0);
        assert_eq!(dec.side_s.terminal, dec.side_s.attach[0]);
    }
}
