//! Recursive decomposition planner and plan interpreter.
//!
//! The paper's Eq. 1 bridge split and the Section III–IV bottleneck
//! decomposition are both *one-level* rewrites. This module generalizes them
//! into a [`DecompositionPlan`]: a tree whose internal nodes are combinators
//! and whose leaves are atomic subnetworks swept by the existing engines.
//!
//! Node kinds and their interval-combination rules (every child evaluates to
//! a certified interval `[lo, hi]` around its exact reliability):
//!
//! - [`PlanNode::Const`] — a value decided at plan time (zero demand,
//!   infeasible demand, empty assignment set): `[v, v]`.
//! - [`PlanNode::Preprocess`] — relevance reduction removed dead links; the
//!   child is computed on the reduced network and the interval passes
//!   through unchanged (the reduction is exact).
//! - [`PlanNode::SpReduce`] — series-parallel reduction for unit demand on
//!   undirected networks; exact, so the interval passes through unchanged.
//! - [`PlanNode::Bridge`] — a cut whose assignment set is a single
//!   all-nonnegative assignment `x`. Flow conservation forces *exactly*
//!   `x_i` across cut link `i`, so the sides are independent given the cut
//!   links with `x_i ≠ 0` alive (Eq. 1 generalized to `k ≥ 1`):
//!   `[up·lo_L·lo_R, up·hi_L·hi_R]` with `up = Π_{x_i≠0} (1 − p(e_i))`.
//! - [`PlanNode::Cut`] — a general bottleneck split executed whole by the
//!   PR-1 spectrum engine, which produces its own certified interval.
//! - [`PlanNode::DeepCut`] — a general bottleneck split whose sides are
//!   themselves decomposed ([`SidePlan`]): each side is either swept whole
//!   or *peeled* at an internal cut that separates the side's terminal from
//!   every attach point with a unique all-nonnegative crossing `x'`. The
//!   peel factors the side spectrum exactly: with `P(A)` the probability
//!   the terminal part delivers `x'` across the peel cut, `up` the survival
//!   of the peel-cut links `x'` uses, and `B[r]` the residual part's
//!   spectrum, `S[r] = up·P(A)·B[r]` for `r ≠ 0` and
//!   `S[0] = 1 − up·P(A)·(1 − B[0])`. Under partial execution `P(A)` is an
//!   interval `[a_lo, a_hi]` and `B` a pointwise underestimate, so the
//!   transformed mass stays a pointwise underestimate of the true spectrum
//!   and the cut-level interval combination remains certified.
//! - [`PlanNode::Leaf`] — an atomic subnetwork swept by the budgeted naive
//!   engine, which produces its own certified interval.
//!
//! The interpreter ([`DecompositionPlan::execute`]) apportions the budget
//! hierarchically: at every fork (the two sides of a `Bridge` or `DeepCut`,
//! or a peel's scalar/residual pair) the parent sentinel's whole remaining
//! allowance is split into per-subtree [`BudgetSentinel`] children
//! proportional to each subtree's *remaining* predicted cost (resume-aware,
//! so finished subtrees get nothing). A subtree that finishes early releases
//! its unspent allowance back to the fork, where the sibling's grants pick
//! it up — no global atomic sits on the hot path. Each subtree returns
//! *owned* leaf slots that are concatenated in DFS order, so the parallel
//! path (rayon join at every fork) shares no mutable state at all.
//!
//! When the budget runs out the interpreter returns a
//! [`PlanOutcome::Partial`] whose [`PlanCheckpoint`] records each leaf
//! slot's resume state in DFS order (plus the informational per-slot budget
//! shares). The plan tree itself is *not* serialized: planning is
//! deterministic, so resume re-derives it and verifies a shape fingerprint.
//! A serial interrupted run resumed to completion reproduces the
//! uninterrupted value bit for bit, because leaf execution order, per-leaf
//! sweeps (PR-2 semantics), budget apportionment, and the combination
//! arithmetic are all deterministic.
//!
//! # Hybrid exact/statistical leaves
//!
//! With [`CalcOptions::hybrid`] set, a *scalar* leaf (`Leaf` or flat `Cut`)
//! whose remaining predicted cost exceeds the configuration allowance its
//! subtree was apportioned is estimated by [`montecarlo::engine`] instead
//! of starting an exact sweep that cannot finish. The decision is made at
//! the leaf's entry against `sentinel.remaining()` — both fork children are
//! created *before* either side runs, so the share a leaf sees is the same
//! deterministic number serially and in parallel. Each sampled leaf derives
//! its own RNG stream ([`montecarlo::plan_leaf_seed`], keyed by the leaf's
//! DFS slot index) and resolves [`EstimatorKind::Auto`] against *its own*
//! subnetwork: dagger when that leaf has a strata-sized bottleneck,
//! permutation otherwise. Every node combine then propagates a `certified`
//! flag alongside the interval — the AND over all contributing leaves — so
//! the final answer is labelled *statistical* as soon as any leaf sampled.
//! Combined bounds are clamped to `[0, 1]` at every combine: statistical
//! child intervals (Wilson CIs) are not exact probabilities, so products
//! against `up` can stray outside the unit interval. Sides of a `DeepCut`
//! (sweeps and peel scalars) never sample: a statistical scalar folded
//! into a spectrum's mass vector would silently corrupt the certified
//! underestimate the peel transform relies on, so MC placement is disabled
//! (`allow_mc`) inside side evaluation.
//!
//! [`EstimatorKind::Auto`]: montecarlo::EstimatorKind::Auto

use netgraph::{EdgeId, EdgeMask, GraphKind, Network, NodeId};

use crate::accumulate::{combine, combine_interval};
use crate::algorithm::{
    reliability_bottleneck_anytime_on, side_resume, BottleneckOutcome, BottleneckReport,
    PlanSlotReport,
};
use crate::assign::{
    crossing_ranges, enumerate_assignments, supported_assignment_masks, Assignment, AssignmentModel,
};
use crate::bottleneck::{find_all_bottleneck_sets, find_bottleneck_set, BottleneckSet};
use crate::budget::BudgetSentinel;
use crate::certcache::SweepStats;
use crate::checkpoint::{Fnv1a, PlanCheckpoint, PlanLeafState, SideCheckpoint, SweepCursor};
use crate::decompose::{decompose, Side};
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::naive::{reliability_naive_anytime_on, NaiveOutcome};
use crate::options::CalcOptions;
use crate::oracle::{DemandOracle, SideOracle};
use crate::preprocess::relevance_reduce;
use crate::reduce::{reduce, ReduceStats};
use crate::spreduce::{reduce_unit_demand, ReductionStats};
use crate::sweep::{sweep_spectrum_budgeted, SweepConfig};
use crate::weight::edge_weights;
use montecarlo::{McCheckpoint, McOutcome, McReport, McSettings};

/// A side smaller than this is always swept whole: a peel replaces the side
/// with a scalar subtree *plus* a residual side, so it cannot pay off below
/// a few links.
const PEEL_MIN_EDGES: usize = 4;

/// A leaf: an atomic subnetwork swept exhaustively by the naive engine.
#[derive(Clone, Debug)]
pub struct LeafNode {
    /// The subnetwork.
    pub net: Network,
    /// The demand inside the subnetwork.
    pub demand: FlowDemand,
    /// Fallible links the sweep enumerates — for a multi-state subnetwork,
    /// the number of mixed-radix state digits.
    pub fallible: usize,
    /// Predicted configurations: `2^fallible` for all-binary subnetworks,
    /// the product of the state radices for multi-state ones.
    pub configs: f64,
    /// DFS slot index into the plan checkpoint's leaf array.
    pub index: usize,
}

/// A general bottleneck split executed by the one-level spectrum engine.
#[derive(Clone, Debug)]
pub struct CutNode {
    /// The (sub)network the split applies to.
    pub net: Network,
    /// The demand inside that network.
    pub demand: FlowDemand,
    /// The validated bottleneck set.
    pub set: BottleneckSet,
    /// Number of feasible flow assignments across the cut (`|D|`).
    pub assignments: usize,
    /// DFS slot index into the plan checkpoint's leaf array.
    pub index: usize,
}

/// One side spectrum swept whole against the cut's assignment set.
#[derive(Clone, Debug)]
pub struct SweepNode {
    /// The side (its subnetwork, demand terminal, and attach points).
    pub side: Side,
    /// Number of assignments of the owning [`DeepCutNode`] (`|D|`).
    pub dn: usize,
    /// DFS slot index into the plan checkpoint's leaf array.
    pub index: usize,
}

/// How one side of a [`DeepCutNode`] is evaluated.
#[derive(Clone, Debug)]
pub enum SidePlan {
    /// Sweep the side whole with the PR-1 side-spectrum engine.
    Sweep(Box<SweepNode>),
    /// Peel the side at an internal cut separating its terminal from every
    /// attach point with a unique all-nonnegative crossing `x'`:
    /// `S[r] = up·P(scalar)·B[r]` for `r ≠ 0`,
    /// `S[0] = 1 − up·P(scalar)·(1 − B[0])`.
    Peel {
        /// Survival probability of the peel-cut links `x'` uses.
        up: f64,
        /// Scalar subtree: probability the terminal part delivers `x'`.
        scalar: Box<PlanNode>,
        /// The residual side (original attach points, peel cut replaced by
        /// a perfect super-terminal), evaluated recursively.
        inner: Box<SidePlan>,
    },
}

/// A bottleneck split whose sides are recursively decomposed instead of
/// being handed whole to the one-level engine.
#[derive(Clone, Debug)]
pub struct DeepCutNode {
    /// The validated bottleneck set of the parent network.
    pub set: BottleneckSet,
    /// The feasible flow assignments across the cut (`D`).
    pub assignments: Vec<Assignment>,
    /// `(alive, failed)` weight pairs of the cut links.
    pub cut_weights: Vec<(f64, f64)>,
    /// Per cut configuration, the mask of assignments it supports.
    pub support: Vec<u32>,
    /// Source-side evaluation.
    pub side_s: SidePlan,
    /// Sink-side evaluation.
    pub side_t: SidePlan,
}

/// One node of a [`DecompositionPlan`] tree.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// A value decided at plan time.
    Const {
        /// The exact reliability of this subtree.
        value: f64,
        /// Why the planner could decide it without sweeping.
        reason: &'static str,
    },
    /// An atomic subnetwork swept by the budgeted naive engine.
    Leaf(Box<LeafNode>),
    /// Relevance reduction removed links irrelevant to the demand; the
    /// child is planned on the reduced network (exact pass-through).
    Preprocess {
        /// Links removed by the reduction.
        removed: usize,
        /// The plan for the reduced network.
        child: Box<PlanNode>,
    },
    /// Series-parallel reduction for unit demand on an undirected network
    /// (exact pass-through).
    SpReduce {
        /// What the reduction collapsed.
        stats: ReductionStats,
        /// The plan for the reduced network.
        child: Box<PlanNode>,
    },
    /// Eq. 1 generalized: a cut with a single all-nonnegative assignment
    /// `x`. Conservation forces exactly `x_i` across link `i`, so
    /// `R = up · R_left · R_right` with `up = Π_{x_i≠0} (1 − p(e_i))`.
    Bridge {
        /// The cut links.
        cut: Vec<EdgeId>,
        /// Survival probability of the cut links the assignment uses.
        up: f64,
        /// Source-side subproblem (with a super-terminal absorbing `x`).
        left: Box<PlanNode>,
        /// Sink-side subproblem (with a super-terminal producing `x`).
        right: Box<PlanNode>,
    },
    /// A bottleneck split with more than one feasible assignment, executed
    /// whole by the one-level spectrum engine.
    Cut(Box<CutNode>),
    /// A bottleneck split whose sides are recursively decomposed.
    DeepCut(Box<DeepCutNode>),
    /// Structural reduction ([`crate::reduce`]) rewrote this subproblem —
    /// capacity-factor pruning, perfect-link contraction, parallel-link
    /// merging — and the child is planned on the reduced instance. The
    /// reduction is value-exact, so the interval passes through unchanged.
    /// `origin` is the reconstruction map: `origin[i]` lists the original
    /// link ids that reduced link `i` stands for, so renders and per-leaf
    /// accounting can speak in the caller's ids.
    Reduce {
        /// What each pass of the reduction did.
        stats: ReduceStats,
        /// Reduced link id → original link ids it stands for.
        origin: Vec<Vec<EdgeId>>,
        /// The plan for the reduced instance.
        child: Box<PlanNode>,
    },
}

/// Result of executing a plan under a budget.
#[derive(Clone, Debug)]
pub enum PlanOutcome {
    /// The budget sufficed: every leaf ran to completion.
    Complete {
        /// The reliability: exact (up to compensated `f64` rounding) when
        /// `certified`, the combined Monte-Carlo point estimate otherwise.
        reliability: f64,
        /// Lower end of the combined interval (`reliability` when
        /// `certified`, the combined 95% confidence bound otherwise).
        r_low: f64,
        /// Upper end of the combined interval.
        r_high: f64,
        /// True when every contributing leaf ran exactly; false as soon as
        /// any leaf was estimated statistically (hybrid mode).
        certified: bool,
        /// Merged sweep-engine counters over all leaves.
        stats: SweepStats,
        /// Per-leaf-slot budget shares and cost accounting, in DFS order.
        slots: Vec<PlanSlotReport>,
    },
    /// The budget ran out; `[r_low, r_high]` is a rigorous interval (when
    /// `certified`) or a statistically-tainted one (hybrid mode).
    Partial {
        /// Lower bound (certified unless a sampled leaf contributed).
        r_low: f64,
        /// Upper bound (certified unless a sampled leaf contributed).
        r_high: f64,
        /// True when no contributing leaf was estimated statistically.
        certified: bool,
        /// Mean explored fraction over the plan's leaf slots.
        explored: f64,
        /// Resume state (leaf states in DFS order plus re-planning inputs).
        checkpoint: PlanCheckpoint,
        /// Merged sweep-engine counters for this slice of work.
        stats: SweepStats,
        /// Per-leaf-slot budget shares and cost accounting, in DFS order.
        slots: Vec<PlanSlotReport>,
    },
}

/// A decomposition plan: the tree, the root split it was built on, and the
/// planner knobs needed to re-derive it deterministically on resume.
#[derive(Clone, Debug)]
pub struct DecompositionPlan {
    root: PlanNode,
    root_set: BottleneckSet,
    root_assignments: usize,
    max_k: usize,
    max_depth: usize,
    recursive: bool,
    shape: u64,
    slots: usize,
}

fn mismatch(reason: impl Into<String>) -> ReliabilityError {
    ReliabilityError::CheckpointMismatch {
        reason: reason.into(),
    }
}

impl DecompositionPlan {
    /// Builds a plan whose root is a split on the given (already validated)
    /// bottleneck set; the sides are then decomposed recursively up to
    /// `opts.max_depth` nested splits, searching recursive cuts of up to
    /// `max_k` links.
    pub fn plan_on_set(
        net: &Network,
        demand: FlowDemand,
        set: &BottleneckSet,
        opts: &CalcOptions,
        max_k: usize,
    ) -> Result<DecompositionPlan, ReliabilityError> {
        demand.validate(net)?;
        let (mut root, root_assignments) = if demand.demand == 0 {
            (
                PlanNode::Const {
                    value: 1.0,
                    reason: "zero demand",
                },
                0,
            )
        } else {
            let ranges = crossing_ranges(
                net,
                &set.edges,
                &set.forward_oriented,
                demand.demand,
                opts.assignment_model,
            );
            let assignments = enumerate_assignments(demand.demand, &ranges);
            let count = assignments.len();
            let node = split_node(net, demand, set, assignments, opts.max_depth, opts, max_k)?;
            (node, count)
        };
        let mut slots = 0;
        number(&mut root, &mut slots);
        let mut h = Fnv1a::new();
        h.write(max_k as u64);
        h.write(opts.max_depth as u64);
        hash_node(&root, &mut h);
        Ok(DecompositionPlan {
            root,
            root_set: set.clone(),
            root_assignments,
            max_k,
            max_depth: opts.max_depth,
            recursive: opts.recursive_cut_sides,
            shape: h.finish(),
            slots,
        })
    }

    /// The root node, for inspection and rendering.
    pub fn root_node(&self) -> &PlanNode {
        &self.root
    }

    /// The root bottleneck set the plan splits on.
    pub fn root_set(&self) -> &BottleneckSet {
        &self.root_set
    }

    /// Number of feasible assignments at the root split.
    pub fn root_assignments(&self) -> usize {
        self.root_assignments
    }

    /// Shape fingerprint; a resumed run must re-derive an identical value.
    pub fn shape(&self) -> u64 {
        self.shape
    }

    /// Number of leaf slots (atomic sweeps) in the tree.
    pub fn leaf_count(&self) -> usize {
        self.slots
    }

    /// `max_depth` the plan was built with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// `recursive_cut_sides` the plan was built with.
    pub fn recursive_cut_sides(&self) -> bool {
        self.recursive
    }

    /// `max_k` recursive cut searches used.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Total configurations the leaf sweeps will enumerate in the worst
    /// case — the quantity recursion is meant to shrink.
    pub fn predicted_cost(&self) -> f64 {
        cost(&self.root)
    }

    /// The plan's run report, shaped like the one-level engine's so callers
    /// (and tests) keep seeing the root geometry, plus per-slot budget and
    /// cost accounting.
    pub fn report(
        &self,
        net: &Network,
        sweep: SweepStats,
        slots: Vec<PlanSlotReport>,
    ) -> BottleneckReport {
        BottleneckReport {
            set: self.root_set.clone(),
            assignment_count: self.root_assignments,
            alpha: self.root_set.alpha(net.edge_count()),
            sweep,
            plan_slots: slots,
        }
    }

    /// Renders the tree with per-node link counts and predicted sweep cost.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan: {} leaf slot(s), root |D| = {}, max_k = {}, max_depth = {}, predicted cost ~{:.3e} configs\n",
            self.slots,
            self.root_assignments,
            self.max_k,
            self.max_depth,
            self.predicted_cost()
        );
        render_node(&self.root, 1, &mut out, None);
        out
    }

    /// Wraps the plan's root in a [`PlanNode::Reduce`] node describing a
    /// whole-instance structural reduction that ran *before* planning (the
    /// calculator reduces first and plans on the reduced instance). This is
    /// a presentation-layer wrapper for [`render`](Self::render): link ids
    /// in the tree then print as the original instance's ids. The shape
    /// fingerprint is deliberately left unchanged — it must keep matching
    /// the checkpoints written by executing the unwrapped plan.
    pub fn with_reduction(mut self, red: &crate::reduce::Reduction) -> Self {
        self.root = PlanNode::Reduce {
            stats: red.stats,
            origin: red.edge_origin.clone(),
            child: Box::new(self.root),
        };
        self
    }

    /// Executes the plan bottom-up under `opts.budget`, optionally resuming
    /// from a checkpoint produced by an earlier interrupted execution. The
    /// budget is apportioned across subtrees proportional to their
    /// remaining predicted cost (see the module docs).
    pub fn execute(
        &self,
        opts: &CalcOptions,
        resume: Option<&PlanCheckpoint>,
    ) -> Result<PlanOutcome, ReliabilityError> {
        if let Some(ck) = resume {
            if ck.shape != self.shape {
                return Err(mismatch(format!(
                    "checkpoint plan shape {:016x} does not match the re-derived plan {:016x}",
                    ck.shape, self.shape
                )));
            }
            if ck.leaves.len() != self.slots {
                return Err(mismatch(format!(
                    "checkpoint has {} leaf states, plan has {} slots",
                    ck.leaves.len(),
                    self.slots
                )));
            }
            // Shares are informational (recomputed from remaining work), so
            // an empty list is tolerated; a wrong-length one is corruption.
            if !ck.shares.is_empty() && ck.shares.len() != self.slots {
                return Err(mismatch(format!(
                    "checkpoint carries {} budget shares, plan has {} slots",
                    ck.shares.len(),
                    self.slots
                )));
            }
        }
        let mut infos = Vec::new();
        collect_slots(&self.root, resume, &mut infos);
        debug_assert_eq!(infos.len(), self.slots, "slot walk must match number()");
        let total_rem: f64 = infos.iter().map(|i| i.predicted).sum();
        let shares: Vec<f64> = infos
            .iter()
            .map(|i| {
                if total_rem > 0.0 {
                    i.predicted / total_rem
                } else {
                    0.0
                }
            })
            .collect();
        let sentinel = opts.budget.start();
        let ctx = ExecCtx {
            opts,
            resume,
            allow_mc: true,
        };
        let SubtreeOut { eval, slots } = exec_node(&self.root, &ctx, &sentinel)?;
        if slots.len() != self.slots {
            return Err(mismatch(format!(
                "execution produced {} leaf slots, plan numbered {}",
                slots.len(),
                self.slots
            )));
        }
        let mut stats = SweepStats::default();
        for s in &slots {
            stats.merge(&s.stats);
        }
        let reports: Vec<PlanSlotReport> = infos
            .iter()
            .zip(&slots)
            .enumerate()
            .map(|(i, (info, s))| PlanSlotReport {
                index: i,
                // sampling is decided at execution time, so the static slot
                // kind is overridden once the leaf actually sampled
                kind: match s.state {
                    PlanLeafState::MonteCarlo(_) | PlanLeafState::McDone { .. } => "mc",
                    _ => info.kind,
                },
                predicted: info.predicted,
                share: shares[i],
                configs: s.stats.configs,
                explored: s.explored,
            })
            .collect();
        if eval.complete {
            return Ok(PlanOutcome::Complete {
                reliability: eval.point,
                r_low: eval.lo,
                r_high: eval.hi,
                certified: eval.certified,
                stats,
                slots: reports,
            });
        }
        let explored = if slots.is_empty() {
            1.0
        } else {
            slots.iter().map(|s| s.explored).sum::<f64>() / slots.len() as f64
        };
        let r_low = eval.lo.clamp(0.0, 1.0);
        Ok(PlanOutcome::Partial {
            r_low,
            r_high: eval.hi.clamp(r_low, 1.0),
            certified: eval.certified,
            explored: explored.clamp(0.0, 1.0),
            checkpoint: PlanCheckpoint {
                root_cut: self.root_set.edges.clone(),
                root_max_k: self.max_k,
                max_depth: self.max_depth,
                recursive_cut_sides: self.recursive,
                hybrid: opts.hybrid,
                shape: self.shape,
                shares,
                leaves: slots.into_iter().map(|s| s.state).collect(),
            },
            stats,
            slots: reports,
        })
    }
}

/// Owned resume/accounting state of one leaf slot after execution.
struct LeafSlot {
    state: PlanLeafState,
    explored: f64,
    stats: SweepStats,
}

/// Immutable execution context shared (read-only) by every subtree.
#[derive(Clone, Copy)]
struct ExecCtx<'a> {
    opts: &'a CalcOptions,
    resume: Option<&'a PlanCheckpoint>,
    /// Whether hybrid Monte-Carlo placement is allowed in this subtree.
    /// Cleared inside `DeepCut` side evaluation: a statistical scalar
    /// folded into a spectrum mass vector would corrupt the certified
    /// pointwise underestimate the peel transform relies on.
    allow_mc: bool,
}

impl ExecCtx<'_> {
    fn leaf_state(&self, index: usize) -> Option<&PlanLeafState> {
        self.resume.and_then(|ck| ck.leaves.get(index))
    }

    /// Whether a fresh scalar leaf with `predicted` remaining configurations
    /// should be estimated statistically instead of swept: hybrid mode is
    /// on, sampling is allowed here, a configuration allowance is actually
    /// tracked, and the leaf's work exceeds the share its subtree holds.
    fn should_sample(&self, predicted: f64, sentinel: &BudgetSentinel) -> bool {
        self.opts.hybrid
            && self.allow_mc
            && sentinel.tracks_configs()
            && predicted > sentinel.remaining() as f64
    }
}

/// An interval around a subtree's reliability: certified (exact bounds)
/// until a sampled leaf contributes, statistical (confidence bounds) after.
#[derive(Clone, Copy)]
struct Eval {
    /// Point estimate: the exact value when `certified`, the combined
    /// Monte-Carlo mean otherwise. Tracked separately from `lo` so a
    /// statistical subtree still reports its natural point value.
    point: f64,
    lo: f64,
    hi: f64,
    complete: bool,
    /// AND over all contributing leaves: false once any leaf sampled.
    certified: bool,
}

/// A subtree's evaluation plus its owned leaf slots in DFS order.
struct SubtreeOut {
    eval: Eval,
    slots: Vec<LeafSlot>,
}

/// One side's (possibly peel-transformed) spectrum plus owned leaf slots.
struct SideOut {
    mass: Vec<f64>,
    live: Vec<usize>,
    complete: bool,
    slots: Vec<LeafSlot>,
}

/// Splits a sentinel's whole remaining allowance between two subtrees,
/// proportional to their remaining predicted costs. The parent retains
/// nothing: until a child releases, refills only come from sibling
/// releases, so the apportionment is a real partition of the allowance.
fn fork2(sentinel: &BudgetSentinel, cost_a: f64, cost_b: f64) -> (BudgetSentinel, BudgetSentinel) {
    if !sentinel.tracks_configs() {
        // Untracked children share the parent's state (deadline/cancel
        // still apply); apportioning would be meaningless.
        return (sentinel.child(0), sentinel.child(0));
    }
    let avail = sentinel.remaining();
    let total = cost_a + cost_b;
    let frac = if total > 0.0 {
        (cost_a / total).clamp(0.0, 1.0)
    } else {
        0.5
    };
    let share_a = (((avail as f64) * frac) as u64).min(avail);
    let a = sentinel.child(share_a);
    let b = sentinel.child(sentinel.remaining());
    (a, b)
}

/// Runs two subtree thunks against their apportioned sentinels — serially
/// in deterministic a-then-b order, or via rayon work stealing — releasing
/// each child's unspent allowance the moment its subtree returns (the
/// subtree is quiescent then, so the sibling can pick the refill up early).
fn join2<A, B>(
    parallel: bool,
    sa: BudgetSentinel,
    sb: BudgetSentinel,
    fa: impl FnOnce(&BudgetSentinel) -> A + Send,
    fb: impl FnOnce(&BudgetSentinel) -> B + Send,
) -> (A, B)
where
    A: Send,
    B: Send,
{
    if parallel {
        rayon::join(
            move || {
                let out = fa(&sa);
                sa.release();
                out
            },
            move || {
                let out = fb(&sb);
                sb.release();
                out
            },
        )
    } else {
        // Serial order is a-then-b: together with the engines' serial
        // determinism this makes interrupted runs resume bit-identically.
        let a = fa(&sa);
        sa.release();
        let b = fb(&sb);
        sb.release();
        (a, b)
    }
}

fn exec_node(
    node: &PlanNode,
    ctx: &ExecCtx<'_>,
    sentinel: &BudgetSentinel,
) -> Result<SubtreeOut, ReliabilityError> {
    match node {
        PlanNode::Const { value, .. } => Ok(SubtreeOut {
            eval: Eval {
                point: *value,
                lo: *value,
                hi: *value,
                complete: true,
                certified: true,
            },
            slots: Vec::new(),
        }),
        PlanNode::Preprocess { child, .. }
        | PlanNode::SpReduce { child, .. }
        | PlanNode::Reduce { child, .. } => exec_node(child, ctx, sentinel),
        PlanNode::Bridge {
            up, left, right, ..
        } => {
            let (sa, sb) = fork2(
                sentinel,
                remaining_cost(left, ctx.resume),
                remaining_cost(right, ctx.resume),
            );
            let (l, r) = join2(
                ctx.opts.parallel,
                sa,
                sb,
                |s| exec_node(left, ctx, s),
                |s| exec_node(right, ctx, s),
            );
            let (mut l, r) = (l?, r?);
            // Clamped at every combine: with statistical children (Wilson
            // CIs at p̂ ≈ 1) the product of upper bounds can exceed 1.
            let lo = (up * l.eval.lo * r.eval.lo).clamp(0.0, 1.0);
            let eval = Eval {
                point: (up * l.eval.point * r.eval.point).clamp(0.0, 1.0),
                lo,
                hi: (up * l.eval.hi * r.eval.hi).clamp(lo, 1.0),
                complete: l.eval.complete && r.eval.complete,
                certified: l.eval.certified && r.eval.certified,
            };
            l.slots.extend(r.slots);
            Ok(SubtreeOut {
                eval,
                slots: l.slots,
            })
        }
        PlanNode::Leaf(leaf) => {
            let resume = match ctx.leaf_state(leaf.index) {
                Some(PlanLeafState::Done { value }) => {
                    let value = *value;
                    return Ok(done_slot(value));
                }
                Some(PlanLeafState::McDone { mean, lo, hi }) => {
                    return Ok(mc_done_slot(*mean, *lo, *hi));
                }
                Some(PlanLeafState::MonteCarlo(ck)) => {
                    return exec_mc_leaf(
                        &leaf.net,
                        leaf.demand,
                        leaf.index,
                        ctx,
                        sentinel,
                        Some(ck),
                    );
                }
                Some(PlanLeafState::Naive(ck)) => Some(ck.clone()),
                None | Some(PlanLeafState::Fresh) => None,
                Some(_) => {
                    return Err(mismatch(
                        "checkpoint stores a foreign state for a naive leaf",
                    ))
                }
            };
            if resume.is_none() && ctx.should_sample(remaining_cost(node, ctx.resume), sentinel) {
                return exec_mc_leaf(&leaf.net, leaf.demand, leaf.index, ctx, sentinel, None);
            }
            let out = reliability_naive_anytime_on(
                &leaf.net,
                leaf.demand,
                ctx.opts,
                sentinel,
                resume.as_ref(),
            )?;
            Ok(settle_naive(out))
        }
        PlanNode::Cut(cut) => {
            let resume = match ctx.leaf_state(cut.index) {
                Some(PlanLeafState::Done { value }) => {
                    let value = *value;
                    return Ok(done_slot(value));
                }
                Some(PlanLeafState::McDone { mean, lo, hi }) => {
                    return Ok(mc_done_slot(*mean, *lo, *hi));
                }
                Some(PlanLeafState::MonteCarlo(ck)) => {
                    return exec_mc_leaf(&cut.net, cut.demand, cut.index, ctx, sentinel, Some(ck));
                }
                Some(PlanLeafState::Cut { side_s, side_t }) => {
                    Some((side_s.clone(), side_t.clone()))
                }
                None | Some(PlanLeafState::Fresh) => None,
                Some(_) => {
                    return Err(mismatch("checkpoint stores a foreign state for a cut leaf"))
                }
            };
            if resume.is_none() && ctx.should_sample(remaining_cost(node, ctx.resume), sentinel) {
                return exec_mc_leaf(&cut.net, cut.demand, cut.index, ctx, sentinel, None);
            }
            let out = reliability_bottleneck_anytime_on(
                &cut.net,
                cut.demand,
                &cut.set,
                ctx.opts,
                sentinel,
                resume.as_ref().map(|(s, t)| (s.as_ref(), t.as_ref())),
            )?;
            let (eval, slot) = match out {
                BottleneckOutcome::Complete {
                    reliability,
                    report,
                } => (
                    Eval {
                        point: reliability,
                        lo: reliability,
                        hi: reliability,
                        complete: true,
                        certified: true,
                    },
                    LeafSlot {
                        state: PlanLeafState::Done { value: reliability },
                        explored: 1.0,
                        stats: report.sweep,
                    },
                ),
                BottleneckOutcome::Partial {
                    r_low,
                    r_high,
                    explored,
                    side_s,
                    side_t,
                    report,
                } => (
                    Eval {
                        point: 0.5 * (r_low + r_high),
                        lo: r_low,
                        hi: r_high,
                        complete: false,
                        certified: true,
                    },
                    LeafSlot {
                        state: PlanLeafState::Cut { side_s, side_t },
                        explored,
                        stats: report.sweep,
                    },
                ),
            };
            Ok(SubtreeOut {
                eval,
                slots: vec![slot],
            })
        }
        PlanNode::DeepCut(dc) => exec_deepcut(dc, ctx, sentinel),
    }
}

/// A leaf already finished by an earlier run: its value passes through and
/// its slot stays `Done`.
fn done_slot(value: f64) -> SubtreeOut {
    SubtreeOut {
        eval: Eval {
            point: value,
            lo: value,
            hi: value,
            complete: true,
            certified: true,
        },
        slots: vec![LeafSlot {
            state: PlanLeafState::Done { value },
            explored: 1.0,
            stats: SweepStats::default(),
        }],
    }
}

/// A sampled leaf already settled by an earlier run: its recorded interval
/// passes through (still statistical) and its slot stays `McDone`.
fn mc_done_slot(mean: f64, lo: f64, hi: f64) -> SubtreeOut {
    SubtreeOut {
        eval: Eval {
            point: mean,
            lo,
            hi,
            complete: true,
            certified: false,
        },
        slots: vec![LeafSlot {
            state: PlanLeafState::McDone { mean, lo, hi },
            explored: 1.0,
            stats: SweepStats::default(),
        }],
    }
}

fn settle_naive(out: NaiveOutcome) -> SubtreeOut {
    match out {
        NaiveOutcome::Complete { reliability, stats } => SubtreeOut {
            eval: Eval {
                point: reliability,
                lo: reliability,
                hi: reliability,
                complete: true,
                certified: true,
            },
            slots: vec![LeafSlot {
                state: PlanLeafState::Done { value: reliability },
                explored: 1.0,
                stats,
            }],
        },
        NaiveOutcome::Partial {
            r_low,
            r_high,
            explored,
            checkpoint,
            stats,
        } => SubtreeOut {
            eval: Eval {
                point: 0.5 * (r_low + r_high),
                lo: r_low,
                hi: r_high,
                complete: false,
                certified: true,
            },
            slots: vec![LeafSlot {
                state: PlanLeafState::Naive(checkpoint),
                explored,
                stats,
            }],
        },
    }
}

/// Runs (or resumes) the Monte-Carlo engine on a scalar leaf under the
/// leaf's budget lease: the sentinel's remaining configuration allowance
/// becomes the engine's per-run sample cap, the sentinel's deadline its
/// time limit, and the run's cancel token is shared, so interrupting the
/// plan interrupts the leaf. Samples drawn are debited back against the
/// allowance so sibling subtrees see the spend.
fn exec_mc_leaf(
    net: &Network,
    demand: FlowDemand,
    slot: usize,
    ctx: &ExecCtx<'_>,
    sentinel: &BudgetSentinel,
    resume: Option<&McCheckpoint>,
) -> Result<SubtreeOut, ReliabilityError> {
    let opts = ctx.opts;
    let allowance = if sentinel.tracks_configs() {
        // at least one batch, so a starved leaf still makes progress and
        // the run terminates instead of checkpointing forever
        Some(sentinel.remaining().max(opts.hybrid_mc.batch.max(1)))
    } else {
        None
    };
    let budget = montecarlo::McBudget {
        time_limit: sentinel.time_left(),
        max_samples: allowance,
        cancel: opts.budget.cancel.as_ref().map(|t| t.as_flag()),
    };
    let before = resume.map_or(0, |ck| ck.samples);
    let out = match resume {
        Some(ck) => montecarlo::engine::resume(
            net,
            demand.source,
            demand.sink,
            demand.demand,
            ck,
            &budget,
            opts.parallel,
        )?,
        None => {
            let settings = resolve_leaf_mc(net, demand, slot, opts);
            montecarlo::engine::run(
                net,
                demand.source,
                demand.sink,
                demand.demand,
                &settings,
                &budget,
                opts.parallel,
            )?
        }
    };
    let drawn = out.report().samples.saturating_sub(before);
    if drawn > 0 {
        sentinel.grant(1, drawn);
    }
    let explored_of = |r: &McReport, cap: u64| {
        if r.exact {
            1.0
        } else {
            (r.samples as f64 / cap.max(1) as f64).clamp(0.0, 1.0)
        }
    };
    Ok(match out {
        McOutcome::Done(report) if report.exact => done_slot(report.mean),
        McOutcome::Done(report) => mc_done_slot(report.mean, report.ci_low, report.ci_high),
        McOutcome::Interrupted { report, checkpoint } => {
            let cap = checkpoint.settings.target.max_samples;
            SubtreeOut {
                eval: Eval {
                    point: report.mean,
                    lo: report.ci_low,
                    hi: report.ci_high,
                    complete: false,
                    certified: false,
                },
                slots: vec![LeafSlot {
                    explored: explored_of(&report, cap),
                    state: PlanLeafState::MonteCarlo(Box::new(checkpoint)),
                    stats: SweepStats {
                        configs: drawn,
                        solver_calls: report.flow_evals,
                        ..SweepStats::default()
                    },
                }],
            }
        }
    })
}

/// Resolves the hybrid Monte-Carlo settings template for one plan leaf:
/// a per-leaf seed stream keyed by the leaf's DFS slot index, the plan's
/// solver, and — for [`EstimatorKind::Auto`] — an estimator chosen against
/// *this leaf's* subnetwork (dagger with the leaf's own bottleneck as
/// strata when one small enough exists, permutation otherwise).
///
/// [`EstimatorKind::Auto`]: montecarlo::EstimatorKind::Auto
fn resolve_leaf_mc(
    net: &Network,
    demand: FlowDemand,
    slot: usize,
    opts: &CalcOptions,
) -> McSettings {
    let mut s = opts.hybrid_mc.clone();
    s.solver = opts.solver;
    s.seed = montecarlo::plan_leaf_seed(opts.hybrid_mc.seed, slot as u64);
    if s.estimator == montecarlo::EstimatorKind::Auto {
        // Dagger stratifies over independent binary links; a multi-state
        // leaf samples per-link states, so it estimates by permutation.
        if net.has_multistate() {
            s.estimator = montecarlo::EstimatorKind::Permutation;
            s.strata = Vec::new();
            return s;
        }
        match find_bottleneck_set(net, demand.source, demand.sink, 3) {
            Ok(set) if set.edges.len() <= montecarlo::MAX_STRATA_LINKS => {
                s.estimator = montecarlo::EstimatorKind::Dagger;
                s.strata = set.edges;
            }
            _ => {
                s.estimator = montecarlo::EstimatorKind::Permutation;
                s.strata = Vec::new();
            }
        }
    }
    s
}

fn exec_deepcut(
    dc: &DeepCutNode,
    ctx: &ExecCtx<'_>,
    sentinel: &BudgetSentinel,
) -> Result<SubtreeOut, ReliabilityError> {
    let opts = ctx.opts;
    let dn = dc.assignments.len();
    let (sa, sb) = fork2(
        sentinel,
        side_remaining(&dc.side_s, ctx.resume),
        side_remaining(&dc.side_t, ctx.resume),
    );
    // Sides never sample (see the module docs): a statistical factor in a
    // mass vector would corrupt the certified pointwise underestimate.
    let side_ctx = ExecCtx {
        allow_mc: false,
        ..*ctx
    };
    let (s, t) = join2(
        opts.parallel,
        sa,
        sb,
        |sent| exec_side(&dc.side_s, dc, &side_ctx, sent),
        |sent| exec_side(&dc.side_t, dc, &side_ctx, sent),
    );
    let (s, t) = (s?, t?);
    let eval = if s.complete && t.complete {
        let r = combine(
            &dc.cut_weights,
            &dc.support,
            &s.mass,
            &t.mass,
            dn,
            opts.accumulation,
        );
        Eval {
            point: r,
            lo: r,
            hi: r,
            complete: true,
            certified: true,
        }
    } else {
        let explored_mass = |mass: &[f64]| mass.iter().sum::<f64>().clamp(0.0, 1.0);
        let live_mask = |live: &[usize]| live.iter().fold(0u32, |a, &j| a | 1 << j);
        let (sum_s, sum_t) = (explored_mass(&s.mass), explored_mass(&t.mass));
        let (lo, hi) = combine_interval(
            &dc.cut_weights,
            &dc.support,
            &s.mass,
            &(1.0 - sum_s).max(0.0),
            live_mask(&s.live),
            &t.mass,
            &(1.0 - sum_t).max(0.0),
            live_mask(&t.live),
            dn,
            opts.accumulation,
        );
        let lo = lo.clamp(0.0, 1.0);
        Eval {
            point: 0.5 * (lo + hi.clamp(lo, 1.0)),
            lo,
            hi: hi.clamp(lo, 1.0),
            complete: false,
            certified: true,
        }
    };
    let mut slots = s.slots;
    slots.extend(t.slots);
    Ok(SubtreeOut { eval, slots })
}

fn exec_side(
    sp: &SidePlan,
    dc: &DeepCutNode,
    ctx: &ExecCtx<'_>,
    sentinel: &BudgetSentinel,
) -> Result<SideOut, ReliabilityError> {
    match sp {
        SidePlan::Sweep(sw) => exec_sweep(sw, dc, ctx, sentinel),
        SidePlan::Peel { up, scalar, inner } => {
            let (sa, sb) = fork2(
                sentinel,
                remaining_cost(scalar, ctx.resume),
                side_remaining(inner, ctx.resume),
            );
            let (a, b) = join2(
                ctx.opts.parallel,
                sa,
                sb,
                |sent| exec_node(scalar, ctx, sent),
                |sent| exec_side(inner, dc, ctx, sent),
            );
            let (a, mut b) = (a?, b?);
            debug_assert!(
                a.eval.certified,
                "peel scalars must not sample (allow_mc is off inside sides)"
            );
            // Peel transform (see the module docs): pointwise-exact when
            // both parts are complete, pointwise underestimate plus a
            // nonnegative residual otherwise.
            let m0 = b.mass[0];
            for v in b.mass.iter_mut() {
                *v *= up * a.eval.lo;
            }
            b.mass[0] = (1.0 - up * a.eval.hi * (1.0 - m0)).max(0.0);
            b.complete = b.complete && a.eval.complete;
            let mut slots = a.slots;
            slots.extend(b.slots);
            b.slots = slots;
            Ok(b)
        }
    }
}

fn exec_sweep(
    sw: &SweepNode,
    dc: &DeepCutNode,
    ctx: &ExecCtx<'_>,
    sentinel: &BudgetSentinel,
) -> Result<SideOut, ReliabilityError> {
    let opts = ctx.opts;
    let dn = dc.assignments.len();
    let mut oracle = SideOracle::new(&sw.side, &dc.assignments, opts.solver)?;
    let m = oracle.edge_count();
    let (live, res) = match ctx.leaf_state(sw.index) {
        None | Some(PlanLeafState::Fresh) => {
            let live: Vec<usize> = (0..dn)
                .filter(|&j| !opts.prune_infeasible_assignments || oracle.feasible_at_best(j))
                .collect();
            (live, None)
        }
        Some(PlanLeafState::Side(ck)) => {
            let (live, part) = side_resume(ck, "side-sweep", m, dn)?;
            (live, Some(part))
        }
        Some(_) => {
            return Err(mismatch(
                "checkpoint stores a foreign state for a sweep leaf",
            ))
        }
    };
    let weights = edge_weights(&sw.side.net);
    let cfg = SweepConfig::from_opts(opts);
    let (part, stats) = sweep_spectrum_budgeted(&oracle, &live, &weights, dn, &cfg, sentinel, res);
    let complete = part.is_complete();
    let total = 1u64 << m;
    let explored = 1.0 - part.remaining_configs() as f64 / total as f64;
    let mass = part.mass.clone();
    // Even a completed sweep stays a `Side` state (with nothing remaining):
    // the parent cut needs the mass vector, not a scalar, so `Done` never
    // applies to sweep slots. Resuming a completed sweep is a no-op.
    let state = PlanLeafState::Side(Box::new(SideCheckpoint {
        cursor: SweepCursor {
            total,
            remaining: part.remaining,
        },
        live: live.clone(),
        mass: part.mass,
        certs: part.certs,
    }));
    Ok(SideOut {
        mass,
        live,
        complete,
        slots: vec![LeafSlot {
            state,
            explored,
            stats,
        }],
    })
}

/// Builds the node for a split on an explicit, validated set. Emits a
/// [`PlanNode::Bridge`] (recursing into the sides) when the assignment set
/// is a single all-nonnegative assignment and depth remains; otherwise
/// tries a [`PlanNode::DeepCut`] with recursively decomposed sides, falling
/// back to a [`PlanNode::Cut`] for the one-level engine — after checking
/// the same enumeration bounds that engine would.
fn split_node(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    assignments: Vec<Assignment>,
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<PlanNode, ReliabilityError> {
    if assignments.is_empty() {
        return Ok(PlanNode::Const {
            value: 0.0,
            reason: "cut capacity below demand",
        });
    }
    let singleton = assignments.len() == 1 && assignments[0].amounts.iter().all(|&x| x >= 0);
    // A bridge across multi-state cut links would need the scalar `up` to be
    // a per-state mixture; v1 keeps cut links binary (the bottleneck search
    // already excludes multi-state candidates, this guards explicit sets).
    let cut_multistate = set.edges.iter().any(|&e| net.spectrum(e).is_some());
    if depth > 0 && singleton && !cut_multistate {
        let amounts = &assignments[0].amounts;
        let mut up = 1.0;
        for (i, &e) in set.edges.iter().enumerate() {
            if amounts[i] != 0 {
                up *= 1.0 - net.edges()[e.index()].fail_prob;
            }
        }
        let dec = decompose(net, &demand, set);
        let (left_net, left_demand) = side_subproblem(&dec.side_s, amounts, demand.demand)?;
        let (right_net, right_demand) = side_subproblem(&dec.side_t, amounts, demand.demand)?;
        let left = build_node(&left_net, left_demand, depth - 1, opts, max_k)?;
        let right = build_node(&right_net, right_demand, depth - 1, opts, max_k)?;
        return Ok(PlanNode::Bridge {
            cut: set.edges.clone(),
            up,
            left: Box::new(left),
            right: Box::new(right),
        });
    }
    // The one-level cut engine and DeepCut sweep sides as binary spectra,
    // which cannot represent per-link state mixtures. A multi-state
    // subnetwork therefore never splits further in v1: it is swept whole by
    // a scalar leaf, whose naive engine enumerates mixed-radix natively.
    if net.has_multistate() {
        return leaf_node(net, demand, opts);
    }
    // One-level engine bounds: checked at plan time either way, so the
    // caller learns the plan is infeasible before any budget is spent.
    if assignments.len() > opts.max_assignments || assignments.len() > 31 {
        return Err(ReliabilityError::TooManyAssignments {
            count: assignments.len(),
            max: opts.max_assignments.min(31),
        });
    }
    let widest = set.side_s_edges.max(set.side_t_edges);
    if widest > opts.max_side_edges {
        return Err(ReliabilityError::SideTooLarge {
            count: widest,
            max: opts.max_side_edges,
        });
    }
    // A DeepCut pays per-assignment spectrum transforms and a deeper slot
    // walk on top of its sweeps, so a marginal predicted saving loses to
    // the flat engine in practice. Charge each leaf slot a fixed setup
    // equivalent (sweep init, warm state, spectrum assembly dominate
    // sub-hundred-config leaves) and accept the deep shape only when it
    // still wins by at least 2×; otherwise the plain `Cut` below is the
    // cheaper shape. A flat sweep under the skip threshold can never be
    // beaten by that margin (a deep tree has >= 2 slots), so don't even pay
    // for constructing the candidate.
    const LEAF_SETUP_COST: f64 = 128.0;
    const DEEP_SKIP_FLAT_COST: f64 = 2048.0;
    let side = |m: usize| (1u64 << m.min(63)) as f64;
    let flat = assignments.len() as f64 * (side(set.side_s_edges) + side(set.side_t_edges));
    if opts.recursive_cut_sides && depth > 0 && set.edges.len() <= 16 && flat > DEEP_SKIP_FLAT_COST
    {
        if let Some(node) = deep_cut_node(net, demand, set, &assignments, depth, opts, max_k)? {
            let mut slots = Vec::new();
            collect_slots(&node, None, &mut slots);
            if (cost(&node) + LEAF_SETUP_COST * slots.len() as f64) * 2.0 <= flat {
                return Ok(node);
            }
        }
    }
    Ok(PlanNode::Cut(Box::new(CutNode {
        net: net.clone(),
        demand,
        set: set.clone(),
        assignments: assignments.len(),
        index: 0,
    })))
}

/// Tries to build a [`PlanNode::DeepCut`] by peeling both sides. Returns
/// `None` when neither side peels — a plain `Cut` then executes the same
/// work with less machinery (and keeps the PR 5 plan shapes, so existing
/// checkpoints stay resumable).
fn deep_cut_node(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    assignments: &[Assignment],
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<Option<PlanNode>, ReliabilityError> {
    let dec = decompose(net, &demand, set);
    let side_s = peel_side(
        dec.side_s,
        assignments,
        demand.demand,
        depth - 1,
        opts,
        max_k,
    )?;
    let side_t = peel_side(
        dec.side_t,
        assignments,
        demand.demand,
        depth - 1,
        opts,
        max_k,
    )?;
    if matches!(side_s, SidePlan::Sweep(_)) && matches!(side_t, SidePlan::Sweep(_)) {
        return Ok(None);
    }
    let weights = edge_weights(net);
    let cut_weights: Vec<(f64, f64)> = dec.cut.iter().map(|&e| weights[e.index()]).collect();
    let support = supported_assignment_masks(assignments, set.edges.len());
    Ok(Some(PlanNode::DeepCut(Box::new(DeepCutNode {
        set: set.clone(),
        assignments: assignments.to_vec(),
        cut_weights,
        support,
        side_s,
        side_t,
    }))))
}

/// Recursively decomposes one side of a cut. Searches the side (augmented
/// with a perfect super-terminal standing for the cut) for an internal
/// *peel cut* that separates the side's terminal from every attach point
/// with a unique all-nonnegative crossing `x'`; when one is found, the
/// side factors into a scalar subtree (the terminal part delivering `x'`)
/// times a smaller residual side, and the residual recurses. Falls back to
/// sweeping the side whole.
fn peel_side(
    side: Side,
    assignments: &[Assignment],
    d: u64,
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<SidePlan, ReliabilityError> {
    let dn = assignments.len();
    let sweep = |side: Side| SidePlan::Sweep(Box::new(SweepNode { side, dn, index: 0 }));
    if depth == 0 || side.net.edge_count() < PEEL_MIN_EDGES || side.attach.is_empty() {
        return Ok(sweep(side));
    }
    let m = side.net.edge_count();
    // Augment the side with a super-terminal `aug` joined to the attach
    // points by perfect links whose capacities cover every assignment's
    // positive *and* negative amounts, so every assignment's side routing
    // embeds in the augmented network — the property the uniqueness
    // argument below rests on.
    let n_attach = side.attach.len();
    let mut pos = vec![0i64; n_attach];
    let mut neg = vec![0i64; n_attach];
    for a in assignments {
        for (i, &x) in a.amounts.iter().enumerate() {
            pos[i] = pos[i].max(x);
            neg[i] = neg[i].max(-x);
        }
    }
    let aug = NodeId(side.net.node_count() as u32);
    let mut b = netgraph::NetworkBuilder::with_nodes(side.net.kind(), side.net.node_count() + 1);
    for (i, e) in side.net.edges().iter().enumerate() {
        match side.net.spectrum(EdgeId::from(i)) {
            Some(sp) => b.add_spectrum_edge(e.src, e.dst, sp.states())?,
            None => b.add_edge(e.src, e.dst, e.capacity, e.fail_prob)?,
        };
    }
    for i in 0..n_attach {
        match side.net.kind() {
            GraphKind::Undirected => {
                let cap = pos[i].max(neg[i]);
                if cap > 0 {
                    b.add_perfect_edge(side.attach[i], aug, cap as u64)?;
                }
            }
            GraphKind::Directed => {
                let (fwd, rev) = if side.is_source_side {
                    ((side.attach[i], aug), (aug, side.attach[i]))
                } else {
                    ((aug, side.attach[i]), (side.attach[i], aug))
                };
                if pos[i] > 0 {
                    b.add_perfect_edge(fwd.0, fwd.1, pos[i] as u64)?;
                }
                if neg[i] > 0 {
                    b.add_perfect_edge(rev.0, rev.1, neg[i] as u64)?;
                }
            }
        }
    }
    let aug_net = b.build();
    let (from, to) = if side.is_source_side {
        (side.terminal, aug)
    } else {
        (aug, side.terminal)
    };
    let aug_demand = FlowDemand::new(from, to, d);
    let Ok(mut sets) = find_all_bottleneck_sets(&aug_net, from, to, max_k) else {
        return Ok(sweep(side));
    };
    // Prefer balanced, small peel cuts: they shave the most off the sweep
    // exponent per unit of scalar-subtree work.
    sets.sort_by_key(|c| (c.side_s_edges.max(c.side_t_edges), c.k()));
    for cand in sets {
        // Peel cuts must consist of original side links (never the perfect
        // attach links, whose aliveness is not part of the side spectrum).
        if cand.edges.iter().any(|e| e.index() >= m) {
            continue;
        }
        // In the augmented flow direction, `side_s` holds `from` and
        // `side_t` holds `to`; the terminal part is the one with the
        // side's own terminal, the residual part the one with `aug`.
        let (term_edges, b_part_nodes) = if side.is_source_side {
            (cand.side_s_edges, &cand.side_t_nodes)
        } else {
            (cand.side_t_edges, &cand.side_s_nodes)
        };
        if term_edges == 0 {
            // The residual side would not shrink.
            continue;
        }
        // The peel is exact only when the crossing is unique and
        // all-nonnegative; check in the exact net model regardless of the
        // caller's assignment model (`ForwardOnly` could miss crossings
        // and "prove" a spurious uniqueness).
        let ranges = crossing_ranges(
            &aug_net,
            &cand.edges,
            &cand.forward_oriented,
            d,
            AssignmentModel::Net,
        );
        let unique = enumerate_assignments(d, &ranges);
        if unique.len() != 1 || unique[0].amounts.iter().any(|&x| x < 0) {
            continue;
        }
        let xp = &unique[0].amounts;
        // Terminal part: a standalone scalar subproblem (probability the
        // part delivers `x'` across the peel cut), planned recursively.
        let pdec = decompose(&aug_net, &aug_demand, &cand);
        let a_side = if side.is_source_side {
            &pdec.side_s
        } else {
            &pdec.side_t
        };
        let (a_net, a_demand) = side_subproblem(a_side, xp, d)?;
        let scalar = match build_node(&a_net, a_demand, depth, opts, max_k) {
            Ok(node) => node,
            // The scalar subproblem exceeds an enumeration bound; another
            // candidate may still fit.
            Err(
                ReliabilityError::TooManyAssignments { .. }
                | ReliabilityError::SideTooLarge { .. }
                | ReliabilityError::TooManyEdges { .. }
                | ReliabilityError::EdgeMaskOverflow { .. },
            ) => continue,
            Err(e) => return Err(e),
        };
        // Residual part: the original attach points with the peel cut
        // replaced by a perfect super-terminal delivering `x'`. Peel-cut
        // links with `x'_j = 0` are forced to carry nothing and vanish
        // (their aliveness marginalizes out of the spectrum); links with
        // `x'_j ≠ 0` contribute the `up` factor.
        let b_core: Vec<NodeId> = b_part_nodes.iter().copied().filter(|&n| n != aug).collect();
        let (sub, map, _) = side.net.induced(&b_core, None);
        let t_new = NodeId(sub.node_count() as u32);
        let mut bb = netgraph::NetworkBuilder::with_nodes(sub.kind(), sub.node_count() + 1);
        let mut builder_ok = true;
        for e in sub.edges() {
            bb.add_edge(e.src, e.dst, e.capacity, e.fail_prob)?;
        }
        let mut up = 1.0;
        for (j, &e) in cand.edges.iter().enumerate() {
            if xp[j] == 0 {
                continue;
            }
            let edge = side.net.edge(e);
            up *= 1.0 - edge.fail_prob;
            let inside = if b_core.contains(&edge.src) {
                edge.src
            } else {
                edge.dst
            };
            let Some(mapped) = map.get(inside) else {
                builder_ok = false;
                break;
            };
            if side.is_source_side {
                bb.add_perfect_edge(t_new, mapped, xp[j] as u64)?;
            } else {
                bb.add_perfect_edge(mapped, t_new, xp[j] as u64)?;
            }
        }
        if !builder_ok {
            continue;
        }
        let b_net = bb.build();
        if b_net.edge_count() > opts.max_side_edges {
            continue;
        }
        // Attach points carrying zero in every assignment may sit in the
        // terminal part; their node choice is irrelevant (zero production),
        // so they fall back to the super-terminal.
        let attach: Vec<NodeId> = side
            .attach
            .iter()
            .map(|&a| map.get(a).unwrap_or(t_new))
            .collect();
        let b_side = Side {
            net: b_net,
            edge_origin: Vec::new(),
            terminal: t_new,
            attach,
            is_source_side: side.is_source_side,
        };
        let inner = peel_side(b_side, assignments, d, depth - 1, opts, max_k)?;
        return Ok(SidePlan::Peel {
            up,
            scalar: Box::new(scalar),
            inner: Box::new(inner),
        });
    }
    Ok(sweep(side))
}

/// Recursively plans a subproblem: constant-folds decided cases, peels
/// reductions, splits on a worthwhile bottleneck while depth remains, and
/// otherwise emits a naive leaf (checking its enumeration bound).
fn build_node(
    net: &Network,
    demand: FlowDemand,
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<PlanNode, ReliabilityError> {
    if demand.demand == 0 || demand.source == demand.sink {
        return Ok(PlanNode::Const {
            value: 1.0,
            reason: "zero demand",
        });
    }
    demand.validate(net)?;
    // Structural reduction on every planner side: side subproblems carry
    // perfect attach links and clamped slack that the whole-instance pass
    // (which ran before planning) could not see from the outside. The
    // per-side pass never clamps to the side demand — side values must stay
    // value-exact, not merely predicate-exact. Reduction reaches a fixed
    // point, so the recursive call finds nothing further and terminates.
    if opts.reduce {
        let red = reduce(net, demand, false, opts.solver);
        if !red.is_identity() {
            let child = build_node(&red.net, red.demand, depth, opts, max_k)?;
            return Ok(PlanNode::Reduce {
                stats: red.stats,
                origin: red.edge_origin,
                child: Box::new(child),
            });
        }
    }
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let child = build_node(&reduced.net, reduced.demand, depth, opts, max_k)?;
        return Ok(PlanNode::Preprocess {
            removed: reduced.removed,
            child: Box::new(child),
        });
    }
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(PlanNode::Const {
            value: 0.0,
            reason: "demand exceeds the all-alive max flow",
        });
    }
    if demand.demand == 1 && net.kind() == GraphKind::Undirected && !net.has_multistate() {
        let red = reduce_unit_demand(net, demand.source, demand.sink);
        if red.net.edge_count() < net.edge_count() {
            let child = if red.source == red.sink {
                PlanNode::Const {
                    value: 1.0,
                    reason: "terminals merged by series-parallel reduction",
                }
            } else {
                build_node(
                    &red.net,
                    FlowDemand::new(red.source, red.sink, 1),
                    depth,
                    opts,
                    max_k,
                )?
            };
            return Ok(PlanNode::SpReduce {
                stats: red.stats,
                child: Box::new(child),
            });
        }
    }
    if depth > 0 {
        if let Ok(set) = find_bottleneck_set(net, demand.source, demand.sink, max_k) {
            // Same heuristic as the auto strategy, plus: a split with an
            // empty side gains nothing (its subproblem is the whole
            // network again) and could recurse in place.
            let worth_it = set.side_s_edges > 0
                && set.side_t_edges > 0
                && set.side_s_edges.max(set.side_t_edges) + 2 < net.edge_count();
            if worth_it {
                let ranges = crossing_ranges(
                    net,
                    &set.edges,
                    &set.forward_oriented,
                    demand.demand,
                    opts.assignment_model,
                );
                let assignments = enumerate_assignments(demand.demand, &ranges);
                match split_node(net, demand, &set, assignments, depth, opts, max_k) {
                    Ok(node) => return Ok(node),
                    // The split exceeds the one-level engine's bounds; a
                    // plain leaf may still fit.
                    Err(
                        ReliabilityError::TooManyAssignments { .. }
                        | ReliabilityError::SideTooLarge { .. },
                    ) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    leaf_node(net, demand, opts)
}

fn leaf_node(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<PlanNode, ReliabilityError> {
    if net.edge_count() > EdgeMask::MAX_EDGES {
        return Err(ReliabilityError::EdgeMaskOverflow {
            count: net.edge_count(),
            max: EdgeMask::MAX_EDGES,
        });
    }
    let (fallible, configs) = if net.has_multistate() {
        // One digit per random link; the sweep walks the mixed-radix
        // configuration space, so the predicted cost is the radix product.
        let x = netgraph::StateExpansion::build(net).map_err(|_| {
            ReliabilityError::EdgeMaskOverflow {
                count: net.edge_count(),
                max: EdgeMask::MAX_EDGES,
            }
        })?;
        let radices = x.radices();
        let configs = radices.iter().fold(1.0f64, |a, &r| a * r as f64);
        (radices.len(), configs)
    } else {
        let fallible = net
            .edges()
            .iter()
            .filter(|e| !(opts.factor_perfect_links && e.fail_prob == 0.0))
            .count();
        (fallible, (1u64 << fallible.min(63)) as f64)
    };
    if fallible > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: fallible,
            max: opts.max_enum_edges,
        });
    }
    Ok(PlanNode::Leaf(Box::new(LeafNode {
        net: net.clone(),
        demand,
        fallible,
        configs,
        index: 0,
    })))
}

/// Rebuilds one side as a standalone subproblem: the side's links plus one
/// perfect link of capacity `x_i` from attach point `i` to a super-terminal
/// (source side: attach → aug; sink side: aug → attach), for every
/// `x_i ≠ 0`. Routing `d = Σ x_i` between the side's demand terminal and
/// the super-terminal then forces exactly `x_i` through attach point `i`,
/// so the subproblem's reliability equals the probability the side
/// realizes the assignment.
fn side_subproblem(
    side: &Side,
    amounts: &[i64],
    d: u64,
) -> Result<(Network, FlowDemand), ReliabilityError> {
    let aug = NodeId(side.net.node_count() as u32);
    let mut b = netgraph::NetworkBuilder::with_nodes(side.net.kind(), side.net.node_count() + 1);
    for (i, e) in side.net.edges().iter().enumerate() {
        match side.net.spectrum(EdgeId::from(i)) {
            Some(sp) => b.add_spectrum_edge(e.src, e.dst, sp.states())?,
            None => b.add_edge(e.src, e.dst, e.capacity, e.fail_prob)?,
        };
    }
    for (i, &x) in amounts.iter().enumerate() {
        if x != 0 {
            if side.is_source_side {
                b.add_perfect_edge(side.attach[i], aug, x as u64)?;
            } else {
                b.add_perfect_edge(aug, side.attach[i], x as u64)?;
            }
        }
    }
    let demand = if side.is_source_side {
        FlowDemand::new(side.terminal, aug, d)
    } else {
        FlowDemand::new(aug, side.terminal, d)
    };
    Ok((b.build(), demand))
}

/// Assigns DFS slot indices to leaves (Leaf, Cut, and side-sweep nodes)
/// after the tree is final, so abandoned split attempts never leave gaps.
fn number(node: &mut PlanNode, next: &mut usize) {
    match node {
        PlanNode::Leaf(l) => {
            l.index = *next;
            *next += 1;
        }
        PlanNode::Cut(c) => {
            c.index = *next;
            *next += 1;
        }
        PlanNode::Preprocess { child, .. }
        | PlanNode::SpReduce { child, .. }
        | PlanNode::Reduce { child, .. } => number(child, next),
        PlanNode::Bridge { left, right, .. } => {
            number(left, next);
            number(right, next);
        }
        PlanNode::DeepCut(dc) => {
            number_side(&mut dc.side_s, next);
            number_side(&mut dc.side_t, next);
        }
        PlanNode::Const { .. } => {}
    }
}

fn number_side(sp: &mut SidePlan, next: &mut usize) {
    match sp {
        SidePlan::Sweep(sw) => {
            sw.index = *next;
            *next += 1;
        }
        SidePlan::Peel { scalar, inner, .. } => {
            number(scalar, next);
            number_side(inner, next);
        }
    }
}

fn hash_node(node: &PlanNode, h: &mut Fnv1a) {
    match node {
        PlanNode::Const { value, .. } => {
            h.write(1);
            h.write(value.to_bits());
        }
        PlanNode::Leaf(l) => {
            h.write(2);
            h.write(l.net.edge_count() as u64);
            h.write(l.net.node_count() as u64);
            h.write(l.fallible as u64);
            h.write(l.demand.source.0 as u64);
            h.write(l.demand.sink.0 as u64);
            h.write(l.demand.demand);
        }
        PlanNode::Preprocess { removed, child } => {
            h.write(3);
            h.write(*removed as u64);
            hash_node(child, h);
        }
        PlanNode::SpReduce { stats, child } => {
            h.write(4);
            h.write(stats.series as u64);
            h.write(stats.parallel as u64);
            h.write(stats.dangling as u64);
            h.write(stats.dropped as u64);
            hash_node(child, h);
        }
        PlanNode::Bridge {
            cut,
            up,
            left,
            right,
        } => {
            h.write(5);
            h.write(cut.len() as u64);
            for e in cut {
                h.write(e.0 as u64);
            }
            h.write(up.to_bits());
            hash_node(left, h);
            hash_node(right, h);
        }
        PlanNode::Cut(c) => {
            h.write(6);
            h.write(c.set.edges.len() as u64);
            for e in &c.set.edges {
                h.write(e.0 as u64);
            }
            h.write(c.assignments as u64);
            h.write(c.net.edge_count() as u64);
            h.write(c.demand.demand);
        }
        PlanNode::DeepCut(dc) => {
            h.write(7);
            h.write(dc.set.edges.len() as u64);
            for e in &dc.set.edges {
                h.write(e.0 as u64);
            }
            h.write(dc.assignments.len() as u64);
            hash_side(&dc.side_s, h);
            hash_side(&dc.side_t, h);
        }
        PlanNode::Reduce {
            stats,
            origin,
            child,
        } => {
            h.write(10);
            h.write(stats.relevance_removed as u64);
            h.write(stats.bound_removed as u64);
            h.write(stats.clamped as u64);
            h.write(stats.merged as u64);
            h.write(stats.contracted as u64);
            h.write(origin.len() as u64);
            for o in origin {
                h.write(o.len() as u64);
                for e in o {
                    h.write(e.0 as u64);
                }
            }
            hash_node(child, h);
        }
    }
}

fn hash_side(sp: &SidePlan, h: &mut Fnv1a) {
    match sp {
        SidePlan::Sweep(sw) => {
            h.write(8);
            h.write(sw.side.net.edge_count() as u64);
            h.write(sw.side.net.node_count() as u64);
            h.write(sw.side.attach.len() as u64);
            h.write(sw.side.terminal.0 as u64);
            h.write(sw.side.is_source_side as u64);
        }
        SidePlan::Peel { up, scalar, inner } => {
            h.write(9);
            h.write(up.to_bits());
            hash_node(scalar, h);
            hash_side(inner, h);
        }
    }
}

fn cost(node: &PlanNode) -> f64 {
    match node {
        PlanNode::Const { .. } => 0.0,
        PlanNode::Leaf(l) => l.configs,
        PlanNode::Preprocess { child, .. }
        | PlanNode::SpReduce { child, .. }
        | PlanNode::Reduce { child, .. } => cost(child),
        PlanNode::Bridge { left, right, .. } => cost(left) + cost(right),
        PlanNode::Cut(c) => {
            let side = |m: usize| (1u64 << m.min(63)) as f64;
            c.assignments as f64 * (side(c.set.side_s_edges) + side(c.set.side_t_edges))
        }
        PlanNode::DeepCut(dc) => side_cost(&dc.side_s) + side_cost(&dc.side_t),
    }
}

fn side_cost(sp: &SidePlan) -> f64 {
    match sp {
        SidePlan::Sweep(sw) => sw.dn as f64 * (1u64 << sw.side.net.edge_count().min(63)) as f64,
        SidePlan::Peel { scalar, inner, .. } => cost(scalar) + side_cost(inner),
    }
}

/// Resume-aware remaining cost: like [`cost`], but leaves already finished
/// (or partially swept) by a previous run count only their leftover work.
/// This is what budget forks apportion on, so finished subtrees get
/// nothing and partially-done ones get their fair remainder.
fn remaining_cost(node: &PlanNode, resume: Option<&PlanCheckpoint>) -> f64 {
    let state = |i: usize| resume.and_then(|ck| ck.leaves.get(i));
    match node {
        PlanNode::Const { .. } => 0.0,
        PlanNode::Leaf(l) => match state(l.index) {
            Some(PlanLeafState::Done { .. } | PlanLeafState::McDone { .. }) => 0.0,
            Some(PlanLeafState::Naive(ck)) => ck.cursor.remaining_configs() as f64,
            Some(PlanLeafState::MonteCarlo(mc)) => mc_remaining(mc),
            _ => l.configs,
        },
        PlanNode::Cut(c) => match state(c.index) {
            Some(PlanLeafState::Done { .. } | PlanLeafState::McDone { .. }) => 0.0,
            Some(PlanLeafState::Cut { side_s, side_t }) => {
                side_s.live.len().max(1) as f64 * side_s.cursor.remaining_configs() as f64
                    + side_t.live.len().max(1) as f64 * side_t.cursor.remaining_configs() as f64
            }
            Some(PlanLeafState::MonteCarlo(mc)) => mc_remaining(mc),
            _ => cost(node),
        },
        PlanNode::Preprocess { child, .. }
        | PlanNode::SpReduce { child, .. }
        | PlanNode::Reduce { child, .. } => remaining_cost(child, resume),
        PlanNode::Bridge { left, right, .. } => {
            remaining_cost(left, resume) + remaining_cost(right, resume)
        }
        PlanNode::DeepCut(dc) => {
            side_remaining(&dc.side_s, resume) + side_remaining(&dc.side_t, resume)
        }
    }
}

/// Remaining work of an interrupted Monte-Carlo leaf, in samples: an honest
/// cost proxy — one sample costs about one solver call, like one config.
fn mc_remaining(mc: &McCheckpoint) -> f64 {
    mc.settings.target.max_samples.saturating_sub(mc.samples) as f64
}

fn side_remaining(sp: &SidePlan, resume: Option<&PlanCheckpoint>) -> f64 {
    match sp {
        SidePlan::Sweep(sw) => match resume.and_then(|ck| ck.leaves.get(sw.index)) {
            Some(PlanLeafState::Side(ck)) => {
                ck.live.len().max(1) as f64 * ck.cursor.remaining_configs() as f64
            }
            _ => side_cost(sp),
        },
        SidePlan::Peel { scalar, inner, .. } => {
            remaining_cost(scalar, resume) + side_remaining(inner, resume)
        }
    }
}

/// Per-slot reporting info, gathered in the same DFS order as [`number`].
struct SlotInfo {
    kind: &'static str,
    predicted: f64,
}

fn collect_slots(node: &PlanNode, resume: Option<&PlanCheckpoint>, out: &mut Vec<SlotInfo>) {
    match node {
        PlanNode::Const { .. } => {}
        PlanNode::Leaf(_) => out.push(SlotInfo {
            kind: "naive",
            predicted: remaining_cost(node, resume),
        }),
        PlanNode::Cut(_) => out.push(SlotInfo {
            kind: "cut",
            predicted: remaining_cost(node, resume),
        }),
        PlanNode::Preprocess { child, .. }
        | PlanNode::SpReduce { child, .. }
        | PlanNode::Reduce { child, .. } => collect_slots(child, resume, out),
        PlanNode::Bridge { left, right, .. } => {
            collect_slots(left, resume, out);
            collect_slots(right, resume, out);
        }
        PlanNode::DeepCut(dc) => {
            collect_side_slots(&dc.side_s, resume, out);
            collect_side_slots(&dc.side_t, resume, out);
        }
    }
}

fn collect_side_slots(sp: &SidePlan, resume: Option<&PlanCheckpoint>, out: &mut Vec<SlotInfo>) {
    match sp {
        SidePlan::Sweep(_) => out.push(SlotInfo {
            kind: "sweep",
            predicted: side_remaining(sp, resume),
        }),
        SidePlan::Peel { scalar, inner, .. } => {
            collect_slots(scalar, resume, out);
            collect_side_slots(inner, resume, out);
        }
    }
}

/// Renders one link id through the enclosing reduction maps, if any:
/// a merged link prints as its member originals joined by `+`.
fn render_id(e: EdgeId, origin: Option<&[Vec<EdgeId>]>) -> String {
    match origin.and_then(|m| m.get(e.index())) {
        Some(orig) if !orig.is_empty() => {
            let parts: Vec<String> = orig.iter().map(|o| o.0.to_string()).collect();
            parts.join("+")
        }
        _ => e.0.to_string(),
    }
}

/// Composes a child reduction map with the enclosing one, so nested
/// [`PlanNode::Reduce`] levels still render in the outermost (original) ids.
fn compose_origin(outer: Option<&[Vec<EdgeId>]>, inner: &[Vec<EdgeId>]) -> Vec<Vec<EdgeId>> {
    inner
        .iter()
        .map(|mids| match outer {
            None => mids.clone(),
            Some(o) => mids
                .iter()
                .flat_map(|m| o.get(m.index()).cloned().unwrap_or_else(|| vec![*m]))
                .collect(),
        })
        .collect()
}

fn render_node(node: &PlanNode, indent: usize, out: &mut String, origin: Option<&[Vec<EdgeId>]>) {
    let pad = "  ".repeat(indent);
    match node {
        PlanNode::Const { value, reason } => {
            out.push_str(&format!("{pad}const {value} ({reason})\n"));
        }
        PlanNode::Leaf(l) => {
            out.push_str(&format!(
                "{pad}leaf #{}: {} links ({} fallible), demand {}, ~{:.3e} configs\n",
                l.index,
                l.net.edge_count(),
                l.fallible,
                l.demand.demand,
                cost(node)
            ));
        }
        PlanNode::Preprocess { removed, child } => {
            out.push_str(&format!("{pad}preprocess: -{removed} irrelevant links\n"));
            render_node(child, indent + 1, out, origin);
        }
        PlanNode::SpReduce { stats, child } => {
            out.push_str(&format!(
                "{pad}sp-reduce: {} series, {} parallel, {} dangling, {} dropped\n",
                stats.series, stats.parallel, stats.dangling, stats.dropped
            ));
            render_node(child, indent + 1, out, origin);
        }
        PlanNode::Reduce {
            stats,
            origin: map,
            child,
        } => {
            out.push_str(&format!(
                "{pad}reduce: -{} irrelevant, -{} capacity-bound, {} clamped, {} merged, {} contracted ({} round{})\n",
                stats.relevance_removed,
                stats.bound_removed,
                stats.clamped,
                stats.merged,
                stats.contracted,
                stats.rounds,
                if stats.rounds == 1 { "" } else { "s" },
            ));
            let composed = compose_origin(origin, map);
            render_node(child, indent + 1, out, Some(&composed));
        }
        PlanNode::Bridge {
            cut,
            up,
            left,
            right,
        } => {
            let ids: Vec<String> = cut.iter().map(|e| render_id(*e, origin)).collect();
            out.push_str(&format!("{pad}bridge cut=[{}] up={up:.6}\n", ids.join(",")));
            // Side subproblems renumber links; the enclosing map does not
            // apply below a split.
            render_node(left, indent + 1, out, None);
            render_node(right, indent + 1, out, None);
        }
        PlanNode::Cut(c) => {
            let ids: Vec<String> = c.set.edges.iter().map(|e| render_id(*e, origin)).collect();
            out.push_str(&format!(
                "{pad}cut #{} [{}]: {} links, |D|={}, sides {}/{} links, ~{:.3e} configs\n",
                c.index,
                ids.join(","),
                c.set.edges.len(),
                c.assignments,
                c.set.side_s_edges,
                c.set.side_t_edges,
                cost(node)
            ));
        }
        PlanNode::DeepCut(dc) => {
            let ids: Vec<String> = dc.set.edges.iter().map(|e| render_id(*e, origin)).collect();
            out.push_str(&format!(
                "{pad}deep-cut [{}]: {} links, |D|={}, ~{:.3e} configs\n",
                ids.join(","),
                dc.set.edges.len(),
                dc.assignments.len(),
                cost(node)
            ));
            render_side(&dc.side_s, indent + 1, out);
            render_side(&dc.side_t, indent + 1, out);
        }
    }
}

fn render_side(sp: &SidePlan, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match sp {
        SidePlan::Sweep(sw) => {
            out.push_str(&format!(
                "{pad}sweep #{}: {} links, |D|={}, ~{:.3e} configs\n",
                sw.index,
                sw.side.net.edge_count(),
                sw.dn,
                side_cost(sp)
            ));
        }
        SidePlan::Peel { up, scalar, inner } => {
            out.push_str(&format!("{pad}peel up={up:.6}\n"));
            render_node(scalar, indent + 1, out, None);
            render_side(inner, indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::naive::reliability_naive;
    use netgraph::NetworkBuilder;

    /// A chain of `segments` triangles joined by bridges; unit capacities
    /// except bridge capacity 2 so demand 2 is routable end to end.
    fn chained_barbell(segments: usize, p: f64) -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let mut prev: Option<NodeId> = None;
        let mut first = None;
        let mut last = None;
        for _ in 0..segments {
            let n = b.add_nodes(3);
            b.add_edge(n[0], n[1], 2, p).unwrap();
            b.add_edge(n[1], n[2], 2, p).unwrap();
            b.add_edge(n[2], n[0], 2, p).unwrap();
            if let Some(prev) = prev {
                b.add_edge(prev, n[0], 2, p).unwrap();
            }
            if first.is_none() {
                first = Some(n[0]);
            }
            prev = Some(n[2]);
            last = Some(n[2]);
        }
        let net = b.build();
        (net, FlowDemand::new(first.unwrap(), last.unwrap(), 1))
    }

    /// Two sides — each a chain of three triangles joined by bridges,
    /// 11 links a side — joined through a 2-link parallel hub: the balanced
    /// cut is the hub pair (|D| = 2, no bridge), each side then peels at
    /// its own internal bridges, and the sides are large enough (2^11 flat
    /// configs each) that the deep split clears the acceptance gate's
    /// per-leaf setup charge instead of falling back to a flat cut.
    fn hub_barbell(p: f64) -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let side = |b: &mut NetworkBuilder| {
            let n = b.add_nodes(9);
            for t in 0..3 {
                let base = 3 * t;
                b.add_edge(n[base], n[base + 1], 2, p).unwrap();
                b.add_edge(n[base + 1], n[base + 2], 2, p).unwrap();
                b.add_edge(n[base + 2], n[base], 2, p).unwrap();
                if t > 0 {
                    b.add_edge(n[base - 1], n[base], 2, p).unwrap();
                }
            }
            (n[0], n[8])
        };
        let (s, left_end) = side(&mut b);
        let (right_start, t) = side(&mut b);
        b.add_edge(left_end, right_start, 1, p).unwrap();
        b.add_edge(left_end, right_start, 1, p).unwrap();
        let net = b.build();
        (net, FlowDemand::new(s, t, 1))
    }

    fn plan_for_k(
        net: &Network,
        demand: FlowDemand,
        opts: &CalcOptions,
        max_k: usize,
    ) -> DecompositionPlan {
        let set = find_bottleneck_set(net, demand.source, demand.sink, max_k).unwrap();
        DecompositionPlan::plan_on_set(net, demand, &set, opts, max_k).unwrap()
    }

    /// On the chained barbell the balanced `k = 3` search prefers a 2-link
    /// cut (a `Cut` engine leaf); the `k = 1` search finds the joining
    /// bridge and recurses. Tests cover both roots.
    fn plan_for(net: &Network, demand: FlowDemand, opts: &CalcOptions) -> DecompositionPlan {
        plan_for_k(net, demand, opts, 3)
    }

    fn run_complete(plan: &DecompositionPlan, opts: &CalcOptions) -> f64 {
        match plan.execute(opts, None).unwrap() {
            PlanOutcome::Complete { reliability, .. } => reliability,
            PlanOutcome::Partial { .. } => panic!("unlimited run must complete"),
        }
    }

    #[test]
    fn plan_matches_naive_on_chained_barbells() {
        for segments in 2..=4 {
            let (net, demand) = chained_barbell(segments, 0.1);
            let opts = CalcOptions::default();
            let exact = reliability_naive(&net, demand, &opts).unwrap();
            for max_k in [1, 3] {
                let plan = plan_for_k(&net, demand, &opts, max_k);
                let r = run_complete(&plan, &opts);
                assert!(
                    (r - exact).abs() < 1e-12,
                    "{segments} segments, k={max_k}: plan {r} vs naive {exact}"
                );
            }
        }
    }

    #[test]
    fn plan_recursion_shrinks_predicted_cost() {
        let (net, demand) = chained_barbell(4, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        assert!(plan.leaf_count() >= 2, "expected a recursive split");
        let flat = CalcOptions {
            max_depth: 0,
            ..CalcOptions::default()
        };
        let one_level = plan_for_k(&net, demand, &flat, 1);
        assert!(
            plan.predicted_cost() < one_level.predicted_cost(),
            "recursive {} vs one-level {}",
            plan.predicted_cost(),
            one_level.predicted_cost()
        );
    }

    #[test]
    fn max_depth_zero_degenerates_to_one_level_cut() {
        let (net, demand) = chained_barbell(2, 0.2);
        let opts = CalcOptions {
            max_depth: 0,
            ..CalcOptions::default()
        };
        let plan = plan_for(&net, demand, &opts);
        assert!(
            matches!(plan.root_node(), PlanNode::Cut(_)),
            "depth 0 must emit the one-level engine"
        );
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12);
    }

    #[test]
    fn render_names_the_nodes() {
        let (net, demand) = chained_barbell(3, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        let text = plan.render();
        assert!(text.contains("bridge"), "{text}");
        assert!(text.contains("leaf #"), "{text}");
        assert!(text.contains("configs"), "{text}");
    }

    #[test]
    fn budgeted_execution_resumes_bit_identically() {
        let (net, demand) = chained_barbell(3, 0.15);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let exact = run_complete(&plan, &opts);
        let tiny = CalcOptions {
            budget: Budget {
                max_configs: Some(3),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        let mut ck = match plan.execute(&tiny, None).unwrap() {
            PlanOutcome::Partial {
                r_low,
                r_high,
                checkpoint,
                ..
            } => {
                assert!(r_low <= exact + 1e-15 && exact <= r_high + 1e-15);
                checkpoint
            }
            PlanOutcome::Complete { .. } => panic!("tiny budget must interrupt"),
        };
        let mut finished = None;
        for _ in 0..100_000 {
            match plan.execute(&tiny, Some(&ck)).unwrap() {
                PlanOutcome::Partial {
                    r_low,
                    r_high,
                    checkpoint,
                    ..
                } => {
                    assert!(r_low <= exact + 1e-15 && exact <= r_high + 1e-15);
                    ck = checkpoint;
                }
                PlanOutcome::Complete { reliability, .. } => {
                    finished = Some(reliability);
                    break;
                }
            }
        }
        let resumed = finished.expect("resume loop must finish");
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "serial resume must be bit-identical"
        );
    }

    #[test]
    fn execute_rejects_a_foreign_checkpoint_shape() {
        let (net, demand) = chained_barbell(3, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let ck = PlanCheckpoint {
            root_cut: plan.root_set().edges.clone(),
            root_max_k: plan.max_k(),
            max_depth: plan.max_depth(),
            recursive_cut_sides: plan.recursive_cut_sides(),
            hybrid: false,
            shape: plan.shape() ^ 1,
            shares: Vec::new(),
            leaves: vec![PlanLeafState::Fresh; plan.leaf_count()],
        };
        assert!(plan.execute(&opts, Some(&ck)).is_err());
    }

    #[test]
    fn plan_matches_naive_on_a_directed_chain() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        // diamond -> bridge -> diamond
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.05).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[3], n[5], 1, 0.2).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        let net = b.build();
        let demand = FlowDemand::new(n[0], n[5], 1);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }

    #[test]
    fn plan_matches_naive_at_demand_two() {
        let (net, mut demand) = chained_barbell(3, 0.1);
        demand.demand = 2;
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }

    #[test]
    fn deep_cut_plan_matches_flat_and_shrinks_cost() {
        let (net, demand) = hub_barbell(0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 2);
        assert!(
            matches!(plan.root_node(), PlanNode::DeepCut(_)),
            "hub barbell must deep-split: {}",
            plan.render()
        );
        assert!(
            plan.leaf_count() >= 3,
            "peeled sides must add slots: {}",
            plan.render()
        );
        // The PR 5 planner (recursive cut sides off) sweeps the same cut
        // whole; the deep plan must agree with it (the flat path itself is
        // naive-validated on smaller instances across the planner suites —
        // this fixture's 2^24 naive sweep is out of unit-test range) and
        // predict less work even after the per-leaf setup charge.
        let pr5 = CalcOptions {
            recursive_cut_sides: false,
            ..CalcOptions::default()
        };
        let flat = plan_for_k(&net, demand, &pr5, 2);
        assert!(
            matches!(flat.root_node(), PlanNode::Cut(_)),
            "with recursion off the root must stay a plain cut"
        );
        let rf = run_complete(&flat, &pr5);
        let r = run_complete(&plan, &opts);
        assert!((r - rf).abs() < 1e-12, "deep plan {r} vs flat {rf}");
        assert!(
            plan.predicted_cost() < flat.predicted_cost(),
            "deep {} vs flat {}",
            plan.predicted_cost(),
            flat.predicted_cost()
        );
    }

    #[test]
    fn deep_budgeted_execution_resumes_bit_identically() {
        let (net, demand) = hub_barbell(0.15);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 2);
        assert!(matches!(plan.root_node(), PlanNode::DeepCut(_)));
        let exact = run_complete(&plan, &opts);
        let tiny = CalcOptions {
            budget: Budget {
                max_configs: Some(2),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        let mut ck = match plan.execute(&tiny, None).unwrap() {
            PlanOutcome::Partial {
                r_low,
                r_high,
                checkpoint,
                ..
            } => {
                assert!(r_low <= exact + 1e-15 && exact <= r_high + 1e-15);
                checkpoint
            }
            PlanOutcome::Complete { .. } => panic!("tiny budget must interrupt"),
        };
        let mut finished = None;
        for _ in 0..100_000 {
            match plan.execute(&tiny, Some(&ck)).unwrap() {
                PlanOutcome::Partial {
                    r_low,
                    r_high,
                    checkpoint,
                    ..
                } => {
                    assert!(
                        r_low <= exact + 1e-15 && exact <= r_high + 1e-15,
                        "[{r_low}, {r_high}] must enclose {exact}"
                    );
                    ck = checkpoint;
                }
                PlanOutcome::Complete { reliability, .. } => {
                    finished = Some(reliability);
                    break;
                }
            }
        }
        let resumed = finished.expect("resume loop must finish");
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "serial deep resume must be bit-identical"
        );
    }

    #[test]
    fn parallel_deep_execution_agrees_with_serial() {
        let (net, demand) = hub_barbell(0.12);
        let serial = CalcOptions::default();
        let parallel = CalcOptions {
            parallel: true,
            ..CalcOptions::default()
        };
        let plan = plan_for_k(&net, demand, &serial, 2);
        assert!(matches!(plan.root_node(), PlanNode::DeepCut(_)));
        let rs = run_complete(&plan, &serial);
        let rp = run_complete(&plan, &parallel);
        assert!(
            (rs - rp).abs() < 1e-12,
            "parallel {rp} vs serial {rs} must agree"
        );
    }

    #[test]
    fn partial_runs_report_budget_shares() {
        let (net, demand) = hub_barbell(0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 2);
        let tiny = CalcOptions {
            budget: Budget {
                max_configs: Some(2),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        match plan.execute(&tiny, None).unwrap() {
            PlanOutcome::Partial {
                checkpoint, slots, ..
            } => {
                assert_eq!(checkpoint.shares.len(), plan.leaf_count());
                let sum: f64 = checkpoint.shares.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "fresh shares must partition the budget, got {sum}"
                );
                assert_eq!(slots.len(), plan.leaf_count());
                assert!(slots.iter().any(|s| s.kind == "sweep"));
                for s in &slots {
                    assert!((s.share - checkpoint.shares[s.index]).abs() < 1e-15);
                    assert!(s.predicted >= 0.0);
                }
            }
            PlanOutcome::Complete { .. } => panic!("tiny budget must interrupt"),
        }
    }

    /// A binary triangle joined by a binary bridge to a side holding a
    /// 3-state link: the planner bridges at the cut and the multi-state
    /// side becomes a scalar leaf swept mixed-radix.
    fn degraded_side_net() -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[1], n[2], 2, 0.1).unwrap();
        b.add_edge(n[2], n[0], 2, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.2).unwrap(); // binary bridge
        b.add_spectrum_edge(n[3], n[4], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.add_edge(n[3], n[4], 1, 0.4).unwrap();
        let net = b.build();
        // demand 2 keeps the spectrum's states distinguishable — at demand 1
        // the state-merge pass would (correctly) collapse it to binary
        (net, FlowDemand::new(n[0], n[4], 2))
    }

    fn count_multistate_leaves(node: &PlanNode, found: &mut usize) {
        match node {
            PlanNode::Leaf(l) if l.net.has_multistate() => {
                *found += 1;
                let expected: f64 = netgraph::StateExpansion::build(&l.net)
                    .unwrap()
                    .radices()
                    .iter()
                    .fold(1.0, |a, &r| a * r as f64);
                assert_eq!(l.configs, expected, "leaf cost must be the radix product");
            }
            PlanNode::Leaf(_) => {}
            PlanNode::Preprocess { child, .. }
            | PlanNode::SpReduce { child, .. }
            | PlanNode::Reduce { child, .. } => count_multistate_leaves(child, found),
            PlanNode::Bridge { left, right, .. } => {
                count_multistate_leaves(left, found);
                count_multistate_leaves(right, found);
            }
            _ => {}
        }
    }

    #[test]
    fn multistate_side_becomes_scalar_leaf_and_matches_naive() {
        let (net, demand) = degraded_side_net();
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        // no Cut/DeepCut machinery may touch the spectrum side
        let mut multistate_leaves = 0;
        count_multistate_leaves(plan.root_node(), &mut multistate_leaves);
        assert!(
            multistate_leaves >= 1,
            "the spectrum side must survive into a scalar leaf:\n{}",
            plan.render()
        );
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        let r = run_complete(&plan, &opts);
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }

    #[test]
    fn multistate_net_with_nonsingleton_cut_sweeps_whole() {
        // double diamond with a 2-link binary cut, one side link multi-state:
        // |D| > 1, so split_node must refuse to decompose and sweep whole
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 2, 0.1).unwrap();
        b.add_edge(n[1], n[3], 2, 0.1).unwrap(); // cut
        b.add_edge(n[2], n[4], 2, 0.1).unwrap(); // cut
        b.add_spectrum_edge(n[3], n[5], &[(0, 0.1), (1, 0.4), (2, 0.5)])
            .unwrap();
        b.add_edge(n[4], n[5], 2, 0.1).unwrap();
        let net = b.build();
        let demand = FlowDemand::new(n[0], n[5], 2);
        let opts = CalcOptions::default();
        let set = find_bottleneck_set(&net, demand.source, demand.sink, 2).unwrap();
        assert!(set.edges.iter().all(|&e| net.spectrum(e).is_none()));
        let plan = DecompositionPlan::plan_on_set(&net, demand, &set, &opts, 2).unwrap();
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        let r = run_complete(&plan, &opts);
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }

    #[test]
    fn binary_leaf_configs_unchanged() {
        let (net, demand) = chained_barbell(2, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        fn walk(node: &PlanNode) {
            match node {
                PlanNode::Leaf(l) => {
                    assert_eq!(l.configs, (1u64 << l.fallible.min(63)) as f64);
                }
                PlanNode::Preprocess { child, .. }
                | PlanNode::SpReduce { child, .. }
                | PlanNode::Reduce { child, .. } => walk(child),
                PlanNode::Bridge { left, right, .. } => {
                    walk(left);
                    walk(right);
                }
                _ => {}
            }
        }
        walk(plan.root_node());
    }
}
