//! Recursive decomposition planner and plan interpreter.
//!
//! The paper's Eq. 1 bridge split and the Section III–IV bottleneck
//! decomposition are both *one-level* rewrites. This module generalizes them
//! into a [`DecompositionPlan`]: a tree whose internal nodes are combinators
//! and whose leaves are atomic subnetworks swept by the existing engines.
//!
//! Node kinds and their interval-combination rules (every child evaluates to
//! a certified interval `[lo, hi]` around its exact reliability):
//!
//! - [`PlanNode::Const`] — a value decided at plan time (zero demand,
//!   infeasible demand, empty assignment set): `[v, v]`.
//! - [`PlanNode::Preprocess`] — relevance reduction removed dead links; the
//!   child is computed on the reduced network and the interval passes
//!   through unchanged (the reduction is exact).
//! - [`PlanNode::SpReduce`] — series-parallel reduction for unit demand on
//!   undirected networks; exact, so the interval passes through unchanged.
//! - [`PlanNode::Bridge`] — a cut whose assignment set is a single
//!   all-nonnegative assignment `x`. Flow conservation forces *exactly*
//!   `x_i` across cut link `i`, so the sides are independent given the cut
//!   links with `x_i ≠ 0` alive (Eq. 1 generalized to `k ≥ 1`):
//!   `[up·lo_L·lo_R, up·hi_L·hi_R]` with `up = Π_{x_i≠0} (1 − p(e_i))`.
//! - [`PlanNode::Cut`] — a general bottleneck split executed by the PR-1
//!   spectrum engine, which produces its own certified interval.
//! - [`PlanNode::Leaf`] — an atomic subnetwork swept by the budgeted naive
//!   engine, which produces its own certified interval.
//!
//! The interpreter ([`DecompositionPlan::execute`]) threads one shared
//! [`BudgetSentinel`] through every leaf sweep, optionally runs the two
//! sides of a `Bridge` on rayon, and — when the budget runs out — returns a
//! [`PlanOutcome::Partial`] whose [`PlanCheckpoint`] records each leaf
//! slot's resume state in DFS order. The plan tree itself is *not*
//! serialized: planning is deterministic, so resume re-derives it and
//! verifies a shape fingerprint. A serial interrupted run resumed to
//! completion reproduces the uninterrupted value bit for bit, because leaf
//! execution order, per-leaf sweeps (PR-2 semantics), and the combination
//! arithmetic are all deterministic.

use std::sync::Mutex;

use netgraph::{EdgeId, EdgeMask, GraphKind, Network, NodeId};

use crate::algorithm::{reliability_bottleneck_anytime_on, BottleneckOutcome, BottleneckReport};
use crate::assign::{crossing_ranges, enumerate_assignments, Assignment};
use crate::bottleneck::{find_bottleneck_set, BottleneckSet};
use crate::budget::BudgetSentinel;
use crate::certcache::SweepStats;
use crate::checkpoint::{Fnv1a, PlanCheckpoint, PlanLeafState};
use crate::decompose::{decompose, Side};
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::naive::{reliability_naive_anytime_on, NaiveOutcome};
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;
use crate::preprocess::relevance_reduce;
use crate::spreduce::{reduce_unit_demand, ReductionStats};

/// A leaf: an atomic subnetwork swept exhaustively by the naive engine.
#[derive(Clone, Debug)]
pub struct LeafNode {
    /// The subnetwork.
    pub net: Network,
    /// The demand inside the subnetwork.
    pub demand: FlowDemand,
    /// Fallible links the sweep enumerates (`2^fallible` configurations).
    pub fallible: usize,
    /// DFS slot index into the plan checkpoint's leaf array.
    pub index: usize,
}

/// A general bottleneck split executed by the one-level spectrum engine.
#[derive(Clone, Debug)]
pub struct CutNode {
    /// The (sub)network the split applies to.
    pub net: Network,
    /// The demand inside that network.
    pub demand: FlowDemand,
    /// The validated bottleneck set.
    pub set: BottleneckSet,
    /// Number of feasible flow assignments across the cut (`|D|`).
    pub assignments: usize,
    /// DFS slot index into the plan checkpoint's leaf array.
    pub index: usize,
}

/// One node of a [`DecompositionPlan`] tree.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// A value decided at plan time.
    Const {
        /// The exact reliability of this subtree.
        value: f64,
        /// Why the planner could decide it without sweeping.
        reason: &'static str,
    },
    /// An atomic subnetwork swept by the budgeted naive engine.
    Leaf(Box<LeafNode>),
    /// Relevance reduction removed links irrelevant to the demand; the
    /// child is planned on the reduced network (exact pass-through).
    Preprocess {
        /// Links removed by the reduction.
        removed: usize,
        /// The plan for the reduced network.
        child: Box<PlanNode>,
    },
    /// Series-parallel reduction for unit demand on an undirected network
    /// (exact pass-through).
    SpReduce {
        /// What the reduction collapsed.
        stats: ReductionStats,
        /// The plan for the reduced network.
        child: Box<PlanNode>,
    },
    /// Eq. 1 generalized: a cut with a single all-nonnegative assignment
    /// `x`. Conservation forces exactly `x_i` across link `i`, so
    /// `R = up · R_left · R_right` with `up = Π_{x_i≠0} (1 − p(e_i))`.
    Bridge {
        /// The cut links.
        cut: Vec<EdgeId>,
        /// Survival probability of the cut links the assignment uses.
        up: f64,
        /// Source-side subproblem (with a super-terminal absorbing `x`).
        left: Box<PlanNode>,
        /// Sink-side subproblem (with a super-terminal producing `x`).
        right: Box<PlanNode>,
    },
    /// A bottleneck split with more than one feasible assignment, executed
    /// by the one-level spectrum engine.
    Cut(Box<CutNode>),
}

/// Result of executing a plan under a budget.
#[derive(Clone, Debug)]
pub enum PlanOutcome {
    /// The budget sufficed: every leaf ran to completion.
    Complete {
        /// The exact reliability (up to compensated `f64` rounding).
        reliability: f64,
        /// Merged sweep-engine counters over all leaves.
        stats: SweepStats,
    },
    /// The budget ran out; `[r_low, r_high]` is a rigorous interval.
    Partial {
        /// Certified lower bound.
        r_low: f64,
        /// Certified upper bound.
        r_high: f64,
        /// Mean explored fraction over the plan's leaf slots.
        explored: f64,
        /// Resume state (leaf states in DFS order plus re-planning inputs).
        checkpoint: PlanCheckpoint,
        /// Merged sweep-engine counters for this slice of work.
        stats: SweepStats,
    },
}

/// A decomposition plan: the tree, the root split it was built on, and the
/// planner knobs needed to re-derive it deterministically on resume.
#[derive(Clone, Debug)]
pub struct DecompositionPlan {
    root: PlanNode,
    root_set: BottleneckSet,
    root_assignments: usize,
    max_k: usize,
    max_depth: usize,
    shape: u64,
    slots: usize,
}

fn mismatch(reason: impl Into<String>) -> ReliabilityError {
    ReliabilityError::CheckpointMismatch {
        reason: reason.into(),
    }
}

impl DecompositionPlan {
    /// Builds a plan whose root is a split on the given (already validated)
    /// bottleneck set; the sides are then decomposed recursively up to
    /// `opts.max_depth` nested splits, searching recursive cuts of up to
    /// `max_k` links.
    pub fn plan_on_set(
        net: &Network,
        demand: FlowDemand,
        set: &BottleneckSet,
        opts: &CalcOptions,
        max_k: usize,
    ) -> Result<DecompositionPlan, ReliabilityError> {
        demand.validate(net)?;
        let (mut root, root_assignments) = if demand.demand == 0 {
            (
                PlanNode::Const {
                    value: 1.0,
                    reason: "zero demand",
                },
                0,
            )
        } else {
            let ranges = crossing_ranges(
                net,
                &set.edges,
                &set.forward_oriented,
                demand.demand,
                opts.assignment_model,
            );
            let assignments = enumerate_assignments(demand.demand, &ranges);
            let count = assignments.len();
            let node = split_node(net, demand, set, assignments, opts.max_depth, opts, max_k)?;
            (node, count)
        };
        let mut slots = 0;
        number(&mut root, &mut slots);
        let mut h = Fnv1a::new();
        h.write(max_k as u64);
        h.write(opts.max_depth as u64);
        hash_node(&root, &mut h);
        Ok(DecompositionPlan {
            root,
            root_set: set.clone(),
            root_assignments,
            max_k,
            max_depth: opts.max_depth,
            shape: h.finish(),
            slots,
        })
    }

    /// The root node, for inspection and rendering.
    pub fn root_node(&self) -> &PlanNode {
        &self.root
    }

    /// The root bottleneck set the plan splits on.
    pub fn root_set(&self) -> &BottleneckSet {
        &self.root_set
    }

    /// Number of feasible assignments at the root split.
    pub fn root_assignments(&self) -> usize {
        self.root_assignments
    }

    /// Shape fingerprint; a resumed run must re-derive an identical value.
    pub fn shape(&self) -> u64 {
        self.shape
    }

    /// Number of leaf slots (atomic sweeps) in the tree.
    pub fn leaf_count(&self) -> usize {
        self.slots
    }

    /// `max_depth` the plan was built with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// `max_k` recursive cut searches used.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Total configurations the leaf sweeps will enumerate in the worst
    /// case — the quantity recursion is meant to shrink.
    pub fn predicted_cost(&self) -> f64 {
        cost(&self.root)
    }

    /// The plan's run report, shaped like the one-level engine's so callers
    /// (and tests) keep seeing the root geometry.
    pub fn report(&self, net: &Network, sweep: SweepStats) -> BottleneckReport {
        BottleneckReport {
            set: self.root_set.clone(),
            assignment_count: self.root_assignments,
            alpha: self.root_set.alpha(net.edge_count()),
            sweep,
        }
    }

    /// Renders the tree with per-node link counts and predicted sweep cost.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan: {} leaf slot(s), root |D| = {}, max_k = {}, max_depth = {}, predicted cost ~{:.3e} configs\n",
            self.slots,
            self.root_assignments,
            self.max_k,
            self.max_depth,
            self.predicted_cost()
        );
        render_node(&self.root, 1, &mut out);
        out
    }

    /// Executes the plan bottom-up under `opts.budget`, optionally resuming
    /// from a checkpoint produced by an earlier interrupted execution.
    pub fn execute(
        &self,
        opts: &CalcOptions,
        resume: Option<&PlanCheckpoint>,
    ) -> Result<PlanOutcome, ReliabilityError> {
        if let Some(ck) = resume {
            if ck.shape != self.shape {
                return Err(mismatch(format!(
                    "checkpoint plan shape {:016x} does not match the re-derived plan {:016x}",
                    ck.shape, self.shape
                )));
            }
            if ck.leaves.len() != self.slots {
                return Err(mismatch(format!(
                    "checkpoint has {} leaf states, plan has {} slots",
                    ck.leaves.len(),
                    self.slots
                )));
            }
        }
        let slots: Vec<Mutex<LeafSlot>> = (0..self.slots)
            .map(|i| {
                let state = match resume {
                    Some(ck) => ck.leaves[i].clone(),
                    None => PlanLeafState::Fresh,
                };
                let explored = match &state {
                    PlanLeafState::Done { .. } => 1.0,
                    _ => 0.0,
                };
                Mutex::new(LeafSlot {
                    state,
                    explored,
                    stats: SweepStats::default(),
                })
            })
            .collect();
        let sentinel = opts.budget.start();
        let ctx = ExecCtx {
            opts,
            sentinel: &sentinel,
            slots: &slots,
        };
        let eval = exec_node(&self.root, &ctx)?;
        let slots: Vec<LeafSlot> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect();
        let mut stats = SweepStats::default();
        for s in &slots {
            stats.merge(&s.stats);
        }
        if eval.complete {
            return Ok(PlanOutcome::Complete {
                reliability: eval.lo,
                stats,
            });
        }
        let explored = if slots.is_empty() {
            1.0
        } else {
            slots.iter().map(|s| s.explored).sum::<f64>() / slots.len() as f64
        };
        let r_low = eval.lo.clamp(0.0, 1.0);
        Ok(PlanOutcome::Partial {
            r_low,
            r_high: eval.hi.clamp(r_low, 1.0),
            explored: explored.clamp(0.0, 1.0),
            checkpoint: PlanCheckpoint {
                root_cut: self.root_set.edges.clone(),
                root_max_k: self.max_k,
                max_depth: self.max_depth,
                shape: self.shape,
                leaves: slots.into_iter().map(|s| s.state).collect(),
            },
            stats,
        })
    }
}

struct LeafSlot {
    state: PlanLeafState,
    explored: f64,
    stats: SweepStats,
}

struct ExecCtx<'a> {
    opts: &'a CalcOptions,
    sentinel: &'a BudgetSentinel,
    slots: &'a [Mutex<LeafSlot>],
}

/// A certified interval around a subtree's exact reliability.
#[derive(Clone, Copy)]
struct Eval {
    lo: f64,
    hi: f64,
    complete: bool,
}

fn lock(m: &Mutex<LeafSlot>) -> std::sync::MutexGuard<'_, LeafSlot> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn exec_node(node: &PlanNode, ctx: &ExecCtx<'_>) -> Result<Eval, ReliabilityError> {
    match node {
        PlanNode::Const { value, .. } => Ok(Eval {
            lo: *value,
            hi: *value,
            complete: true,
        }),
        PlanNode::Preprocess { child, .. } | PlanNode::SpReduce { child, .. } => {
            exec_node(child, ctx)
        }
        PlanNode::Bridge {
            up, left, right, ..
        } => {
            let (l, r) = if ctx.opts.parallel {
                rayon::join(|| exec_node(left, ctx), || exec_node(right, ctx))
            } else {
                // Serial order is left-then-right: together with the naive
                // engine's serial determinism this makes interrupted runs
                // resume bit-identically.
                (exec_node(left, ctx), exec_node(right, ctx))
            };
            let (l, r) = (l?, r?);
            Ok(Eval {
                lo: up * l.lo * r.lo,
                hi: up * l.hi * r.hi,
                complete: l.complete && r.complete,
            })
        }
        PlanNode::Leaf(leaf) => {
            let mut slot = lock(&ctx.slots[leaf.index]);
            let prev = std::mem::replace(&mut slot.state, PlanLeafState::Fresh);
            let resume = match prev {
                PlanLeafState::Done { value } => {
                    slot.state = PlanLeafState::Done { value };
                    return Ok(Eval {
                        lo: value,
                        hi: value,
                        complete: true,
                    });
                }
                PlanLeafState::Naive(ck) => Some(ck),
                PlanLeafState::Fresh => None,
                PlanLeafState::Cut { .. } => {
                    return Err(mismatch("checkpoint stores a cut state for a naive leaf"))
                }
            };
            let out = reliability_naive_anytime_on(
                &leaf.net,
                leaf.demand,
                ctx.opts,
                ctx.sentinel,
                resume.as_ref(),
            )?;
            Ok(settle_naive(&mut slot, out))
        }
        PlanNode::Cut(cut) => {
            let mut slot = lock(&ctx.slots[cut.index]);
            let prev = std::mem::replace(&mut slot.state, PlanLeafState::Fresh);
            let resume = match prev {
                PlanLeafState::Done { value } => {
                    slot.state = PlanLeafState::Done { value };
                    return Ok(Eval {
                        lo: value,
                        hi: value,
                        complete: true,
                    });
                }
                PlanLeafState::Cut { side_s, side_t } => Some((side_s, side_t)),
                PlanLeafState::Fresh => None,
                PlanLeafState::Naive(_) => {
                    return Err(mismatch("checkpoint stores a naive state for a cut leaf"))
                }
            };
            let out = reliability_bottleneck_anytime_on(
                &cut.net,
                cut.demand,
                &cut.set,
                ctx.opts,
                ctx.sentinel,
                resume.as_ref().map(|(s, t)| (s.as_ref(), t.as_ref())),
            )?;
            match out {
                BottleneckOutcome::Complete {
                    reliability,
                    report,
                } => {
                    slot.stats.merge(&report.sweep);
                    slot.explored = 1.0;
                    slot.state = PlanLeafState::Done { value: reliability };
                    Ok(Eval {
                        lo: reliability,
                        hi: reliability,
                        complete: true,
                    })
                }
                BottleneckOutcome::Partial {
                    r_low,
                    r_high,
                    explored,
                    side_s,
                    side_t,
                    report,
                } => {
                    slot.stats.merge(&report.sweep);
                    slot.explored = explored;
                    slot.state = PlanLeafState::Cut { side_s, side_t };
                    Ok(Eval {
                        lo: r_low,
                        hi: r_high,
                        complete: false,
                    })
                }
            }
        }
    }
}

fn settle_naive(slot: &mut LeafSlot, out: NaiveOutcome) -> Eval {
    match out {
        NaiveOutcome::Complete { reliability, stats } => {
            slot.stats.merge(&stats);
            slot.explored = 1.0;
            slot.state = PlanLeafState::Done { value: reliability };
            Eval {
                lo: reliability,
                hi: reliability,
                complete: true,
            }
        }
        NaiveOutcome::Partial {
            r_low,
            r_high,
            explored,
            checkpoint,
            stats,
        } => {
            slot.stats.merge(&stats);
            slot.explored = explored;
            slot.state = PlanLeafState::Naive(checkpoint);
            Eval {
                lo: r_low,
                hi: r_high,
                complete: false,
            }
        }
    }
}

/// Builds the node for a split on an explicit, validated set. Emits a
/// [`PlanNode::Bridge`] (recursing into the sides) when the assignment set
/// is a single all-nonnegative assignment and depth remains; otherwise a
/// [`PlanNode::Cut`] for the one-level engine, after checking the same
/// enumeration bounds that engine would.
fn split_node(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    assignments: Vec<Assignment>,
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<PlanNode, ReliabilityError> {
    if assignments.is_empty() {
        return Ok(PlanNode::Const {
            value: 0.0,
            reason: "cut capacity below demand",
        });
    }
    let singleton = assignments.len() == 1 && assignments[0].amounts.iter().all(|&x| x >= 0);
    if depth > 0 && singleton {
        let amounts = &assignments[0].amounts;
        let mut up = 1.0;
        for (i, &e) in set.edges.iter().enumerate() {
            if amounts[i] != 0 {
                up *= 1.0 - net.edges()[e.index()].fail_prob;
            }
        }
        let dec = decompose(net, &demand, set);
        let (left_net, left_demand) = side_subproblem(&dec.side_s, amounts, demand.demand)?;
        let (right_net, right_demand) = side_subproblem(&dec.side_t, amounts, demand.demand)?;
        let left = build_node(&left_net, left_demand, depth - 1, opts, max_k)?;
        let right = build_node(&right_net, right_demand, depth - 1, opts, max_k)?;
        return Ok(PlanNode::Bridge {
            cut: set.edges.clone(),
            up,
            left: Box::new(left),
            right: Box::new(right),
        });
    }
    // One-level engine: check its enumeration bounds at plan time, so the
    // caller learns the plan is infeasible before any budget is spent.
    if assignments.len() > opts.max_assignments || assignments.len() > 31 {
        return Err(ReliabilityError::TooManyAssignments {
            count: assignments.len(),
            max: opts.max_assignments.min(31),
        });
    }
    let widest = set.side_s_edges.max(set.side_t_edges);
    if widest > opts.max_side_edges {
        return Err(ReliabilityError::SideTooLarge {
            count: widest,
            max: opts.max_side_edges,
        });
    }
    Ok(PlanNode::Cut(Box::new(CutNode {
        net: net.clone(),
        demand,
        set: set.clone(),
        assignments: assignments.len(),
        index: 0,
    })))
}

/// Recursively plans a subproblem: constant-folds decided cases, peels
/// reductions, splits on a worthwhile bottleneck while depth remains, and
/// otherwise emits a naive leaf (checking its enumeration bound).
fn build_node(
    net: &Network,
    demand: FlowDemand,
    depth: usize,
    opts: &CalcOptions,
    max_k: usize,
) -> Result<PlanNode, ReliabilityError> {
    if demand.demand == 0 || demand.source == demand.sink {
        return Ok(PlanNode::Const {
            value: 1.0,
            reason: "zero demand",
        });
    }
    demand.validate(net)?;
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let child = build_node(&reduced.net, reduced.demand, depth, opts, max_k)?;
        return Ok(PlanNode::Preprocess {
            removed: reduced.removed,
            child: Box::new(child),
        });
    }
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(PlanNode::Const {
            value: 0.0,
            reason: "demand exceeds the all-alive max flow",
        });
    }
    if demand.demand == 1 && net.kind() == GraphKind::Undirected {
        let red = reduce_unit_demand(net, demand.source, demand.sink);
        if red.net.edge_count() < net.edge_count() {
            let child = if red.source == red.sink {
                PlanNode::Const {
                    value: 1.0,
                    reason: "terminals merged by series-parallel reduction",
                }
            } else {
                build_node(
                    &red.net,
                    FlowDemand::new(red.source, red.sink, 1),
                    depth,
                    opts,
                    max_k,
                )?
            };
            return Ok(PlanNode::SpReduce {
                stats: red.stats,
                child: Box::new(child),
            });
        }
    }
    if depth > 0 {
        if let Ok(set) = find_bottleneck_set(net, demand.source, demand.sink, max_k) {
            // Same heuristic as the auto strategy, plus: a split with an
            // empty side gains nothing (its subproblem is the whole
            // network again) and could recurse in place.
            let worth_it = set.side_s_edges > 0
                && set.side_t_edges > 0
                && set.side_s_edges.max(set.side_t_edges) + 2 < net.edge_count();
            if worth_it {
                let ranges = crossing_ranges(
                    net,
                    &set.edges,
                    &set.forward_oriented,
                    demand.demand,
                    opts.assignment_model,
                );
                let assignments = enumerate_assignments(demand.demand, &ranges);
                match split_node(net, demand, &set, assignments, depth, opts, max_k) {
                    Ok(node) => return Ok(node),
                    // The split exceeds the one-level engine's bounds; a
                    // plain leaf may still fit.
                    Err(
                        ReliabilityError::TooManyAssignments { .. }
                        | ReliabilityError::SideTooLarge { .. },
                    ) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    leaf_node(net, demand, opts)
}

fn leaf_node(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<PlanNode, ReliabilityError> {
    if net.edge_count() > EdgeMask::MAX_EDGES {
        return Err(ReliabilityError::EdgeMaskOverflow {
            count: net.edge_count(),
            max: EdgeMask::MAX_EDGES,
        });
    }
    let fallible = net
        .edges()
        .iter()
        .filter(|e| !(opts.factor_perfect_links && e.fail_prob == 0.0))
        .count();
    if fallible > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: fallible,
            max: opts.max_enum_edges,
        });
    }
    Ok(PlanNode::Leaf(Box::new(LeafNode {
        net: net.clone(),
        demand,
        fallible,
        index: 0,
    })))
}

/// Rebuilds one side as a standalone subproblem: the side's links plus one
/// perfect link of capacity `x_i` from attach point `i` to a super-terminal
/// (source side: attach → aug; sink side: aug → attach), for every
/// `x_i ≠ 0`. Routing `d = Σ x_i` between the side's demand terminal and
/// the super-terminal then forces exactly `x_i` through attach point `i`,
/// so the subproblem's reliability equals the probability the side
/// realizes the assignment.
fn side_subproblem(
    side: &Side,
    amounts: &[i64],
    d: u64,
) -> Result<(Network, FlowDemand), ReliabilityError> {
    let aug = NodeId(side.net.node_count() as u32);
    let mut b = netgraph::NetworkBuilder::with_nodes(side.net.kind(), side.net.node_count() + 1);
    for e in side.net.edges() {
        b.add_edge(e.src, e.dst, e.capacity, e.fail_prob)?;
    }
    for (i, &x) in amounts.iter().enumerate() {
        if x != 0 {
            if side.is_source_side {
                b.add_perfect_edge(side.attach[i], aug, x as u64)?;
            } else {
                b.add_perfect_edge(aug, side.attach[i], x as u64)?;
            }
        }
    }
    let demand = if side.is_source_side {
        FlowDemand::new(side.terminal, aug, d)
    } else {
        FlowDemand::new(aug, side.terminal, d)
    };
    Ok((b.build(), demand))
}

/// Assigns DFS slot indices to leaves (Leaf and Cut nodes) after the tree
/// is final, so abandoned split attempts never leave gaps.
fn number(node: &mut PlanNode, next: &mut usize) {
    match node {
        PlanNode::Leaf(l) => {
            l.index = *next;
            *next += 1;
        }
        PlanNode::Cut(c) => {
            c.index = *next;
            *next += 1;
        }
        PlanNode::Preprocess { child, .. } | PlanNode::SpReduce { child, .. } => {
            number(child, next)
        }
        PlanNode::Bridge { left, right, .. } => {
            number(left, next);
            number(right, next);
        }
        PlanNode::Const { .. } => {}
    }
}

fn hash_node(node: &PlanNode, h: &mut Fnv1a) {
    match node {
        PlanNode::Const { value, .. } => {
            h.write(1);
            h.write(value.to_bits());
        }
        PlanNode::Leaf(l) => {
            h.write(2);
            h.write(l.net.edge_count() as u64);
            h.write(l.net.node_count() as u64);
            h.write(l.fallible as u64);
            h.write(l.demand.source.0 as u64);
            h.write(l.demand.sink.0 as u64);
            h.write(l.demand.demand);
        }
        PlanNode::Preprocess { removed, child } => {
            h.write(3);
            h.write(*removed as u64);
            hash_node(child, h);
        }
        PlanNode::SpReduce { stats, child } => {
            h.write(4);
            h.write(stats.series as u64);
            h.write(stats.parallel as u64);
            h.write(stats.dangling as u64);
            h.write(stats.dropped as u64);
            hash_node(child, h);
        }
        PlanNode::Bridge {
            cut,
            up,
            left,
            right,
        } => {
            h.write(5);
            h.write(cut.len() as u64);
            for e in cut {
                h.write(e.0 as u64);
            }
            h.write(up.to_bits());
            hash_node(left, h);
            hash_node(right, h);
        }
        PlanNode::Cut(c) => {
            h.write(6);
            h.write(c.set.edges.len() as u64);
            for e in &c.set.edges {
                h.write(e.0 as u64);
            }
            h.write(c.assignments as u64);
            h.write(c.net.edge_count() as u64);
            h.write(c.demand.demand);
        }
    }
}

fn cost(node: &PlanNode) -> f64 {
    match node {
        PlanNode::Const { .. } => 0.0,
        PlanNode::Leaf(l) => (1u64 << l.fallible.min(63)) as f64,
        PlanNode::Preprocess { child, .. } | PlanNode::SpReduce { child, .. } => cost(child),
        PlanNode::Bridge { left, right, .. } => cost(left) + cost(right),
        PlanNode::Cut(c) => {
            let side = |m: usize| (1u64 << m.min(63)) as f64;
            c.assignments as f64 * (side(c.set.side_s_edges) + side(c.set.side_t_edges))
        }
    }
}

fn render_node(node: &PlanNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        PlanNode::Const { value, reason } => {
            out.push_str(&format!("{pad}const {value} ({reason})\n"));
        }
        PlanNode::Leaf(l) => {
            out.push_str(&format!(
                "{pad}leaf #{}: {} links ({} fallible), demand {}, ~{:.3e} configs\n",
                l.index,
                l.net.edge_count(),
                l.fallible,
                l.demand.demand,
                cost(node)
            ));
        }
        PlanNode::Preprocess { removed, child } => {
            out.push_str(&format!("{pad}preprocess: -{removed} irrelevant links\n"));
            render_node(child, indent + 1, out);
        }
        PlanNode::SpReduce { stats, child } => {
            out.push_str(&format!(
                "{pad}sp-reduce: {} series, {} parallel, {} dangling, {} dropped\n",
                stats.series, stats.parallel, stats.dangling, stats.dropped
            ));
            render_node(child, indent + 1, out);
        }
        PlanNode::Bridge {
            cut,
            up,
            left,
            right,
        } => {
            let ids: Vec<String> = cut.iter().map(|e| e.0.to_string()).collect();
            out.push_str(&format!("{pad}bridge cut=[{}] up={up:.6}\n", ids.join(",")));
            render_node(left, indent + 1, out);
            render_node(right, indent + 1, out);
        }
        PlanNode::Cut(c) => {
            let ids: Vec<String> = c.set.edges.iter().map(|e| e.0.to_string()).collect();
            out.push_str(&format!(
                "{pad}cut #{} [{}]: {} links, |D|={}, sides {}/{} links, ~{:.3e} configs\n",
                c.index,
                ids.join(","),
                c.set.edges.len(),
                c.assignments,
                c.set.side_s_edges,
                c.set.side_t_edges,
                cost(node)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::naive::reliability_naive;
    use netgraph::NetworkBuilder;

    /// A chain of `segments` triangles joined by bridges; unit capacities
    /// except bridge capacity 2 so demand 2 is routable end to end.
    fn chained_barbell(segments: usize, p: f64) -> (Network, FlowDemand) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let mut prev: Option<NodeId> = None;
        let mut first = None;
        let mut last = None;
        for _ in 0..segments {
            let n = b.add_nodes(3);
            b.add_edge(n[0], n[1], 2, p).unwrap();
            b.add_edge(n[1], n[2], 2, p).unwrap();
            b.add_edge(n[2], n[0], 2, p).unwrap();
            if let Some(prev) = prev {
                b.add_edge(prev, n[0], 2, p).unwrap();
            }
            if first.is_none() {
                first = Some(n[0]);
            }
            prev = Some(n[2]);
            last = Some(n[2]);
        }
        let net = b.build();
        (net, FlowDemand::new(first.unwrap(), last.unwrap(), 1))
    }

    fn plan_for_k(
        net: &Network,
        demand: FlowDemand,
        opts: &CalcOptions,
        max_k: usize,
    ) -> DecompositionPlan {
        let set = find_bottleneck_set(net, demand.source, demand.sink, max_k).unwrap();
        DecompositionPlan::plan_on_set(net, demand, &set, opts, max_k).unwrap()
    }

    /// On the chained barbell the balanced `k = 3` search prefers a 2-link
    /// cut (a `Cut` engine leaf); the `k = 1` search finds the joining
    /// bridge and recurses. Tests cover both roots.
    fn plan_for(net: &Network, demand: FlowDemand, opts: &CalcOptions) -> DecompositionPlan {
        plan_for_k(net, demand, opts, 3)
    }

    fn run_complete(plan: &DecompositionPlan, opts: &CalcOptions) -> f64 {
        match plan.execute(opts, None).unwrap() {
            PlanOutcome::Complete { reliability, .. } => reliability,
            PlanOutcome::Partial { .. } => panic!("unlimited run must complete"),
        }
    }

    #[test]
    fn plan_matches_naive_on_chained_barbells() {
        for segments in 2..=4 {
            let (net, demand) = chained_barbell(segments, 0.1);
            let opts = CalcOptions::default();
            let exact = reliability_naive(&net, demand, &opts).unwrap();
            for max_k in [1, 3] {
                let plan = plan_for_k(&net, demand, &opts, max_k);
                let r = run_complete(&plan, &opts);
                assert!(
                    (r - exact).abs() < 1e-12,
                    "{segments} segments, k={max_k}: plan {r} vs naive {exact}"
                );
            }
        }
    }

    #[test]
    fn plan_recursion_shrinks_predicted_cost() {
        let (net, demand) = chained_barbell(4, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        assert!(plan.leaf_count() >= 2, "expected a recursive split");
        let flat = CalcOptions {
            max_depth: 0,
            ..CalcOptions::default()
        };
        let one_level = plan_for_k(&net, demand, &flat, 1);
        assert!(
            plan.predicted_cost() < one_level.predicted_cost(),
            "recursive {} vs one-level {}",
            plan.predicted_cost(),
            one_level.predicted_cost()
        );
    }

    #[test]
    fn max_depth_zero_degenerates_to_one_level_cut() {
        let (net, demand) = chained_barbell(2, 0.2);
        let opts = CalcOptions {
            max_depth: 0,
            ..CalcOptions::default()
        };
        let plan = plan_for(&net, demand, &opts);
        assert!(
            matches!(plan.root_node(), PlanNode::Cut(_)),
            "depth 0 must emit the one-level engine"
        );
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12);
    }

    #[test]
    fn render_names_the_nodes() {
        let (net, demand) = chained_barbell(3, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for_k(&net, demand, &opts, 1);
        let text = plan.render();
        assert!(text.contains("bridge"), "{text}");
        assert!(text.contains("leaf #"), "{text}");
        assert!(text.contains("configs"), "{text}");
    }

    #[test]
    fn budgeted_execution_resumes_bit_identically() {
        let (net, demand) = chained_barbell(3, 0.15);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let exact = run_complete(&plan, &opts);
        let tiny = CalcOptions {
            budget: Budget {
                max_configs: Some(3),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        };
        let mut ck = match plan.execute(&tiny, None).unwrap() {
            PlanOutcome::Partial {
                r_low,
                r_high,
                checkpoint,
                ..
            } => {
                assert!(r_low <= exact + 1e-15 && exact <= r_high + 1e-15);
                checkpoint
            }
            PlanOutcome::Complete { .. } => panic!("tiny budget must interrupt"),
        };
        let mut finished = None;
        for _ in 0..100_000 {
            match plan.execute(&tiny, Some(&ck)).unwrap() {
                PlanOutcome::Partial {
                    r_low,
                    r_high,
                    checkpoint,
                    ..
                } => {
                    assert!(r_low <= exact + 1e-15 && exact <= r_high + 1e-15);
                    ck = checkpoint;
                }
                PlanOutcome::Complete { reliability, .. } => {
                    finished = Some(reliability);
                    break;
                }
            }
        }
        let resumed = finished.expect("resume loop must finish");
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "serial resume must be bit-identical"
        );
    }

    #[test]
    fn execute_rejects_a_foreign_checkpoint_shape() {
        let (net, demand) = chained_barbell(3, 0.1);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let ck = PlanCheckpoint {
            root_cut: plan.root_set().edges.clone(),
            root_max_k: plan.max_k(),
            max_depth: plan.max_depth(),
            shape: plan.shape() ^ 1,
            leaves: vec![PlanLeafState::Fresh; plan.leaf_count()],
        };
        assert!(plan.execute(&opts, Some(&ck)).is_err());
    }

    #[test]
    fn plan_matches_naive_on_a_directed_chain() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        // diamond -> bridge -> diamond
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.05).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[3], n[5], 1, 0.2).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        let net = b.build();
        let demand = FlowDemand::new(n[0], n[5], 1);
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }

    #[test]
    fn plan_matches_naive_at_demand_two() {
        let (net, mut demand) = chained_barbell(3, 0.1);
        demand.demand = 2;
        let opts = CalcOptions::default();
        let plan = plan_for(&net, demand, &opts);
        let r = run_complete(&plan, &opts);
        let exact = reliability_naive(&net, demand, &opts).unwrap();
        assert!((r - exact).abs() < 1e-12, "plan {r} vs naive {exact}");
    }
}
