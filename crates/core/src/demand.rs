//! The flow demand `D = (s, t, d)`.

use netgraph::{Network, NodeId};

use crate::error::ReliabilityError;

/// A flow demand: deliver a stream of bit-rate `demand` (divisible into
/// `demand` unit sub-streams that may take different paths) from `source`
/// to `sink`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowDemand {
    /// The media server / source node `s`.
    pub source: NodeId,
    /// The subscriber / sink node `t`.
    pub sink: NodeId,
    /// The stream bit-rate `d`, in unit sub-streams.
    pub demand: u64,
}

impl FlowDemand {
    /// Creates a demand.
    pub fn new(source: NodeId, sink: NodeId, demand: u64) -> Self {
        FlowDemand {
            source,
            sink,
            demand,
        }
    }

    /// Checks the demand against a network: endpoints must exist and be
    /// distinct unless the demand is zero.
    pub fn validate(&self, net: &Network) -> Result<(), ReliabilityError> {
        net.check_node(self.source)?;
        net.check_node(self.sink)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn validate_checks_nodes() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        let net = b.build();
        assert!(FlowDemand::new(n[0], n[1], 1).validate(&net).is_ok());
        assert!(FlowDemand::new(n[0], NodeId(9), 1).validate(&net).is_err());
    }
}
