//! α-bottleneck link sets (Section III-A): discovery and validation.
//!
//! A link set `E* ⊆ E` is a set of α-bottleneck links w.r.t. `s` and `t` when
//! (1) removing `E*` disconnects `s` from `t` but removing any proper subset
//! does not (minimality), (2) `|E*|` is a small constant, and (3) each of the
//! two connected components left by the removal has at most `α|E|` links.
//! Connectivity is taken in the undirected sense, matching the paper's use of
//! "connected components".

use netgraph::{connected_components, find_bridges, EdgeId, Network, NodeId};

use crate::error::ReliabilityError;

/// A validated bottleneck link set together with its decomposition geometry.
#[derive(Clone, Debug)]
pub struct BottleneckSet {
    /// The bottleneck links `E* = {e_1, …, e_k}`, in increasing id order.
    pub edges: Vec<EdgeId>,
    /// Nodes of the component containing the source, sorted.
    pub side_s_nodes: Vec<NodeId>,
    /// Nodes of the component containing the sink, sorted.
    pub side_t_nodes: Vec<NodeId>,
    /// Links inside the source-side component.
    pub side_s_edges: usize,
    /// Links inside the sink-side component.
    pub side_t_edges: usize,
    /// For each bottleneck link (in `edges` order): true when its `src`
    /// endpoint lies on the source side (the link is oriented s-side →
    /// t-side). Relevant for directed networks.
    pub forward_oriented: Vec<bool>,
}

impl BottleneckSet {
    /// Number of bottleneck links `k`.
    pub fn k(&self) -> usize {
        self.edges.len()
    }

    /// The balance factor `α`: the larger side's share of all links,
    /// `max(|E_s|, |E_t|) / |E|`.
    pub fn alpha(&self, total_edges: usize) -> f64 {
        if total_edges == 0 {
            return 0.0;
        }
        self.side_s_edges.max(self.side_t_edges) as f64 / total_edges as f64
    }

    /// Total capacity of the bottleneck links (if `< d`, reliability is 0).
    pub fn capacity(&self, net: &Network) -> u64 {
        self.edges.iter().map(|&e| net.edge(e).capacity).sum()
    }
}

/// Checks whether removing `removed` disconnects `s` from `t`
/// (undirected sense).
fn separates(net: &Network, s: NodeId, t: NodeId, removed: &[EdgeId]) -> bool {
    let comps = connected_components(net, |e| removed.iter().any(|r| r.index() == e));
    !comps.same(s, t)
}

/// Validates that `edges` is a bottleneck link set for `(s, t)` and computes
/// its decomposition geometry.
pub fn validate_bottleneck_set(
    net: &Network,
    s: NodeId,
    t: NodeId,
    edges: &[EdgeId],
) -> Result<BottleneckSet, ReliabilityError> {
    net.check_node(s)?;
    net.check_node(t)?;
    for &e in edges {
        if e.index() >= net.edge_count() {
            return Err(netgraph::GraphError::EdgeOutOfRange {
                edge: e,
                edge_count: net.edge_count(),
            }
            .into());
        }
    }
    let mut edges: Vec<EdgeId> = edges.to_vec();
    edges.sort_unstable();
    edges.dedup();

    let comps = connected_components(net, |e| edges.iter().any(|r| r.index() == e));
    if comps.same(s, t) {
        return Err(ReliabilityError::NotSeparating);
    }
    if comps.count() != 2 {
        return Err(ReliabilityError::NotTwoComponents {
            components: comps.count(),
        });
    }
    // minimality: no (k-1)-subset separates (separation is monotone under
    // removing more links, so checking one-removed subsets suffices)
    for skip in 0..edges.len() {
        let witness: Vec<EdgeId> = edges
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, &e)| e)
            .collect();
        if separates(net, s, t, &witness) {
            return Err(ReliabilityError::NotMinimal { witness });
        }
    }
    let s_label = comps.label(s);
    let t_label = comps.label(t);
    let side_s_nodes = comps.members(s_label);
    let side_t_nodes = comps.members(t_label);
    let mut side_s_edges = 0;
    let mut side_t_edges = 0;
    for (id, e) in net.edge_refs() {
        if edges.contains(&id) {
            continue;
        }
        if comps.label(e.src) == s_label && comps.label(e.dst) == s_label {
            side_s_edges += 1;
        } else {
            debug_assert!(
                comps.label(e.src) == t_label && comps.label(e.dst) == t_label,
                "non-bottleneck link must lie within one side"
            );
            side_t_edges += 1;
        }
    }
    let forward_oriented = edges
        .iter()
        .map(|&e| comps.label(net.edge(e).src) == s_label)
        .collect();
    Ok(BottleneckSet {
        edges,
        side_s_nodes,
        side_t_nodes,
        side_s_edges,
        side_t_edges,
        forward_oriented,
    })
}

/// Searches for the most balanced bottleneck set with at most `max_k` links:
/// minimizes `max(|E_s|, |E_t|)`, breaking ties toward smaller `k`.
///
/// Bridges (`k = 1`) are found by Tarjan's algorithm; larger sets by
/// exhaustive combination search (`O(|E|^k)` candidate sets, each checked
/// with a linear-time component labelling) — an acceptable preprocessing
/// cost for the small constant `k` the paper assumes.
pub fn find_bottleneck_set(
    net: &Network,
    s: NodeId,
    t: NodeId,
    max_k: usize,
) -> Result<BottleneckSet, ReliabilityError> {
    let mut best: Option<BottleneckSet> = None;
    for_each_bottleneck_set(net, s, t, max_k, |cand| {
        let score = cand.side_s_edges.max(cand.side_t_edges);
        let better = match &best {
            None => true,
            Some(b) => {
                let bs = b.side_s_edges.max(b.side_t_edges);
                score < bs || (score == bs && cand.k() < b.k())
            }
        };
        if better {
            best = Some(cand);
        }
    })?;
    best.ok_or(ReliabilityError::NoBottleneckFound)
}

/// Enumerates *every* bottleneck set with at most `max_k` links (same search
/// as [`find_bottleneck_set`], collecting instead of keeping the best). For
/// analysis tooling; the count can grow quickly with `max_k`.
pub fn find_all_bottleneck_sets(
    net: &Network,
    s: NodeId,
    t: NodeId,
    max_k: usize,
) -> Result<Vec<BottleneckSet>, ReliabilityError> {
    let mut out = Vec::new();
    for_each_bottleneck_set(net, s, t, max_k, |set| out.push(set))?;
    Ok(out)
}

fn for_each_bottleneck_set(
    net: &Network,
    s: NodeId,
    t: NodeId,
    max_k: usize,
    mut consider: impl FnMut(BottleneckSet),
) -> Result<(), ReliabilityError> {
    net.check_node(s)?;
    net.check_node(t)?;
    // Multi-state links never join a cut in v1: the decomposition engines
    // condition on a cut link being up or down, which has no meaning for a
    // link with more than two capacity states. Candidacy is restricted to
    // binary links; the sides may still contain multi-state links (the
    // planner sweeps such sides whole).
    let eligible = |e: EdgeId| -> bool { net.spectrum(e).is_none() };
    // k = 1 fast path: separating bridges
    for e in find_bridges(net) {
        if !eligible(e) {
            continue;
        }
        if let Ok(set) = validate_bottleneck_set(net, s, t, &[e]) {
            consider(set);
        }
    }
    // k >= 2: exhaustive combinations over the eligible links
    let pool: Vec<EdgeId> = (0..net.edge_count())
        .map(EdgeId::from)
        .filter(|&e| eligible(e))
        .collect();
    let m = pool.len();
    let mut combo: Vec<usize> = Vec::new();
    for k in 2..=max_k.min(m) {
        combo.clear();
        combo.extend(0..k);
        loop {
            let cand: Vec<EdgeId> = combo.iter().map(|&i| pool[i]).collect();
            if let Ok(set) = validate_bottleneck_set(net, s, t, &cand) {
                consider(set);
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if combo[i] != i + m - k {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    combo.clear();
                    break;
                }
            }
            if combo.is_empty() {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    /// Two triangles joined by a bridge (Fig. 2 shape).
    fn bridge_graph() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[1], n[2], 2, 0.1).unwrap();
        b.add_edge(n[2], n[0], 2, 0.1).unwrap();
        b.add_edge(n[2], n[3], 4, 0.1).unwrap(); // bridge e3
        b.add_edge(n[3], n[4], 2, 0.1).unwrap();
        b.add_edge(n[4], n[5], 2, 0.1).unwrap();
        b.add_edge(n[5], n[3], 2, 0.1).unwrap();
        (b.build(), n[0], n[5])
    }

    /// Two diamonds joined by two links (k = 2 bottleneck).
    fn two_link_graph() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap(); // 0: s->a
        b.add_edge(n[0], n[2], 2, 0.1).unwrap(); // 1: s->b
        b.add_edge(n[1], n[3], 2, 0.1).unwrap(); // 2: bottleneck a->c
        b.add_edge(n[2], n[4], 2, 0.1).unwrap(); // 3: bottleneck b->d
        b.add_edge(n[3], n[5], 2, 0.1).unwrap(); // 4: c->t
        b.add_edge(n[4], n[5], 2, 0.1).unwrap(); // 5: d->t
        (b.build(), n[0], n[5])
    }

    #[test]
    fn validates_bridge() {
        let (net, s, t) = bridge_graph();
        let set = validate_bottleneck_set(&net, s, t, &[EdgeId(3)]).unwrap();
        assert_eq!(set.k(), 1);
        assert_eq!(set.side_s_edges, 3);
        assert_eq!(set.side_t_edges, 3);
        assert!((set.alpha(7) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(set.capacity(&net), 4);
        assert_eq!(set.forward_oriented, vec![true]);
        assert_eq!(set.side_s_nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(set.side_t_nodes, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn rejects_non_separating() {
        let (net, s, t) = bridge_graph();
        assert_eq!(
            validate_bottleneck_set(&net, s, t, &[EdgeId(0)]).unwrap_err(),
            ReliabilityError::NotSeparating
        );
    }

    #[test]
    fn rejects_non_minimal() {
        let (net, s, t) = bridge_graph();
        let err = validate_bottleneck_set(&net, s, t, &[EdgeId(0), EdgeId(3)]).unwrap_err();
        match err {
            ReliabilityError::NotMinimal { witness } => assert_eq!(witness, vec![EdgeId(3)]),
            other => panic!("expected NotMinimal, got {other:?}"),
        }
    }

    #[test]
    fn rejects_three_components() {
        // path s - a - t: removing both path edges isolates a
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        let net = b.build();
        let err = validate_bottleneck_set(&net, n[0], n[2], &[EdgeId(0), EdgeId(1)]).unwrap_err();
        // the set is also non-minimal, but the component count is checked
        // first: the isolated middle node makes three components
        assert_eq!(err, ReliabilityError::NotTwoComponents { components: 3 });
    }

    #[test]
    fn validates_two_link_cut() {
        let (net, s, t) = two_link_graph();
        let set = validate_bottleneck_set(&net, s, t, &[EdgeId(2), EdgeId(3)]).unwrap();
        assert_eq!(set.k(), 2);
        assert_eq!(set.side_s_edges, 2);
        assert_eq!(set.side_t_edges, 2);
        assert_eq!(set.forward_oriented, vec![true, true]);
    }

    #[test]
    fn finds_bridge_automatically() {
        let (net, s, t) = bridge_graph();
        let set = find_bottleneck_set(&net, s, t, 3).unwrap();
        assert_eq!(set.edges, vec![EdgeId(3)]);
    }

    #[test]
    fn finds_two_link_cut_automatically() {
        let (net, s, t) = two_link_graph();
        let set = find_bottleneck_set(&net, s, t, 3).unwrap();
        // several minimal 2-cuts achieve perfectly balanced 2+2 sides (e.g.
        // {2,3}, but also "diagonal" cuts like {0,5}); any of them is optimal
        assert_eq!(set.k(), 2);
        assert_eq!(set.side_s_edges.max(set.side_t_edges), 2);
        // and the returned set must itself validate
        validate_bottleneck_set(&net, s, t, &set.edges).unwrap();
    }

    #[test]
    fn find_all_enumerates_every_cut() {
        let (net, s, t) = two_link_graph();
        let all = find_all_bottleneck_sets(&net, s, t, 2).unwrap();
        // exactly the minimal 2-cuts of the double diamond (no bridges)
        let mut cuts: Vec<Vec<EdgeId>> = all.iter().map(|b| b.edges.clone()).collect();
        cuts.sort();
        assert!(cuts.contains(&vec![EdgeId(0), EdgeId(1)]));
        assert!(cuts.contains(&vec![EdgeId(2), EdgeId(3)]));
        assert!(cuts.contains(&vec![EdgeId(4), EdgeId(5)]));
        // every reported set validates independently
        for set in &all {
            validate_bottleneck_set(&net, s, t, &set.edges).unwrap();
        }
    }

    #[test]
    fn find_all_includes_bridges() {
        let (net, s, t) = bridge_graph();
        let all = find_all_bottleneck_sets(&net, s, t, 1).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].edges, vec![EdgeId(3)]);
    }

    #[test]
    fn no_bottleneck_in_dense_graph() {
        // complete graph on 4 nodes: 2-edge-connected everywhere, no cut of
        // size <= 2 leaves exactly two components... actually K4 has 3-cuts
        // only; with max_k = 2 nothing is found
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(n[i], n[j], 1, 0.1).unwrap();
            }
        }
        let net = b.build();
        assert_eq!(
            find_bottleneck_set(&net, n[0], n[3], 2).unwrap_err(),
            ReliabilityError::NoBottleneckFound
        );
    }

    #[test]
    fn multistate_links_are_not_cut_candidates() {
        // the bridge graph, but with the bridge carrying a capacity spectrum:
        // no reported set may contain the multi-state link, even though the
        // bridge alone would be the best-balanced cut
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[1], n[2], 2, 0.1).unwrap();
        b.add_edge(n[2], n[0], 2, 0.1).unwrap();
        b.add_spectrum_edge(n[2], n[3], &[(0, 0.1), (2, 0.4), (4, 0.5)])
            .unwrap();
        b.add_edge(n[3], n[4], 2, 0.1).unwrap();
        b.add_edge(n[4], n[5], 2, 0.1).unwrap();
        b.add_edge(n[5], n[3], 2, 0.1).unwrap();
        let net = b.build();
        let all = find_all_bottleneck_sets(&net, n[0], n[5], 3).unwrap();
        assert!(!all.is_empty(), "binary 2-cuts around the triangles exist");
        for set in &all {
            assert!(
                !set.edges.contains(&EdgeId(3)),
                "multi-state bridge must never be a candidate: {:?}",
                set.edges
            );
        }
        // binary cuts elsewhere are still found when they exist
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 3, 0.1).unwrap(); // binary bridge
        b.add_edge(n[2], n[3], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.2).unwrap();
        let net = b.build();
        let set = find_bottleneck_set(&net, n[0], n[3], 2).unwrap();
        assert_eq!(set.edges, vec![EdgeId(2)]);
    }

    #[test]
    fn backward_oriented_edge_detected() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap(); // s -> a
        b.add_edge(n[1], n[2], 2, 0.1).unwrap(); // bottleneck a -> b (forward)
        b.add_edge(n[3], n[1], 2, 0.1).unwrap(); // bottleneck c -> a (backward!)
        b.add_edge(n[2], n[3], 2, 0.1).unwrap(); // b -> c
                                                 // hmm: this graph's cut {1, 2} separates {s,a} from {b,c}
        let net = b.build();
        let set = validate_bottleneck_set(&net, n[0], n[2], &[EdgeId(1), EdgeId(2)]).unwrap();
        assert_eq!(set.forward_oriented, vec![true, false]);
    }
}
