//! Accumulating the side spectra into the reliability (Section IV).
//!
//! For every availability configuration `E'' ⊆ E*` of the bottleneck links
//! (probability `p_{E''}`, Eq. 2), the assignments supported by `E''`
//! (Definition 1) are the only ways sub-streams can cross. The conditional
//! reliability is
//!
//! `r_{E''} = P(∃ b ∈ D_{E''} : side-s realizes b ∧ side-t realizes b)`
//!
//! and the two sides are independent, so for any subset `X ⊆ D_{E''}`,
//! `P(both sides realize all of X) = P_s(X) · P_t(X)` — the key fact behind
//! procedure ACCUMULATION. The overall reliability is
//! `R = Σ_{E''} p_{E''} · r_{E''}` (Eq. 3).
//!
//! Three algebraically identical evaluations of `r_{E''}` are provided:
//!
//! * [`AccumulationMethod::PaperDirect`] — the paper's procedure verbatim:
//!   for each subset `X`, compute `p_X` by scanning the masses, then apply
//!   inclusion–exclusion. `O(4^{|D|})` per bottleneck configuration.
//! * [`AccumulationMethod::ZetaInclusionExclusion`] — precompute all
//!   superset sums with one zeta transform (`O(|D|·2^{|D|})`), then the same
//!   inclusion–exclusion reads them off.
//! * [`AccumulationMethod::Complement`] — rewrite
//!   `r_{E''} = Σ_m mass_s[m] · (T_t − q_t[m ∩ D_{E''}])` where
//!   `q_t[S] = P(side t realizes nothing in S)`; no alternating signs, which
//!   is the numerically gentlest form.

use crate::weight::Weight;

/// Which evaluation of procedure ACCUMULATION to use. All three return the
/// same value (property-tested); they differ in cost and numerical style.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AccumulationMethod {
    /// The paper's direct per-subset scan.
    PaperDirect,
    /// Zeta-transform (superset sums) + inclusion–exclusion.
    ZetaInclusionExclusion,
    /// Complement identity, subtraction-free inner loop.
    #[default]
    Complement,
}

/// Probability of bottleneck availability configuration `links_up`
/// (bit `i` set = link `e_i` is up) — Eq. 2.
pub fn cut_config_weight<W: Weight>(cut_weights: &[(W, W)], links_up: u32) -> W {
    let mut p = W::one();
    for (i, w) in cut_weights.iter().enumerate() {
        p = p.mul(if links_up >> i & 1 == 1 { &w.0 } else { &w.1 });
    }
    p
}

/// In-place superset-sum (zeta) transform:
/// `f[X] ← Σ_{m ⊇ X} f[m]`.
pub fn superset_sums<W: Weight>(f: &mut [W], bits: usize) {
    debug_assert_eq!(f.len(), 1 << bits);
    for i in 0..bits {
        for x in 0..f.len() {
            if x & (1 << i) == 0 {
                let hi = f[x | 1 << i].clone();
                f[x] = f[x].add(&hi);
            }
        }
    }
}

/// In-place subset-sum (zeta) transform:
/// `f[X] ← Σ_{m ⊆ X} f[m]`.
pub fn subset_sums<W: Weight>(f: &mut [W], bits: usize) {
    debug_assert_eq!(f.len(), 1 << bits);
    for i in 0..bits {
        for x in 0..f.len() {
            if x & (1 << i) != 0 {
                let lo = f[x ^ (1 << i)].clone();
                f[x] = f[x].add(&lo);
            }
        }
    }
}

/// `r_{E''}` by the paper's direct procedure: scan the masses for every
/// subset `X` of the supported set.
fn r_direct<W: Weight>(supported: u32, mass_s: &[W], mass_t: &[W]) -> W {
    let mut r = W::zero();
    if supported == 0 {
        return r;
    }
    // iterate nonempty submasks X of `supported`
    let mut x = supported;
    loop {
        let p_s = mass_superset_scan(mass_s, x);
        let p_t = mass_superset_scan(mass_t, x);
        let term = p_s.mul(&p_t);
        if (x.count_ones() & 1) == 1 {
            r = r.add(&term);
        } else {
            r = r.sub(&term);
        }
        x = (x - 1) & supported;
        if x == 0 {
            break;
        }
    }
    r
}

/// `Σ { mass[m] : m ⊇ x }` by direct scan (the paper's Step 1).
fn mass_superset_scan<W: Weight>(mass: &[W], x: u32) -> W {
    let mut p = W::zero();
    for (m, w) in mass.iter().enumerate() {
        if m as u32 & x == x {
            p = p.add(w);
        }
    }
    p
}

/// `r_{E''}` from precomputed superset sums.
fn r_zeta<W: Weight>(supported: u32, sup_s: &[W], sup_t: &[W]) -> W {
    let mut r = W::zero();
    if supported == 0 {
        return r;
    }
    let mut x = supported;
    loop {
        let term = sup_s[x as usize].mul(&sup_t[x as usize]);
        if (x.count_ones() & 1) == 1 {
            r = r.add(&term);
        } else {
            r = r.sub(&term);
        }
        x = (x - 1) & supported;
        if x == 0 {
            break;
        }
    }
    r
}

/// `r_{E''}` by the complement identity, given `none_t[S] = P(side t realizes
/// nothing in S)` and the total sink-side mass `total_t`.
fn r_complement<W: Weight>(supported: u32, mass_s: &[W], none_t: &[W], total_t: &W) -> W {
    let mut r = W::zero();
    if supported == 0 {
        return r;
    }
    for (m, w) in mass_s.iter().enumerate() {
        if w.is_zero() {
            continue;
        }
        let s = m as u32 & supported;
        if s == 0 {
            continue; // side s realizes nothing usable: contributes 0
        }
        let hit = total_t.sub(&none_t[s as usize]);
        r = r.add(&w.mul(&hit));
    }
    r
}

/// Combines the two side spectra and the bottleneck-link probabilities into
/// the reliability (Eq. 3 over all `E'' ⊆ E*`).
///
/// * `cut_weights[i]` — `(1 − p(e_i), p(e_i))` of bottleneck link `i`;
/// * `support[E'']` — assignment-index mask of `D_{E''}` for every of the
///   `2^k` bottleneck configurations (see
///   [`crate::assign::supported_assignment_masks`]);
/// * `mass_s`, `mass_t` — the side spectra over `2^|D|` realization masks.
pub fn combine<W: Weight>(
    cut_weights: &[(W, W)],
    support: &[u32],
    mass_s: &[W],
    mass_t: &[W],
    assign_count: usize,
    method: AccumulationMethod,
) -> W {
    let k = cut_weights.len();
    assert_eq!(
        support.len(),
        1 << k,
        "one supported-set mask per cut configuration"
    );
    assert_eq!(mass_s.len(), 1 << assign_count);
    assert_eq!(mass_t.len(), 1 << assign_count);

    // method-specific precomputation, bundled with the method so the loop
    // below matches on one total enum instead of unwrapping options
    enum Pre<W> {
        Direct,
        Zeta(Vec<W>, Vec<W>),
        Comp(Vec<W>, W),
    }
    let pre = match method {
        AccumulationMethod::PaperDirect => Pre::Direct,
        AccumulationMethod::ZetaInclusionExclusion => {
            let mut sup_s = mass_s.to_vec();
            let mut sup_t = mass_t.to_vec();
            superset_sums(&mut sup_s, assign_count);
            superset_sums(&mut sup_t, assign_count);
            Pre::Zeta(sup_s, sup_t)
        }
        AccumulationMethod::Complement => {
            // none_t[S] = Σ_{m ∩ S = ∅} mass_t[m] = subset-sums of mass_t,
            // read at the complement of S
            let mut sub_t = mass_t.to_vec();
            subset_sums(&mut sub_t, assign_count);
            let full = (1usize << assign_count) - 1;
            let none_t: Vec<W> = (0..=full).map(|s| sub_t[full & !s].clone()).collect();
            let total_t = sub_t[full].clone();
            Pre::Comp(none_t, total_t)
        }
    };

    let mut total = W::zero();
    for links_up in 0..(1u32 << k) {
        let supported = support[links_up as usize];
        if supported == 0 {
            continue;
        }
        let r = match &pre {
            Pre::Direct => r_direct(supported, mass_s, mass_t),
            Pre::Zeta(sup_s, sup_t) => r_zeta(supported, sup_s, sup_t),
            Pre::Comp(none_t, total_t) => r_complement(supported, mass_s, none_t, total_t),
        };
        if !r.is_zero() {
            total = total.add(&cut_config_weight(cut_weights, links_up).mul(&r));
        }
    }
    total
}

/// Rigorous `[R_low, R_high]` around the reliability when the two side
/// spectra are only *partially* swept.
///
/// `mass_s` / `mass_t` hold the mass of the configurations examined so far,
/// so each sums to its side's explored probability; `unexplored_*` is the
/// residual (`1 − Σ mass`). The bounds assign that residual to the two
/// extremes a side configuration can realize:
///
/// * **lower**: unexplored configurations realize *nothing* (mask `0`) —
///   realization events are monotone, and the empty set is below every
///   outcome, so the combined value can only shrink;
/// * **upper**: unexplored configurations realize *every live assignment*
///   (`live_mask_*`) — the spectrum's support is contained in the live mask,
///   so this dominates every possible outcome.
///
/// Both evaluations reuse [`combine`] on spectra that are again full
/// probability distributions, so the bounds inherit its exactness and stay
/// in `[0, 1]` for probability weights.
#[allow(clippy::too_many_arguments)]
pub fn combine_interval<W: Weight>(
    cut_weights: &[(W, W)],
    support: &[u32],
    mass_s: &[W],
    unexplored_s: &W,
    live_mask_s: u32,
    mass_t: &[W],
    unexplored_t: &W,
    live_mask_t: u32,
    assign_count: usize,
    method: AccumulationMethod,
) -> (W, W) {
    let inject = |mass: &[W], u: &W, slot: u32| -> Vec<W> {
        let mut v = mass.to_vec();
        v[slot as usize] = v[slot as usize].add(u);
        v
    };
    let lo = combine(
        cut_weights,
        support,
        &inject(mass_s, unexplored_s, 0),
        &inject(mass_t, unexplored_t, 0),
        assign_count,
        method,
    );
    let hi = combine(
        cut_weights,
        support,
        &inject(mass_s, unexplored_s, live_mask_s),
        &inject(mass_t, unexplored_t, live_mask_t),
        assign_count,
        method,
    );
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactmath::BigRational;

    #[test]
    fn zeta_transforms() {
        // f over 2 bits: f[00]=1, f[01]=2, f[10]=4, f[11]=8
        let mut f = vec![1.0, 2.0, 4.0, 8.0];
        superset_sums(&mut f, 2);
        assert_eq!(f, vec![15.0, 10.0, 12.0, 8.0]);
        let mut g = vec![1.0, 2.0, 4.0, 8.0];
        subset_sums(&mut g, 2);
        assert_eq!(g, vec![1.0, 3.0, 5.0, 15.0]);
    }

    #[test]
    fn cut_weight_is_product() {
        let w = vec![(0.9, 0.1), (0.8, 0.2)];
        assert!((cut_config_weight(&w, 0b11) - 0.72).abs() < 1e-15);
        assert!((cut_config_weight(&w, 0b01) - 0.9 * 0.2).abs() < 1e-15);
        assert!((cut_config_weight(&w, 0b00) - 0.02).abs() < 1e-15);
        let total: f64 = (0..4u32).map(|c| cut_config_weight(&w, c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    /// Example 6 of the paper, verbatim: two assignments b1, b2; side-s
    /// configurations c1..c4 and side-t configurations c5..c8 realizing
    /// the sets of Table I. With all configurations equally likely (prob 1/4
    /// each) the inclusion–exclusion gives
    /// r = p{b1} + p{b2} − p{b1,b2}
    ///   = (p(c1)+p(c3))(p(c5)+p(c7)) + (p(c2)+p(c3)+p(c4))(p(c5)+p(c6))
    ///     − p(c3)p(c5).
    #[test]
    fn example_6_of_the_paper() {
        let q = 0.25f64;
        // masses over assignment masks (bit0 = b1, bit1 = b2)
        // c1 -> {b1}, c2 -> {b2}, c3 -> {b1,b2}, c4 -> {b2}
        let mass_s = vec![0.0, q, 2.0 * q, q]; // [none, {b1}, {b2}, {b1,b2}]
                                               // c5 -> {b1,b2}, c6 -> {b2}, c7 -> {b1}, c8 -> {}
        let mass_t = vec![q, q, q, q];
        let expected = (q + q) * (q + q) + (q + q + q) * (q + q) - q * q;

        // single always-up bottleneck configuration supporting both
        let cut = vec![(1.0, 0.0)];
        let support = vec![0b00u32, 0b11];
        for method in [
            AccumulationMethod::PaperDirect,
            AccumulationMethod::ZetaInclusionExclusion,
            AccumulationMethod::Complement,
        ] {
            let r = combine(&cut, &support, &mass_s, &mass_t, 2, method);
            assert!(
                (r - expected).abs() < 1e-12,
                "{method:?}: {r} vs {expected}"
            );
        }
    }

    #[test]
    fn methods_agree_on_random_masses() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let dn = rng.gen_range(1..=5usize);
            let k = rng.gen_range(1..=3usize);
            let mass_s: Vec<f64> = (0..1 << dn).map(|_| rng.gen::<f64>()).collect();
            let mass_t: Vec<f64> = (0..1 << dn).map(|_| rng.gen::<f64>()).collect();
            let cut: Vec<(f64, f64)> = (0..k)
                .map(|_| {
                    let p = rng.gen::<f64>();
                    (1.0 - p, p)
                })
                .collect();
            let support: Vec<u32> = (0..1u32 << k)
                .map(|_| rng.gen_range(0..1u32 << dn))
                .collect();
            let a = combine(
                &cut,
                &support,
                &mass_s,
                &mass_t,
                dn,
                AccumulationMethod::PaperDirect,
            );
            let b = combine(
                &cut,
                &support,
                &mass_s,
                &mass_t,
                dn,
                AccumulationMethod::ZetaInclusionExclusion,
            );
            let c = combine(
                &cut,
                &support,
                &mass_s,
                &mass_t,
                dn,
                AccumulationMethod::Complement,
            );
            assert!((a - b).abs() < 1e-9, "direct {a} vs zeta {b}");
            assert!((a - c).abs() < 1e-9, "direct {a} vs complement {c}");
        }
    }

    #[test]
    fn exact_weights_work_too() {
        let half = BigRational::from_ratio(1, 2);
        let quarter = BigRational::from_ratio(1, 4);
        let mass_s = vec![
            BigRational::zero(),
            half.clone(),
            quarter.clone(),
            quarter.clone(),
        ];
        let mass_t = mass_s.clone();
        let cut = vec![(
            BigRational::from_ratio(9, 10),
            BigRational::from_ratio(1, 10),
        )];
        let support = vec![0u32, 0b11];
        let a = combine(
            &cut,
            &support,
            &mass_s,
            &mass_t,
            2,
            AccumulationMethod::PaperDirect,
        );
        let b = combine(
            &cut,
            &support,
            &mass_s,
            &mass_t,
            2,
            AccumulationMethod::Complement,
        );
        let c = combine(
            &cut,
            &support,
            &mass_s,
            &mass_t,
            2,
            AccumulationMethod::ZetaInclusionExclusion,
        );
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_zero());
    }

    #[test]
    fn interval_collapses_when_fully_explored_and_brackets_otherwise() {
        let q = 0.25f64;
        let mass_s = vec![0.0, q, 2.0 * q, q];
        let mass_t = vec![q, q, q, q];
        let cut = vec![(0.9, 0.1)];
        let support = vec![0b00u32, 0b11];
        let method = AccumulationMethod::Complement;
        let exact = combine(&cut, &support, &mass_s, &mass_t, 2, method);
        // fully explored: both bounds equal the exact value
        let (lo, hi) = combine_interval(
            &cut, &support, &mass_s, &0.0, 0b11, &mass_t, &0.0, 0b11, 2, method,
        );
        assert!((lo - exact).abs() < 1e-12 && (hi - exact).abs() < 1e-12);
        // withhold one side-s configuration's mass (c3 -> {b1,b2}, mass q)
        let part_s = vec![0.0, q, 2.0 * q, 0.0];
        let (lo, hi) = combine_interval(
            &cut, &support, &part_s, &q, 0b11, &mass_t, &0.0, 0b11, 2, method,
        );
        assert!(lo <= exact + 1e-12, "{lo} <= {exact}");
        assert!(exact <= hi + 1e-12, "{exact} <= {hi}");
        assert!(hi - lo > 1e-9, "interval must be nondegenerate here");
    }

    #[test]
    fn empty_support_gives_zero() {
        let mass = vec![0.5, 0.5];
        let cut = vec![(0.9, 0.1)];
        let support = vec![0u32, 0];
        let r = combine(
            &cut,
            &support,
            &mass,
            &mass,
            1,
            AccumulationMethod::Complement,
        );
        assert_eq!(r, 0.0);
    }
}
