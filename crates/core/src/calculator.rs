//! Strategy selection: one entry point that picks the right algorithm.

use netgraph::{EdgeId, Network};

use crate::algorithm::{reliability_bottleneck_on_set, BottleneckReport};
use crate::bottleneck::find_bottleneck_set;
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::factoring::reliability_factoring;
use crate::naive::reliability_naive;
use crate::options::CalcOptions;
use crate::weight::edge_weights;

/// Which algorithm to run.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Strategy {
    /// Look for a bottleneck set (up to the given `k`); decompose when the
    /// split pays off, otherwise fall back to factoring.
    #[default]
    Auto,
    /// Exhaustive `2^|E|` enumeration (the paper's baseline).
    Naive,
    /// Conditioning with flow-based pruning.
    Factoring,
    /// Bottleneck decomposition along the given links.
    Bottleneck(Vec<EdgeId>),
    /// Bottleneck decomposition, discovering the best set with `k ≤ max_k`.
    BottleneckAuto {
        /// Largest bottleneck-set cardinality to search for.
        max_k: usize,
    },
}

/// What was computed and how.
#[derive(Clone, Debug)]
pub struct ReliabilityReport {
    /// The reliability of the network w.r.t. the demand.
    pub reliability: f64,
    /// Human-readable name of the algorithm that produced the value.
    pub algorithm: &'static str,
    /// Present when a bottleneck decomposition ran.
    pub bottleneck: Option<BottleneckReport>,
}

/// Facade that picks and runs a reliability algorithm.
///
/// ```
/// use flowrel_core::{ReliabilityCalculator, FlowDemand};
/// use netgraph::{NetworkBuilder, GraphKind};
///
/// let mut b = NetworkBuilder::new(GraphKind::Directed);
/// let s = b.add_node();
/// let t = b.add_node();
/// b.add_edge(s, t, 1, 0.1).unwrap();
/// b.add_edge(s, t, 1, 0.2).unwrap();
/// let net = b.build();
///
/// let calc = ReliabilityCalculator::new();
/// let report = calc.run(&net, FlowDemand::new(s, t, 1)).unwrap();
/// assert!((report.reliability - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReliabilityCalculator {
    /// Strategy to apply.
    pub strategy: Strategy,
    /// Shared options.
    pub options: CalcOptions,
}

impl ReliabilityCalculator {
    /// A calculator with the default (auto) strategy and options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the options.
    pub fn with_options(mut self, options: CalcOptions) -> Self {
        self.options = options;
        self
    }

    /// Computes the reliability of `net` w.r.t. `demand`.
    pub fn run(
        &self,
        net: &Network,
        demand: FlowDemand,
    ) -> Result<ReliabilityReport, ReliabilityError> {
        match &self.strategy {
            Strategy::Naive => {
                let r = reliability_naive(net, demand, &self.options)?;
                Ok(ReliabilityReport {
                    reliability: r,
                    algorithm: "naive",
                    bottleneck: None,
                })
            }
            Strategy::Factoring => {
                let r = reliability_factoring(net, demand, &self.options)?;
                Ok(ReliabilityReport {
                    reliability: r,
                    algorithm: "factoring",
                    bottleneck: None,
                })
            }
            Strategy::Bottleneck(cut) => {
                let (r, rep) = crate::algorithm::reliability_bottleneck_weighted(
                    net,
                    demand,
                    cut,
                    &edge_weights(net),
                    &self.options,
                )?;
                Ok(ReliabilityReport {
                    reliability: r,
                    algorithm: "bottleneck",
                    bottleneck: Some(rep),
                })
            }
            Strategy::BottleneckAuto { max_k } => {
                let set = find_bottleneck_set(net, demand.source, demand.sink, *max_k)?;
                let (r, rep) = reliability_bottleneck_on_set(
                    net,
                    demand,
                    &set,
                    &edge_weights(net),
                    &self.options,
                )?;
                Ok(ReliabilityReport {
                    reliability: r,
                    algorithm: "bottleneck-auto",
                    bottleneck: Some(rep),
                })
            }
            Strategy::Auto => self.run_auto(net, demand),
        }
    }

    /// Auto strategy: decompose along a bottleneck when one exists and the
    /// assignment set stays small; otherwise factor; fall back to naive only
    /// when factoring's (looser) edge bound also trips.
    fn run_auto(
        &self,
        net: &Network,
        demand: FlowDemand,
    ) -> Result<ReliabilityReport, ReliabilityError> {
        if let Ok(set) = find_bottleneck_set(net, demand.source, demand.sink, 3) {
            let worth_it = set.side_s_edges.max(set.side_t_edges) + 2 < net.edge_count();
            if worth_it {
                let attempt = reliability_bottleneck_on_set(
                    net,
                    demand,
                    &set,
                    &edge_weights(net),
                    &self.options,
                );
                match attempt {
                    Ok((r, rep)) => {
                        return Ok(ReliabilityReport {
                            reliability: r,
                            algorithm: "auto:bottleneck",
                            bottleneck: Some(rep),
                        });
                    }
                    Err(
                        ReliabilityError::TooManyAssignments { .. }
                        | ReliabilityError::SideTooLarge { .. },
                    ) => { /* fall through to factoring */ }
                    Err(e) => return Err(e),
                }
            }
        }
        let r = reliability_factoring(net, demand, &self.options)?;
        Ok(ReliabilityReport {
            reliability: r,
            algorithm: "auto:factoring",
            bottleneck: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn barbell() -> (Network, FlowDemand) {
        // triangle - 1 link - triangle
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[0], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.1).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        b.add_edge(n[5], n[3], 1, 0.1).unwrap();
        (b.build(), FlowDemand::new(n[0], n[5], 1))
    }

    #[test]
    fn all_strategies_agree() {
        let (net, d) = barbell();
        let strategies = [
            Strategy::Naive,
            Strategy::Factoring,
            Strategy::Bottleneck(vec![EdgeId(3)]),
            Strategy::BottleneckAuto { max_k: 2 },
            Strategy::Auto,
        ];
        let reference = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run(&net, d)
            .unwrap()
            .reliability;
        for s in strategies {
            let rep = ReliabilityCalculator::new()
                .with_strategy(s.clone())
                .run(&net, d)
                .unwrap();
            assert!(
                (rep.reliability - reference).abs() < 1e-12,
                "{s:?} gave {} vs {reference}",
                rep.reliability
            );
        }
    }

    #[test]
    fn auto_uses_bottleneck_on_barbell() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator::new().run(&net, d).unwrap();
        assert_eq!(rep.algorithm, "auto:bottleneck");
        let b = rep.bottleneck.expect("decomposition report");
        assert_eq!(b.set.edges, vec![EdgeId(3)]);
    }

    #[test]
    fn auto_falls_back_on_dense_graph() {
        // K5 is 4-edge-connected: no bottleneck set with k <= 3 exists
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        for i in 0..5 {
            for j in i + 1..5 {
                b.add_edge(n[i], n[j], 1, 0.2).unwrap();
            }
        }
        let net = b.build();
        let rep = ReliabilityCalculator::new()
            .run(&net, FlowDemand::new(n[0], n[4], 1))
            .unwrap();
        assert_eq!(rep.algorithm, "auto:factoring");
        assert!(rep.bottleneck.is_none());
    }

    #[test]
    fn auto_uses_star_cut_on_k4() {
        // K4 does have a k = 3 bottleneck: the three links incident to t
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(n[i], n[j], 1, 0.2).unwrap();
            }
        }
        let net = b.build();
        let d = FlowDemand::new(n[0], n[3], 1);
        let rep = ReliabilityCalculator::new().run(&net, d).unwrap();
        assert_eq!(rep.algorithm, "auto:bottleneck");
        let naive = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run(&net, d)
            .unwrap();
        assert!((rep.reliability - naive.reliability).abs() < 1e-12);
    }

    #[test]
    fn explicit_bottleneck_reports_geometry() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator::new()
            .with_strategy(Strategy::Bottleneck(vec![EdgeId(3)]))
            .run(&net, d)
            .unwrap();
        let b = rep.bottleneck.unwrap();
        assert_eq!(b.set.k(), 1);
        assert_eq!(b.assignment_count, 1);
    }
}
