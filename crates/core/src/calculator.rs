//! Strategy selection: one entry point that picks the right algorithm.

use netgraph::{EdgeId, Network};

use crate::algorithm::{reliability_bottleneck_anytime, BottleneckOutcome, BottleneckReport};
use crate::bottleneck::{find_bottleneck_set, validate_bottleneck_set, BottleneckSet};
use crate::checkpoint::{
    instance_fingerprint, Checkpoint, CheckpointKind, FactoringCheckpoint, NaiveCheckpoint,
    PlanCheckpoint, SideCheckpoint,
};
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::factoring::{reliability_factoring, reliability_factoring_anytime, FactoringOutcome};
use crate::naive::{reliability_naive_anytime, NaiveOutcome};
use crate::options::CalcOptions;
use crate::plan::{DecompositionPlan, PlanOutcome};
use crate::reduce::{reduce, Reduction};

/// Recursive-cut cardinality searched below the root split when the strategy
/// does not name one (explicit [`Strategy::Bottleneck`] cuts and the auto
/// strategies all recurse with this `k`).
const PLAN_RECURSE_K: usize = 3;

/// The mixed radices of the instance's state digits, used to stamp and
/// validate multi-state checkpoints. `None` for all-binary instances, so
/// their checkpoints keep the exact legacy byte layout (no `radices` line).
fn net_radices(net: &Network) -> Option<Vec<u32>> {
    if !net.has_multistate() {
        return None;
    }
    netgraph::StateExpansion::build(net)
        .ok()
        .map(|x| x.radices())
}

/// Marks an algorithm name as having run on the structurally reduced
/// instance. Idempotent, so resume restamping can't double-prefix.
fn reduced_name(alg: &'static str) -> &'static str {
    match alg {
        "naive" => "reduce+naive",
        "factoring" => "reduce+factoring",
        "bottleneck" => "reduce+bottleneck",
        "bottleneck-auto" => "reduce+bottleneck-auto",
        "auto:bottleneck" => "reduce+auto:bottleneck",
        "auto:naive" => "reduce+auto:naive",
        "auto:factoring" => "reduce+auto:factoring",
        "montecarlo:dagger" => "reduce+montecarlo:dagger",
        "montecarlo:perm" => "reduce+montecarlo:perm",
        "montecarlo:crude" => "reduce+montecarlo:crude",
        other => other,
    }
}

/// Which algorithm to run.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Strategy {
    /// Look for a bottleneck set (up to the given `k`); decompose when the
    /// split pays off, otherwise fall back to factoring.
    #[default]
    Auto,
    /// Exhaustive `2^|E|` enumeration (the paper's baseline).
    Naive,
    /// Conditioning with flow-based pruning.
    Factoring,
    /// Bottleneck decomposition along the given links.
    Bottleneck(Vec<EdgeId>),
    /// Bottleneck decomposition, discovering the best set with `k ≤ max_k`.
    BottleneckAuto {
        /// Largest bottleneck-set cardinality to search for.
        max_k: usize,
    },
    /// Monte-Carlo estimation (the scale path when enumeration is hopeless).
    ///
    /// Unlike the exact strategies the answer is a statistical estimate: the
    /// report's `reliability` is the sample mean and the accompanying
    /// [`montecarlo::McReport`] carries the Wilson 95% interval. With
    /// [`montecarlo::EstimatorKind::Auto`] the calculator looks for a small
    /// bottleneck set and conditions on it (dagger sampling); failing that it
    /// falls back to the permutation estimator, which keeps its relative
    /// error bounded even for very reliable networks.
    MonteCarlo(montecarlo::McSettings),
}

/// What was computed and how.
#[derive(Clone, Debug)]
pub struct ReliabilityReport {
    /// The reliability of the network w.r.t. the demand.
    pub reliability: f64,
    /// True when the value is exact (up to compensated `f64` rounding);
    /// false when any part of it was estimated statistically (the
    /// Monte-Carlo strategy without an exact shortcut, or a hybrid plan
    /// with at least one sampled leaf).
    pub certified: bool,
    /// `[r_low, r_high]` around `reliability`: degenerate when `certified`,
    /// the 95% confidence interval otherwise.
    pub interval: (f64, f64),
    /// Human-readable name of the algorithm that produced the value.
    pub algorithm: &'static str,
    /// Present when a bottleneck decomposition ran.
    pub bottleneck: Option<BottleneckReport>,
    /// Present when Monte-Carlo estimation ran: interval, sample and
    /// flow-evaluation counts. `reliability` equals its `mean`.
    pub mc: Option<montecarlo::McReport>,
}

/// A budget-interrupted result: rigorous bounds plus resume state.
#[derive(Clone, Debug)]
pub struct PartialReport {
    /// Lower bound on the reliability (certified unless `certified` is
    /// false).
    pub r_low: f64,
    /// Upper bound on the reliability (certified unless `certified` is
    /// false).
    pub r_high: f64,
    /// True when `[r_low, r_high]` is a rigorous enumeration interval;
    /// false when a statistical estimate contributed (Monte-Carlo partials,
    /// hybrid plans with a sampled leaf).
    pub certified: bool,
    /// Fraction of the configuration space examined so far, in `[0, 1]`.
    pub explored: f64,
    /// Human-readable name of the interrupted algorithm.
    pub algorithm: &'static str,
    /// Present when a bottleneck decomposition was running.
    pub bottleneck: Option<BottleneckReport>,
    /// Present when Monte-Carlo estimation was interrupted. For Monte-Carlo
    /// partials `[r_low, r_high]` is the Wilson 95% interval so far —
    /// statistical, not the certified enumeration bounds of the exact
    /// algorithms.
    pub mc: Option<montecarlo::McReport>,
    /// Resume state; feed to [`ReliabilityCalculator::resume`] (or serialize
    /// with [`Checkpoint::to_text`]) to continue the sweep later.
    pub checkpoint: Checkpoint,
}

/// Result of a budget-aware calculation ([`ReliabilityCalculator::run`]).
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The computation finished; the value is exact.
    Complete(Box<ReliabilityReport>),
    /// The budget ran out (or the run was cancelled): rigorous bounds and a
    /// checkpoint. Never produced when the budget is unlimited.
    Partial(Box<PartialReport>),
}

impl Outcome {
    /// The exact reliability, if the computation finished.
    pub fn reliability(&self) -> Option<f64> {
        match self {
            Outcome::Complete(rep) => Some(rep.reliability),
            Outcome::Partial(_) => None,
        }
    }

    /// `[r_low, r_high]` bounds: degenerate for a certified complete run,
    /// the confidence interval for a statistical one.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Outcome::Complete(rep) => rep.interval,
            Outcome::Partial(p) => (p.r_low, p.r_high),
        }
    }

    /// True when no statistical estimate contributed to the answer.
    pub fn certified(&self) -> bool {
        match self {
            Outcome::Complete(rep) => rep.certified,
            Outcome::Partial(p) => p.certified,
        }
    }
}

/// Facade that picks and runs a reliability algorithm.
///
/// ```
/// use flowrel_core::{ReliabilityCalculator, FlowDemand};
/// use netgraph::{NetworkBuilder, GraphKind};
///
/// let mut b = NetworkBuilder::new(GraphKind::Directed);
/// let s = b.add_node();
/// let t = b.add_node();
/// b.add_edge(s, t, 1, 0.1).unwrap();
/// b.add_edge(s, t, 1, 0.2).unwrap();
/// let net = b.build();
///
/// let calc = ReliabilityCalculator::new();
/// let report = calc.run_complete(&net, FlowDemand::new(s, t, 1)).unwrap();
/// assert!((report.reliability - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
/// ```
///
/// With a [`crate::budget::Budget`] set in the options, use [`Self::run`]
/// instead: it returns [`Outcome::Partial`] — rigorous bounds plus a resume
/// checkpoint — when the budget runs out.
#[derive(Clone, Debug, Default)]
pub struct ReliabilityCalculator {
    /// Strategy to apply.
    pub strategy: Strategy,
    /// Shared options.
    pub options: CalcOptions,
}

impl ReliabilityCalculator {
    /// A calculator with the default (auto) strategy and options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the options.
    pub fn with_options(mut self, options: CalcOptions) -> Self {
        self.options = options;
        self
    }

    /// Computes the reliability of `net` w.r.t. `demand` under the options'
    /// budget.
    ///
    /// With the default unlimited [`crate::budget::Budget`] this always
    /// returns [`Outcome::Complete`]. With a limit set, every exact strategy
    /// stops cooperatively and returns [`Outcome::Partial`]: the enumeration
    /// sweeps at clean sweep cursors, the recursive decomposition planner at
    /// plan-leaf granularity, and factoring between conditioning steps.
    ///
    /// The bottleneck strategies (and the auto strategy's bottleneck
    /// attempt) run through the recursive decomposition planner
    /// ([`crate::plan`]): the cut's sides are themselves decomposed along
    /// nested bottlenecks up to [`CalcOptions::max_depth`] levels before any
    /// sweep runs. `max_depth: 0` restores the flat one-level decomposition.
    ///
    /// With [`CalcOptions::reduce`] (the default) the instance first goes
    /// through the structural reduction pipeline ([`crate::reduce`]); every
    /// strategy then sweeps the — exactly equivalent — reduced instance.
    /// Partial checkpoints stay stamped with the *original* instance
    /// fingerprint plus the reduced shape, so resume re-derives and verifies
    /// the reduction ([`Checkpoint::reduce_shape`]).
    pub fn run(&self, net: &Network, demand: FlowDemand) -> Result<Outcome, ReliabilityError> {
        if self.options.reduce {
            demand.validate(net)?;
            let red = reduce(net, demand, true, self.options.solver);
            if !red.is_identity() {
                return self.run_reduced(net, demand, &red);
            }
        }
        self.run_strategy(net, demand)
    }

    /// Strategy dispatch on the instance exactly as given (no reduction).
    fn run_strategy(&self, net: &Network, demand: FlowDemand) -> Result<Outcome, ReliabilityError> {
        match &self.strategy {
            Strategy::Naive => self.naive_outcome(net, demand, "naive", None),
            Strategy::Factoring => {
                if net.has_multistate() {
                    // conditioning branches on binary link up/down states
                    return Err(ReliabilityError::MultiState {
                        operation: "the factoring (conditioning) strategy",
                    });
                }
                if self.options.budget.is_unlimited() {
                    // The recursive engine and the flat anytime engine agree
                    // to ~1e-15 but not bit for bit (the summation order
                    // differs); keep the long-standing recursive path for
                    // unbudgeted runs.
                    let r = reliability_factoring(net, demand, &self.options)?;
                    return Ok(Outcome::Complete(Box::new(ReliabilityReport {
                        reliability: r,
                        certified: true,
                        interval: (r, r),
                        algorithm: "factoring",
                        bottleneck: None,
                        mc: None,
                    })));
                }
                self.factoring_outcome(net, demand, "factoring", None)
            }
            Strategy::Bottleneck(cut) => {
                if net.has_multistate() {
                    // an explicit split cannot be vetted against the v1
                    // planner rule that keeps multi-state links out of cuts
                    // and cut sides; use the auto strategies instead
                    return Err(ReliabilityError::MultiState {
                        operation: "an explicit bottleneck decomposition",
                    });
                }
                let set = validate_bottleneck_set(net, demand.source, demand.sink, cut)?;
                self.plan_outcome(net, demand, &set, PLAN_RECURSE_K, "bottleneck", None)
            }
            Strategy::BottleneckAuto { max_k } => {
                let set = find_bottleneck_set(net, demand.source, demand.sink, *max_k)?;
                self.plan_outcome(net, demand, &set, *max_k, "bottleneck-auto", None)
            }
            Strategy::MonteCarlo(settings) => self.montecarlo_outcome(net, demand, settings),
            Strategy::Auto => self.run_auto(net, demand),
        }
    }

    /// Runs the strategy on a (non-identity) reduced instance and restamps
    /// the outcome: partial checkpoints keep the *original* fingerprint and
    /// record the reduced shape, and the algorithm name gains a `reduce+`
    /// prefix so reports show that the sweep ran on the reduced instance.
    fn run_reduced(
        &self,
        net: &Network,
        demand: FlowDemand,
        red: &Reduction,
    ) -> Result<Outcome, ReliabilityError> {
        // explicit original-id link references must be translated into the
        // reduced id space; when one was removed outright the explicit
        // strategy is not expressible on the reduced instance — run unreduced
        let Some(strategy) = self.translate_strategy(red) else {
            return self.run_strategy(net, demand);
        };
        let calc = ReliabilityCalculator {
            strategy,
            options: self.options.clone(),
        };
        let mut out = calc.run_strategy(&red.net, red.demand)?;
        match &mut out {
            Outcome::Complete(rep) => rep.algorithm = reduced_name(rep.algorithm),
            Outcome::Partial(p) => {
                p.algorithm = reduced_name(p.algorithm);
                p.checkpoint.fingerprint = instance_fingerprint(net, &demand, &self.options);
                p.checkpoint.reduce_shape =
                    Some(instance_fingerprint(&red.net, &red.demand, &self.options));
            }
        }
        Ok(out)
    }

    /// Rewrites explicit original link ids in the strategy into reduced ids
    /// (merged links translate to their merged representative). `None` when
    /// a referenced link no longer exists in the reduced instance.
    fn translate_strategy(&self, red: &Reduction) -> Option<Strategy> {
        let map = red.original_to_reduced();
        let translate = |edges: &[EdgeId]| -> Option<Vec<EdgeId>> {
            let mut out: Vec<EdgeId> = Vec::with_capacity(edges.len());
            for e in edges {
                let r = (*map.get(e.index())?)?;
                if !out.contains(&r) {
                    out.push(r);
                }
            }
            Some(out)
        };
        Some(match &self.strategy {
            Strategy::Bottleneck(cut) => Strategy::Bottleneck(translate(cut)?),
            Strategy::MonteCarlo(s) if !s.strata.is_empty() => {
                let mut s = s.clone();
                s.strata = translate(&s.strata)?;
                Strategy::MonteCarlo(s)
            }
            other => other.clone(),
        })
    }

    /// As [`Self::run`], but demands a finished answer: a budget interruption
    /// surfaces as [`ReliabilityError::Interrupted`] carrying the bounds.
    pub fn run_complete(
        &self,
        net: &Network,
        demand: FlowDemand,
    ) -> Result<ReliabilityReport, ReliabilityError> {
        match self.run(net, demand)? {
            Outcome::Complete(rep) => Ok(*rep),
            Outcome::Partial(p) => Err(ReliabilityError::Interrupted {
                r_low: p.r_low,
                r_high: p.r_high,
            }),
        }
    }

    /// Continues an interrupted run from a [`Checkpoint`].
    ///
    /// The checkpoint's fingerprint must match this instance (same network,
    /// demand, and enumeration-relevant options); the algorithm is taken
    /// from the checkpoint, not from [`Self::strategy`]. A resumed serial
    /// run reproduces the uninterrupted serial result bit for bit.
    ///
    /// A checkpoint written against a reduced instance
    /// ([`Checkpoint::reduce_shape`]) re-derives the (deterministic)
    /// reduction and verifies its shape before splicing the cursors back in;
    /// legacy checkpoints without the shape resume on the instance exactly
    /// as given, whatever [`CalcOptions::reduce`] says now.
    pub fn resume(
        &self,
        net: &Network,
        demand: FlowDemand,
        checkpoint: &Checkpoint,
    ) -> Result<Outcome, ReliabilityError> {
        let fp = instance_fingerprint(net, &demand, &self.options);
        if checkpoint.fingerprint != fp {
            return Err(ReliabilityError::CheckpointMismatch {
                reason: format!(
                    "checkpoint fingerprint {:016x} does not match this instance ({fp:016x}); \
                     the network, demand, or enumeration options changed",
                    checkpoint.fingerprint
                ),
            });
        }
        // Pin `reduce` to what the checkpoint recorded: the plan shape is
        // re-derived below (per-side reduction included), so a `--no-reduce`
        // flip between write and resume must not change the derivation.
        let pinned = |reduce: bool| ReliabilityCalculator {
            strategy: self.strategy.clone(),
            options: CalcOptions {
                reduce,
                ..self.options.clone()
            },
        };
        let Some(shape) = checkpoint.reduce_shape else {
            return pinned(false).resume_kind(net, demand, checkpoint);
        };
        let red = reduce(net, demand, true, self.options.solver);
        let got = instance_fingerprint(&red.net, &red.demand, &self.options);
        if got != shape {
            return Err(ReliabilityError::CheckpointMismatch {
                reason: format!(
                    "checkpoint was written against reduced shape {shape:016x}, but the \
                     reduction now yields {got:016x}; the instance or pipeline changed"
                ),
            });
        }
        let mut out = pinned(true).resume_kind(&red.net, red.demand, checkpoint)?;
        match &mut out {
            Outcome::Complete(rep) => rep.algorithm = reduced_name(rep.algorithm),
            Outcome::Partial(p) => {
                p.algorithm = reduced_name(p.algorithm);
                p.checkpoint.fingerprint = fp;
                p.checkpoint.reduce_shape = Some(shape);
            }
        }
        Ok(out)
    }

    /// Dispatches a resume on the instance the checkpoint's cursors index
    /// (the reduced instance when a shape was recorded).
    fn resume_kind(
        &self,
        net: &Network,
        demand: FlowDemand,
        checkpoint: &Checkpoint,
    ) -> Result<Outcome, ReliabilityError> {
        // a multi-state checkpoint records the digit radices of the instance
        // its cursors index; they must match what this instance expands to
        // (and an all-binary checkpoint must resume on an all-binary net)
        let expected = net_radices(net);
        if checkpoint.radices != expected {
            return Err(ReliabilityError::CheckpointMismatch {
                reason: format!(
                    "checkpoint state-space radices {:?} do not match this instance's {:?}",
                    checkpoint.radices, expected
                ),
            });
        }
        match &checkpoint.kind {
            CheckpointKind::Naive(ck) => self.naive_outcome(net, demand, "naive", Some(ck)),
            // Flat one-level decomposition checkpoints from before the
            // recursive planner; still honored so serialized v1 resumes work.
            CheckpointKind::Bottleneck {
                cut,
                side_s,
                side_t,
            } => {
                let set = validate_bottleneck_set(net, demand.source, demand.sink, cut)?;
                self.bottleneck_outcome(net, demand, &set, "bottleneck", Some((side_s, side_t)))
            }
            CheckpointKind::Plan(ck) => {
                let set = validate_bottleneck_set(net, demand.source, demand.sink, &ck.root_cut)?;
                // The plan tree is not serialized: it is re-derived here from
                // the checkpoint's planning inputs, and `execute` verifies the
                // re-derived tree's shape fingerprint against the checkpoint.
                let opts = CalcOptions {
                    max_depth: ck.max_depth,
                    recursive_cut_sides: ck.recursive_cut_sides,
                    // pinned from the checkpoint, like the planner knobs: a
                    // legacy MC-free checkpoint resumes bit-identically
                    // whether the resuming process has --hybrid on or off
                    hybrid: ck.hybrid,
                    ..self.options.clone()
                };
                self.plan_outcome_with(
                    net,
                    demand,
                    &set,
                    ck.root_max_k,
                    "bottleneck",
                    &opts,
                    Some(ck),
                )
            }
            CheckpointKind::Factoring(ck) => {
                self.factoring_outcome(net, demand, "factoring", Some(ck))
            }
            CheckpointKind::MonteCarlo(ck) => {
                let out = montecarlo::engine::resume(
                    net,
                    demand.source,
                    demand.sink,
                    demand.demand,
                    ck,
                    &self.mc_budget(),
                    self.options.parallel,
                )?;
                self.wrap_mc_outcome(net, demand, out)
            }
        }
    }

    /// Plans a recursive decomposition rooted at `set` and executes it under
    /// the calculator's options.
    fn plan_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        set: &BottleneckSet,
        max_k: usize,
        algorithm: &'static str,
        resume: Option<&PlanCheckpoint>,
    ) -> Result<Outcome, ReliabilityError> {
        self.plan_outcome_with(net, demand, set, max_k, algorithm, &self.options, resume)
    }

    /// As [`Self::plan_outcome`], with explicit options (resume overrides
    /// `max_depth` with the checkpoint's planning depth so the re-derived
    /// tree matches).
    #[allow(clippy::too_many_arguments)]
    fn plan_outcome_with(
        &self,
        net: &Network,
        demand: FlowDemand,
        set: &BottleneckSet,
        max_k: usize,
        algorithm: &'static str,
        opts: &CalcOptions,
        resume: Option<&PlanCheckpoint>,
    ) -> Result<Outcome, ReliabilityError> {
        let plan = DecompositionPlan::plan_on_set(net, demand, set, opts, max_k)?;
        match plan.execute(opts, resume)? {
            PlanOutcome::Complete {
                reliability,
                r_low,
                r_high,
                certified,
                stats,
                slots,
            } => Ok(Outcome::Complete(Box::new(ReliabilityReport {
                reliability,
                certified,
                interval: (r_low, r_high),
                algorithm,
                bottleneck: Some(plan.report(net, stats, slots)),
                mc: None,
            }))),
            PlanOutcome::Partial {
                r_low,
                r_high,
                certified,
                explored,
                checkpoint,
                stats,
                slots,
            } => Ok(Outcome::Partial(Box::new(PartialReport {
                r_low,
                r_high,
                certified,
                explored,
                algorithm,
                bottleneck: Some(plan.report(net, stats, slots)),
                mc: None,
                checkpoint: Checkpoint {
                    fingerprint: instance_fingerprint(net, &demand, &self.options),
                    reduce_shape: None,
                    radices: net_radices(net),
                    kind: CheckpointKind::Plan(checkpoint),
                },
            }))),
        }
    }

    /// Runs the budget-aware factoring engine and wraps its outcome.
    fn factoring_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        algorithm: &'static str,
        resume: Option<&FactoringCheckpoint>,
    ) -> Result<Outcome, ReliabilityError> {
        match reliability_factoring_anytime(net, demand, &self.options, resume)? {
            FactoringOutcome::Complete { reliability, .. } => {
                Ok(Outcome::Complete(Box::new(ReliabilityReport {
                    reliability,
                    certified: true,
                    interval: (reliability, reliability),
                    algorithm,
                    bottleneck: None,
                    mc: None,
                })))
            }
            FactoringOutcome::Partial {
                r_low,
                r_high,
                explored,
                checkpoint,
            } => Ok(Outcome::Partial(Box::new(PartialReport {
                r_low,
                r_high,
                certified: true,
                explored,
                algorithm,
                bottleneck: None,
                mc: None,
                checkpoint: Checkpoint {
                    fingerprint: instance_fingerprint(net, &demand, &self.options),
                    reduce_shape: None,
                    radices: net_radices(net),
                    kind: CheckpointKind::Factoring(checkpoint),
                },
            }))),
        }
    }

    /// Runs the budgeted naive sweep and wraps its outcome.
    fn naive_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        algorithm: &'static str,
        resume: Option<&NaiveCheckpoint>,
    ) -> Result<Outcome, ReliabilityError> {
        match reliability_naive_anytime(net, demand, &self.options, resume)? {
            NaiveOutcome::Complete { reliability, .. } => {
                Ok(Outcome::Complete(Box::new(ReliabilityReport {
                    reliability,
                    certified: true,
                    interval: (reliability, reliability),
                    algorithm,
                    bottleneck: None,
                    mc: None,
                })))
            }
            NaiveOutcome::Partial {
                r_low,
                r_high,
                explored,
                checkpoint,
                ..
            } => Ok(Outcome::Partial(Box::new(PartialReport {
                r_low,
                r_high,
                certified: true,
                explored,
                algorithm,
                bottleneck: None,
                mc: None,
                checkpoint: Checkpoint {
                    fingerprint: instance_fingerprint(net, &demand, &self.options),
                    reduce_shape: None,
                    radices: net_radices(net),
                    kind: CheckpointKind::Naive(checkpoint),
                },
            }))),
        }
    }

    /// Runs the budgeted bottleneck decomposition and wraps its outcome.
    fn bottleneck_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        set: &BottleneckSet,
        algorithm: &'static str,
        resume: Option<(&SideCheckpoint, &SideCheckpoint)>,
    ) -> Result<Outcome, ReliabilityError> {
        match reliability_bottleneck_anytime(net, demand, set, &self.options, resume)? {
            BottleneckOutcome::Complete {
                reliability,
                report,
            } => Ok(Outcome::Complete(Box::new(ReliabilityReport {
                reliability,
                certified: true,
                interval: (reliability, reliability),
                algorithm,
                bottleneck: Some(report),
                mc: None,
            }))),
            BottleneckOutcome::Partial {
                r_low,
                r_high,
                explored,
                side_s,
                side_t,
                report,
            } => Ok(Outcome::Partial(Box::new(PartialReport {
                r_low,
                r_high,
                certified: true,
                explored,
                algorithm,
                bottleneck: Some(report),
                mc: None,
                checkpoint: Checkpoint {
                    fingerprint: instance_fingerprint(net, &demand, &self.options),
                    reduce_shape: None,
                    radices: net_radices(net),
                    kind: CheckpointKind::Bottleneck {
                        cut: set.edges.clone(),
                        side_s: *side_s,
                        side_t: *side_t,
                    },
                },
            }))),
        }
    }

    /// Bridges the exact engine's [`crate::budget::Budget`] into the
    /// sampler's [`montecarlo::McBudget`]: the deadline carries over, the
    /// configuration allowance becomes a sample allowance, and the cancel
    /// token is shared (one Ctrl-C stops either engine).
    fn mc_budget(&self) -> montecarlo::McBudget {
        let b = &self.options.budget;
        montecarlo::McBudget {
            time_limit: b.time_limit,
            max_samples: b.max_configs,
            cancel: b.cancel.as_ref().map(|t| t.as_flag()),
        }
    }

    /// Resolves [`montecarlo::EstimatorKind::Auto`] to a concrete estimator
    /// *before* the engine runs, so the settings stored in a checkpoint are
    /// always concrete and resume cannot re-resolve differently.
    fn resolve_mc_settings(
        &self,
        net: &Network,
        demand: FlowDemand,
        settings: &montecarlo::McSettings,
    ) -> montecarlo::McSettings {
        let mut resolved = settings.clone();
        if resolved.estimator == montecarlo::EstimatorKind::Auto {
            if net.has_multistate() {
                // dagger conditioning enumerates binary strata states; the
                // permutation estimator generalizes to the capacity-ordered
                // destruction process, so it is the multi-state default
                resolved.estimator = montecarlo::EstimatorKind::Permutation;
                return resolved;
            }
            match find_bottleneck_set(net, demand.source, demand.sink, 3) {
                Ok(set) if set.edges.len() <= montecarlo::MAX_STRATA_LINKS => {
                    resolved.estimator = montecarlo::EstimatorKind::Dagger;
                    resolved.strata = set.edges;
                }
                _ => {
                    resolved.estimator = montecarlo::EstimatorKind::Permutation;
                }
            }
        }
        resolved
    }

    /// Runs the Monte-Carlo engine and wraps its outcome.
    fn montecarlo_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        settings: &montecarlo::McSettings,
    ) -> Result<Outcome, ReliabilityError> {
        let resolved = self.resolve_mc_settings(net, demand, settings);
        let out = montecarlo::engine::run(
            net,
            demand.source,
            demand.sink,
            demand.demand,
            &resolved,
            &self.mc_budget(),
            self.options.parallel,
        )?;
        self.wrap_mc_outcome(net, demand, out)
    }

    /// Wraps a Monte-Carlo outcome into the calculator's report types.
    fn wrap_mc_outcome(
        &self,
        net: &Network,
        demand: FlowDemand,
        out: montecarlo::McOutcome,
    ) -> Result<Outcome, ReliabilityError> {
        fn mc_algorithm(estimator: &str) -> &'static str {
            match estimator {
                "dagger" => "montecarlo:dagger",
                "perm" => "montecarlo:perm",
                _ => "montecarlo:crude",
            }
        }
        match out {
            montecarlo::McOutcome::Done(report) => {
                Ok(Outcome::Complete(Box::new(ReliabilityReport {
                    reliability: report.mean,
                    certified: report.exact,
                    interval: (report.ci_low, report.ci_high),
                    algorithm: mc_algorithm(report.estimator),
                    bottleneck: None,
                    mc: Some(report),
                })))
            }
            montecarlo::McOutcome::Interrupted { report, checkpoint } => {
                let cap = checkpoint.settings.target.max_samples.max(1) as f64;
                Ok(Outcome::Partial(Box::new(PartialReport {
                    r_low: report.ci_low,
                    r_high: report.ci_high,
                    certified: false,
                    explored: (report.samples as f64 / cap).min(1.0),
                    algorithm: mc_algorithm(report.estimator),
                    bottleneck: None,
                    mc: Some(report),
                    checkpoint: Checkpoint {
                        fingerprint: instance_fingerprint(net, &demand, &self.options),
                        reduce_shape: None,
                        radices: net_radices(net),
                        kind: CheckpointKind::MonteCarlo(checkpoint),
                    },
                })))
            }
        }
    }

    /// Auto strategy: decompose recursively along a bottleneck when one
    /// exists and the split pays off; otherwise factor (or, under a budget,
    /// run the interruptible naive sweep, whose checkpoints carry the
    /// uniform explored metric); fall back to naive only when factoring's
    /// (looser) edge bound also trips.
    fn run_auto(&self, net: &Network, demand: FlowDemand) -> Result<Outcome, ReliabilityError> {
        if let Ok(set) = find_bottleneck_set(net, demand.source, demand.sink, 3) {
            let worth_it = set.side_s_edges.max(set.side_t_edges) + 2 < net.edge_count();
            if worth_it {
                match self.plan_outcome(net, demand, &set, PLAN_RECURSE_K, "auto:bottleneck", None)
                {
                    Ok(out) => return Ok(out),
                    Err(
                        ReliabilityError::TooManyAssignments { .. }
                        | ReliabilityError::SideTooLarge { .. }
                        | ReliabilityError::TooManyEdges { .. },
                    ) => { /* fall through */ }
                    Err(e) => return Err(e),
                }
            }
        }
        if !self.options.budget.is_unlimited() || net.has_multistate() {
            // factoring is binary-only, so multi-state instances fall back to
            // the (mixed-radix) naive sweep instead
            return self.naive_outcome(net, demand, "auto:naive", None);
        }
        let r = reliability_factoring(net, demand, &self.options)?;
        Ok(Outcome::Complete(Box::new(ReliabilityReport {
            reliability: r,
            certified: true,
            interval: (r, r),
            algorithm: "auto:factoring",
            bottleneck: None,
            mc: None,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn barbell() -> (Network, FlowDemand) {
        // triangle - 1 link - triangle
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[0], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.1).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        b.add_edge(n[5], n[3], 1, 0.1).unwrap();
        (b.build(), FlowDemand::new(n[0], n[5], 1))
    }

    #[test]
    fn all_strategies_agree() {
        let (net, d) = barbell();
        let strategies = [
            Strategy::Naive,
            Strategy::Factoring,
            Strategy::Bottleneck(vec![EdgeId(3)]),
            Strategy::BottleneckAuto { max_k: 2 },
            Strategy::Auto,
        ];
        let reference = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&net, d)
            .unwrap()
            .reliability;
        for s in strategies {
            let rep = ReliabilityCalculator::new()
                .with_strategy(s.clone())
                .run_complete(&net, d)
                .unwrap();
            assert!(
                (rep.reliability - reference).abs() < 1e-12,
                "{s:?} gave {} vs {reference}",
                rep.reliability
            );
        }
    }

    #[test]
    fn auto_uses_bottleneck_on_barbell() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator::new().run_complete(&net, d).unwrap();
        // the barbell's overprovisioned bridge gets clamped by reduction,
        // so the auto strategy reports sweeping the reduced instance
        assert_eq!(rep.algorithm, "reduce+auto:bottleneck");
        let b = rep.bottleneck.expect("decomposition report");
        assert_eq!(b.set.edges, vec![EdgeId(3)]);
    }

    #[test]
    fn auto_falls_back_on_dense_graph() {
        // K5 is 4-edge-connected: no bottleneck set with k <= 3 exists
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        for i in 0..5 {
            for j in i + 1..5 {
                b.add_edge(n[i], n[j], 1, 0.2).unwrap();
            }
        }
        let net = b.build();
        let rep = ReliabilityCalculator::new()
            .run_complete(&net, FlowDemand::new(n[0], n[4], 1))
            .unwrap();
        assert_eq!(rep.algorithm, "auto:factoring");
        assert!(rep.bottleneck.is_none());
    }

    #[test]
    fn auto_uses_star_cut_on_k4() {
        // K4 does have a k = 3 bottleneck: the three links incident to t
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(n[i], n[j], 1, 0.2).unwrap();
            }
        }
        let net = b.build();
        let d = FlowDemand::new(n[0], n[3], 1);
        let rep = ReliabilityCalculator::new().run_complete(&net, d).unwrap();
        assert_eq!(rep.algorithm, "auto:bottleneck");
        let naive = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&net, d)
            .unwrap();
        assert!((rep.reliability - naive.reliability).abs() < 1e-12);
    }

    #[test]
    fn budgeted_run_yields_partial_and_resume_finishes() {
        let (net, d) = barbell();
        for strategy in [Strategy::Naive, Strategy::Bottleneck(vec![EdgeId(3)])] {
            let exact = ReliabilityCalculator::new()
                .with_strategy(strategy.clone())
                .run_complete(&net, d)
                .unwrap()
                .reliability;
            let budgeted = ReliabilityCalculator {
                strategy: strategy.clone(),
                options: CalcOptions {
                    budget: crate::budget::Budget {
                        max_configs: Some(2),
                        ..Default::default()
                    },
                    ..Default::default()
                },
            };
            let mut out = budgeted.run(&net, d).unwrap();
            let mut partials = 0usize;
            let r = loop {
                match out {
                    Outcome::Complete(rep) => break rep.reliability,
                    Outcome::Partial(p) => {
                        assert!(
                            p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                            "{strategy:?}: [{}, {}] must bracket {exact}",
                            p.r_low,
                            p.r_high
                        );
                        assert!(p.r_high - p.r_low < 1.0 || partials == 0);
                        partials += 1;
                        assert!(partials < 10_000, "resume loop must make progress");
                        out = budgeted.resume(&net, d, &p.checkpoint).unwrap();
                    }
                }
            };
            assert!(
                partials > 0,
                "{strategy:?}: a 2-config budget must interrupt"
            );
            assert_eq!(
                r, exact,
                "{strategy:?}: serial resume must be bit-identical"
            );
        }
    }

    #[test]
    fn reduced_checkpoint_round_trips_and_resumes_bit_identically() {
        // the barbell reduces (its cap-2 bridge clamps to the demand), so a
        // budgeted run writes a reduce-shape stamped checkpoint
        let (net, d) = barbell();
        let exact = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&net, d)
            .unwrap()
            .reliability;
        let budgeted = ReliabilityCalculator {
            strategy: Strategy::Naive,
            options: CalcOptions {
                budget: crate::budget::Budget {
                    max_configs: Some(16),
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        let Outcome::Partial(p) = budgeted.run(&net, d).unwrap() else {
            panic!("a 16-config budget must interrupt the barbell sweep");
        };
        assert!(p.checkpoint.reduce_shape.is_some());
        assert_eq!(p.algorithm, "reduce+naive");
        let text = p.checkpoint.to_text();
        assert!(text.contains("reduce-shape"));
        let parsed = Checkpoint::from_text(&text).unwrap();
        let resumed = ReliabilityCalculator::new()
            .resume(&net, d, &parsed)
            .unwrap();
        let Outcome::Complete(rep) = resumed else {
            panic!("an unlimited resume must finish");
        };
        assert_eq!(rep.reliability, exact, "resume must be bit-identical");
        assert_eq!(rep.algorithm, "reduce+naive");
        // turning reduction off on resume is irrelevant: the shape line wins
        let no_reduce = ReliabilityCalculator {
            strategy: Strategy::Naive,
            options: CalcOptions {
                reduce: false,
                ..Default::default()
            },
        };
        let Outcome::Complete(rep2) = no_reduce.resume(&net, d, &parsed).unwrap() else {
            panic!("resume must finish");
        };
        assert_eq!(rep2.reliability, exact);
    }

    #[test]
    fn no_reduce_option_sweeps_the_original_instance() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator {
            strategy: Strategy::Naive,
            options: CalcOptions {
                reduce: false,
                ..Default::default()
            },
        }
        .run_complete(&net, d)
        .unwrap();
        assert_eq!(rep.algorithm, "naive");
        let reduced = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&net, d)
            .unwrap();
        assert_eq!(reduced.algorithm, "reduce+naive");
        assert!((rep.reliability - reduced.reliability).abs() < 1e-12);
    }

    #[test]
    fn resume_rejects_a_different_instance() {
        let (net, d) = barbell();
        let budgeted = ReliabilityCalculator {
            strategy: Strategy::Naive,
            options: CalcOptions {
                budget: crate::budget::Budget {
                    max_configs: Some(2),
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        let out = budgeted.run(&net, d).unwrap();
        let Outcome::Partial(p) = out else {
            panic!("2-config budget must interrupt the barbell sweep");
        };
        // same topology, one failure probability nudged
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 1, 0.11).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[0], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 2, 0.1).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        b.add_edge(n[5], n[3], 1, 0.1).unwrap();
        let other = b.build();
        assert!(matches!(
            budgeted.resume(&other, d, &p.checkpoint),
            Err(ReliabilityError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn cancel_token_interrupts_immediately() {
        let (net, d) = barbell();
        let cancel = crate::budget::CancelToken::new();
        cancel.trip();
        let calc = ReliabilityCalculator {
            strategy: Strategy::Naive,
            options: CalcOptions {
                budget: crate::budget::Budget {
                    cancel: Some(cancel),
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        match calc.run(&net, d).unwrap() {
            Outcome::Partial(p) => {
                assert_eq!(p.explored, 0.0);
                assert_eq!((p.r_low, p.r_high), (0.0, 1.0));
            }
            Outcome::Complete(_) => panic!("a tripped token must stop the sweep"),
        }
    }

    #[test]
    fn montecarlo_strategy_covers_the_exact_value() {
        let (net, d) = barbell();
        let exact = ReliabilityCalculator::new()
            .with_strategy(Strategy::Naive)
            .run_complete(&net, d)
            .unwrap()
            .reliability;
        for estimator in [
            montecarlo::EstimatorKind::Auto,
            montecarlo::EstimatorKind::Crude,
            montecarlo::EstimatorKind::Permutation,
        ] {
            let settings = montecarlo::McSettings {
                seed: 7,
                estimator,
                target: montecarlo::StopTarget {
                    max_samples: 40_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let rep = ReliabilityCalculator::new()
                .with_strategy(Strategy::MonteCarlo(settings))
                .run_complete(&net, d)
                .unwrap();
            let mc = rep.mc.expect("Monte-Carlo strategies attach a report");
            assert!(rep.algorithm.contains("montecarlo:"), "{}", rep.algorithm);
            assert_eq!(rep.reliability, mc.mean);
            assert!(
                (mc.mean - exact).abs() <= 4.0 * mc.std_error.max(1e-12),
                "{estimator:?}: {} vs exact {exact} (se {})",
                mc.mean,
                mc.std_error
            );
        }
    }

    #[test]
    fn montecarlo_auto_conditions_on_the_barbell_bottleneck() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator::new()
            .with_strategy(Strategy::MonteCarlo(montecarlo::McSettings {
                estimator: montecarlo::EstimatorKind::Auto,
                ..Default::default()
            }))
            .run_complete(&net, d)
            .unwrap();
        assert_eq!(rep.algorithm, "reduce+montecarlo:dagger");
    }

    #[test]
    fn montecarlo_budget_interrupts_and_text_resume_is_bit_identical() {
        let (net, d) = barbell();
        let settings = montecarlo::McSettings {
            seed: 11,
            estimator: montecarlo::EstimatorKind::Crude,
            target: montecarlo::StopTarget {
                max_samples: 30_000,
                ..Default::default()
            },
            batch: 1024,
            ..Default::default()
        };
        let full = ReliabilityCalculator::new()
            .with_strategy(Strategy::MonteCarlo(settings.clone()))
            .run_complete(&net, d)
            .unwrap();
        let budgeted = ReliabilityCalculator {
            strategy: Strategy::MonteCarlo(settings),
            options: CalcOptions {
                budget: crate::budget::Budget {
                    max_configs: Some(10_000),
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        let Outcome::Partial(p) = budgeted.run(&net, d).unwrap() else {
            panic!("a 10k-sample allowance must interrupt a 30k-sample run");
        };
        let mc = p.mc.as_ref().expect("partial MC report");
        assert!(mc.samples > 0 && mc.samples < 30_000);
        assert!(p.explored > 0.0 && p.explored < 1.0);
        assert_eq!((p.r_low, p.r_high), (mc.ci_low, mc.ci_high));
        // serialize, parse back, resume without a budget: must reproduce the
        // uninterrupted run bit for bit
        let text = p.checkpoint.to_text();
        let parsed = Checkpoint::from_text(&text).unwrap();
        let resumed = ReliabilityCalculator {
            strategy: Strategy::MonteCarlo(montecarlo::McSettings::default()),
            options: CalcOptions::default(),
        }
        .resume(&net, d, &parsed)
        .unwrap();
        let Outcome::Complete(rep) = resumed else {
            panic!("an unlimited resume must finish");
        };
        assert_eq!(rep.mc.unwrap(), full.mc.unwrap());
        assert_eq!(rep.reliability, full.reliability);
    }

    #[test]
    fn montecarlo_rejects_bad_settings_as_sampling_errors() {
        let (net, d) = barbell();
        let out = ReliabilityCalculator::new()
            .with_strategy(Strategy::MonteCarlo(montecarlo::McSettings {
                estimator: montecarlo::EstimatorKind::Crude,
                target: montecarlo::StopTarget {
                    rel_err: Some(-0.1),
                    ..Default::default()
                },
                ..Default::default()
            }))
            .run(&net, d);
        assert!(matches!(out, Err(ReliabilityError::Sampling { .. })));
    }

    #[test]
    fn explicit_bottleneck_reports_geometry() {
        let (net, d) = barbell();
        let rep = ReliabilityCalculator::new()
            .with_strategy(Strategy::Bottleneck(vec![EdgeId(3)]))
            .run_complete(&net, d)
            .unwrap();
        let b = rep.bottleneck.unwrap();
        assert_eq!(b.set.k(), 1);
        assert_eq!(b.assignment_count, 1);
    }
}
