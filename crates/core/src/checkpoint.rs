//! Resume checkpoints for interrupted (anytime) calculations.
//!
//! When a budgeted run stops early, the calculator packages the sweep
//! cursors, running accumulations, and advisory certificate warm-starts into
//! a [`Checkpoint`], stamped with a fingerprint of the instance it belongs
//! to. A later process can deserialize the checkpoint and continue exactly
//! where the interrupted run stopped; for serial runs the final reliability
//! is bit-identical to an uninterrupted computation.
//!
//! The on-disk form ([`Checkpoint::to_text`] / [`Checkpoint::from_text`]) is
//! a small line-oriented text format rather than a serde derive: the
//! workspace deliberately vendors no functional serialization crate, and the
//! format must round-trip `f64` accumulator state *exactly*, which the text
//! form guarantees by writing IEEE-754 bit patterns in hex. The crate stays
//! I/O-free — reading and writing files is the caller's (CLI's) job.

use netgraph::{EdgeId, GraphKind, Network};

use crate::assign::AssignmentModel;
use crate::certcache::SolveCert;
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;

/// Where an interrupted sweep stopped: the size of its index space and the
/// half-open index ranges never examined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepCursor {
    /// Total number of configurations (`2^m`).
    pub total: u64,
    /// Half-open `[lo, hi)` unexamined ranges, ascending and disjoint.
    pub remaining: Vec<(u64, u64)>,
}

impl SweepCursor {
    /// Configurations not yet examined.
    pub fn remaining_configs(&self) -> u64 {
        self.remaining.iter().map(|&(lo, hi)| hi - lo).sum()
    }

    /// Fraction of the index space already examined, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.remaining_configs() as f64 / self.total as f64
    }
}

/// Checkpoint of an interrupted naive (full-enumeration) sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveCheckpoint {
    /// Enumeration cursor.
    pub cursor: SweepCursor,
    /// `(sum, compensation)` of the feasible-mass Neumaier accumulator.
    pub feasible: (f64, f64),
    /// `(sum, compensation)` of the explored-mass Neumaier accumulator.
    pub explored: (f64, f64),
    /// Advisory certificate warm-start for the resumed sweep.
    pub certs: Vec<SolveCert>,
}

/// Checkpoint of one side of an interrupted bottleneck decomposition sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SideCheckpoint {
    /// Enumeration cursor over the side's configurations.
    pub cursor: SweepCursor,
    /// Live (prunable-feasible) assignment indices this side realizes.
    pub live: Vec<usize>,
    /// Partial realization-spectrum mass per assignment mask (sums to the
    /// explored probability, not to 1).
    pub mass: Vec<f64>,
    /// Advisory certificate warm-start, one list per live assignment.
    pub certs: Vec<Vec<SolveCert>>,
}

/// Resume state of one leaf slot of an interrupted plan execution
/// ([`crate::plan`]), in DFS order over the plan tree.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanLeafState {
    /// The leaf was never started (budget ran out before reaching it).
    Fresh,
    /// The leaf finished; its exact contribution is recorded so a resumed
    /// run reuses it without re-sweeping.
    Done {
        /// The leaf's exact reliability.
        value: f64,
    },
    /// The leaf is an interrupted naive sweep.
    Naive(NaiveCheckpoint),
    /// The leaf is an interrupted one-level bottleneck (cut) sweep.
    Cut {
        /// Source-side sweep state.
        side_s: Box<SideCheckpoint>,
        /// Sink-side sweep state.
        side_t: Box<SideCheckpoint>,
    },
    /// The leaf is an interrupted single-side spectrum sweep (a `sweep`
    /// leaf under a recursive `DeepCut` node).
    Side(Box<SideCheckpoint>),
    /// The leaf was estimated statistically (hybrid mode) and met its
    /// stopping target: the point estimate and 95% interval are recorded so
    /// a resumed run reuses them without re-sampling. Unlike [`Done`]
    /// (certified, exact), this state taints the combined answer
    /// *statistical*.
    ///
    /// [`Done`]: PlanLeafState::Done
    McDone {
        /// The leaf's Monte-Carlo point estimate.
        mean: f64,
        /// Lower end of the leaf's 95% confidence interval.
        lo: f64,
        /// Upper end of the leaf's 95% confidence interval.
        hi: f64,
    },
    /// The leaf is an interrupted Monte-Carlo estimation (hybrid mode); the
    /// full engine state (settings, accumulator, batch cursor) resumes the
    /// sample stream bit-identically.
    MonteCarlo(Box<montecarlo::McCheckpoint>),
}

/// Checkpoint of an interrupted recursive-plan execution ([`crate::plan`]).
///
/// The plan tree itself is *not* serialized: planning is deterministic, so
/// the resuming process re-derives the tree from the network, the stored
/// root cut, and the stored planner knobs, then verifies the shape
/// fingerprint before splicing the leaf states back in.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanCheckpoint {
    /// The validated bottleneck set the root split was built on.
    pub root_cut: Vec<EdgeId>,
    /// `max_k` the planner searched recursive cuts with.
    pub root_max_k: usize,
    /// `max_depth` the plan was built with (overrides the resuming options).
    pub max_depth: usize,
    /// Whether the plan was built with `recursive_cut_sides` (overrides the
    /// resuming options, like `max_depth`, so the re-derived tree matches).
    pub recursive_cut_sides: bool,
    /// Whether the interrupted run executed in hybrid mode (overrides the
    /// resuming options, so a resume continues sampling — or not — exactly
    /// as the original run would have). Deliberately *not* part of the shape
    /// fingerprint: the plan tree is identical with the knob on or off, only
    /// leaf execution differs, mirroring the `recursive_cut_sides`-era
    /// precedent of keeping executor knobs out of [`shape`](Self::shape).
    /// Serialized as an optional line so MC-free legacy checkpoints keep
    /// their exact byte layout.
    pub hybrid: bool,
    /// Fingerprint of the plan tree's shape; a resumed run must re-derive a
    /// tree with the identical fingerprint.
    pub shape: u64,
    /// Budget share apportioned to each leaf slot's subtree when the
    /// interrupted run started (DFS slot order; bit-exact `f64`). Purely
    /// informational for resume — shares are recomputed from the remaining
    /// work — but recorded so interrupted runs can report how the budget
    /// was split.
    pub shares: Vec<f64>,
    /// Per-leaf resume state, in DFS (execution) order.
    pub leaves: Vec<PlanLeafState>,
}

/// Checkpoint of an interrupted budgeted factoring (conditioning) run
/// ([`crate::factoring::reliability_factoring_anytime`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FactoringCheckpoint {
    /// `(sum, compensation)` of the feasible-mass Neumaier accumulator.
    pub accum: (f64, f64),
    /// Conditioning leaves resolved so far.
    pub leaves: u64,
    /// Unresolved `(alive, undecided)` subtree frames, in the exact order
    /// the uninterrupted depth-first conditioning would visit them.
    pub pending: Vec<(u64, u64)>,
}

/// Algorithm-specific checkpoint payload.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointKind {
    /// Interrupted naive enumeration.
    Naive(NaiveCheckpoint),
    /// Interrupted bottleneck decomposition.
    Bottleneck {
        /// The bottleneck link set the decomposition was built on.
        cut: Vec<EdgeId>,
        /// Source-side sweep state.
        side_s: SideCheckpoint,
        /// Sink-side sweep state.
        side_t: SideCheckpoint,
    },
    /// Interrupted Monte-Carlo estimation ([`montecarlo::engine`]). Unlike
    /// the exact kinds, the resumed quantity is a statistical estimate — but
    /// resume is still bit-identical: the finished run equals an
    /// uninterrupted run with the same settings.
    MonteCarlo(montecarlo::McCheckpoint),
    /// Interrupted recursive-plan execution ([`crate::plan`]).
    Plan(PlanCheckpoint),
    /// Interrupted budgeted factoring (conditioning) run.
    Factoring(FactoringCheckpoint),
}

/// A resumable snapshot of an interrupted calculation.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the instance (network + demand + enumeration-relevant
    /// options) the snapshot belongs to; checked on resume. Always the
    /// fingerprint of the *original* instance as the user posed it, whether
    /// or not structural reduction ran.
    pub fingerprint: u64,
    /// When the run swept a structurally reduced instance
    /// ([`crate::reduce`]), the fingerprint of that reduced instance. The
    /// resuming process re-runs the (deterministic) reduction and verifies
    /// the shape before splicing cursors back in; `None` means the sweep ran
    /// on the original instance, so legacy checkpoints — whose text form has
    /// no `reduce-shape` line — resume exactly as before.
    pub reduce_shape: Option<u64>,
    /// When the run enumerated a multi-state instance, the mixed radices of
    /// its state digits (one entry per digit, each ≥ 2), validated against
    /// the instance on resume. `None` means all-binary, so legacy
    /// checkpoints — whose text form has no `radices` line — resume exactly
    /// as before, and all-binary checkpoints keep the legacy byte layout.
    pub radices: Option<Vec<u32>>,
    /// Algorithm-specific payload.
    pub kind: CheckpointKind,
}

/// FNV-1a over the instance description: graph kind, nodes, every edge's
/// endpoints/capacity/failure probability (as IEEE-754 bits), capacity
/// spectra when present, the demand, and the two options that change the
/// enumeration itself (`factor_perfect_links`, `assignment_model`). Anything
/// else — solver, parallelism, budget, cache sizes — may differ between the
/// interrupted and the resuming run without affecting the result.
///
/// Spectrum data is mixed in *only* when the network carries at least one
/// multi-state link, so all-binary fingerprints are byte-for-byte identical
/// to what earlier (spectrum-unaware) releases computed and their
/// checkpoints keep resuming.
pub fn instance_fingerprint(net: &Network, demand: &FlowDemand, opts: &CalcOptions) -> u64 {
    let mut h = Fnv1a::new();
    h.write(match net.kind() {
        GraphKind::Directed => 1,
        GraphKind::Undirected => 2,
    });
    h.write(net.node_count() as u64);
    h.write(net.edge_count() as u64);
    for e in net.edges() {
        h.write(e.src.0 as u64);
        h.write(e.dst.0 as u64);
        h.write(e.capacity);
        h.write(e.fail_prob.to_bits());
    }
    if net.has_multistate() {
        for i in 0..net.edge_count() {
            if let Some(sp) = net.spectrum(EdgeId::from(i)) {
                h.write(i as u64);
                h.write(sp.k() as u64);
                for &(c, p) in sp.states() {
                    h.write(c);
                    h.write(p.to_bits());
                }
            }
        }
    }
    h.write(demand.source.0 as u64);
    h.write(demand.sink.0 as u64);
    h.write(demand.demand);
    h.write(opts.factor_perfect_links as u64);
    h.write(match opts.assignment_model {
        AssignmentModel::ForwardOnly => 1,
        AssignmentModel::Net => 2,
    });
    h.finish()
}

pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

const HEADER: &str = "flowrel-checkpoint v1";

fn bad(reason: impl Into<String>) -> ReliabilityError {
    ReliabilityError::CheckpointMismatch {
        reason: reason.into(),
    }
}

impl Checkpoint {
    /// Serializes to the line-oriented text form. Floating-point state is
    /// written as IEEE-754 bit patterns, so the round-trip is exact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        if let Some(shape) = self.reduce_shape {
            // v1 extension: absent for unreduced runs, so files written
            // without reduction are byte-identical to the legacy format
            out.push_str(&format!("reduce-shape {shape:016x}\n"));
        }
        if let Some(radices) = &self.radices {
            // v1 extension: absent for all-binary instances, so binary
            // checkpoints keep the exact legacy byte layout
            out.push_str(&format!("radices {}", radices.len()));
            for r in radices {
                out.push_str(&format!(" {r}"));
            }
            out.push('\n');
        }
        match &self.kind {
            CheckpointKind::Naive(n) => {
                out.push_str("kind naive\n");
                write_naive_body(&mut out, n);
            }
            CheckpointKind::MonteCarlo(mc) => {
                out.push_str("kind montecarlo\n");
                write_mc(&mut out, mc);
            }
            CheckpointKind::Bottleneck {
                cut,
                side_s,
                side_t,
            } => {
                out.push_str("kind bottleneck\n");
                out.push_str(&format!("cut {}", cut.len()));
                for e in cut {
                    out.push_str(&format!(" {}", e.0));
                }
                out.push('\n');
                write_side(&mut out, "s", side_s);
                write_side(&mut out, "t", side_t);
            }
            CheckpointKind::Plan(p) => {
                out.push_str("kind plan\n");
                out.push_str(&format!("root-cut {}", p.root_cut.len()));
                for e in &p.root_cut {
                    out.push_str(&format!(" {}", e.0));
                }
                out.push('\n');
                out.push_str(&format!("root-maxk {}\n", p.root_max_k));
                out.push_str(&format!("max-depth {}\n", p.max_depth));
                out.push_str(&format!("deep {}\n", p.recursive_cut_sides as u8));
                // optional line: written only for hybrid runs, so MC-free
                // checkpoints keep the exact legacy byte layout
                if p.hybrid {
                    out.push_str("hybrid 1\n");
                }
                out.push_str(&format!("shape {:016x}\n", p.shape));
                out.push_str(&format!("shares {}\n", p.shares.len()));
                for &sh in &p.shares {
                    out.push_str(&format!("sh {:016x}\n", sh.to_bits()));
                }
                out.push_str(&format!("leaves {}\n", p.leaves.len()));
                for leaf in &p.leaves {
                    match leaf {
                        PlanLeafState::Fresh => out.push_str("leaf fresh\n"),
                        PlanLeafState::Done { value } => {
                            out.push_str(&format!("leaf done {:016x}\n", value.to_bits()))
                        }
                        PlanLeafState::Naive(n) => {
                            out.push_str("leaf naive\n");
                            write_naive_body(&mut out, n);
                        }
                        PlanLeafState::Cut { side_s, side_t } => {
                            out.push_str("leaf cut\n");
                            write_side(&mut out, "s", side_s);
                            write_side(&mut out, "t", side_t);
                        }
                        PlanLeafState::Side(side) => {
                            out.push_str("leaf side\n");
                            write_side(&mut out, "x", side);
                        }
                        PlanLeafState::McDone { mean, lo, hi } => {
                            out.push_str(&format!(
                                "leaf mc-done {:016x} {:016x} {:016x}\n",
                                mean.to_bits(),
                                lo.to_bits(),
                                hi.to_bits()
                            ));
                        }
                        PlanLeafState::MonteCarlo(mc) => {
                            out.push_str("leaf mc\n");
                            write_mc(&mut out, mc);
                        }
                    }
                }
            }
            CheckpointKind::Factoring(fc) => {
                out.push_str("kind factoring\n");
                out.push_str(&format!(
                    "accum {:016x} {:016x}\n",
                    fc.accum.0.to_bits(),
                    fc.accum.1.to_bits()
                ));
                out.push_str(&format!("leafcount {}\n", fc.leaves));
                out.push_str(&format!("pending {}\n", fc.pending.len()));
                for &(alive, undecided) in &fc.pending {
                    out.push_str(&format!("frame {alive:x} {undecided:x}\n"));
                }
            }
        }
        out
    }

    /// Parses the text form produced by [`Checkpoint::to_text`].
    pub fn from_text(text: &str) -> Result<Checkpoint, ReliabilityError> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(bad("missing or unrecognized checkpoint header"));
        }
        let fingerprint = u64::from_str_radix(
            field(&mut lines, "fingerprint")?
                .first()
                .ok_or_else(|| bad("fingerprint line is empty"))?,
            16,
        )
        .map_err(|_| bad("unparseable fingerprint"))?;
        // optional v1 extension line; `field` errors on a tag mismatch, so
        // peek on a clone and only commit the advance when the tag matches
        let save = lines.clone();
        let reduce_shape = match field(&mut lines, "reduce-shape") {
            Ok(f) => Some(parse_hex(f.first(), "reduce shape")?),
            Err(_) => {
                lines = save;
                None
            }
        };
        // optional `radices` line (absent for all-binary instances), same
        // peek-on-clone rewind as `reduce-shape`
        let save = lines.clone();
        let radices = match field(&mut lines, "radices") {
            Ok(f) => {
                let n: usize = parse(f.first(), "radix count")?;
                if f.len() != n + 1 {
                    return Err(bad("radices line has the wrong arity"));
                }
                let rs = f[1..]
                    .iter()
                    .map(|s| parse::<u32>(Some(s), "radix entry"))
                    .collect::<Result<Vec<_>, _>>()?;
                if rs.iter().any(|&r| r < 2) {
                    return Err(bad("every radix must be at least 2"));
                }
                Some(rs)
            }
            Err(_) => {
                lines = save;
                None
            }
        };
        let kind_line = field(&mut lines, "kind")?;
        let kind = match kind_line.first().copied() {
            Some("naive") => CheckpointKind::Naive(read_naive_body(&mut lines)?),
            Some("montecarlo") => CheckpointKind::MonteCarlo(read_mc(&mut lines)?),
            Some("bottleneck") => {
                let cut_fields = field(&mut lines, "cut")?;
                let n: usize = parse(cut_fields.first(), "cut count")?;
                if cut_fields.len() != n + 1 {
                    return Err(bad("cut line has the wrong arity"));
                }
                let cut = cut_fields[1..]
                    .iter()
                    .map(|s| parse(Some(s), "cut edge id").map(EdgeId))
                    .collect::<Result<Vec<_>, _>>()?;
                let side_s = read_side(&mut lines, "s")?;
                let side_t = read_side(&mut lines, "t")?;
                CheckpointKind::Bottleneck {
                    cut,
                    side_s,
                    side_t,
                }
            }
            Some("plan") => {
                let cf = field(&mut lines, "root-cut")?;
                let n: usize = parse(cf.first(), "root cut count")?;
                if cf.len() != n + 1 {
                    return Err(bad("root-cut line has the wrong arity"));
                }
                let root_cut = cf[1..]
                    .iter()
                    .map(|s| parse(Some(s), "root cut edge id").map(EdgeId))
                    .collect::<Result<Vec<_>, _>>()?;
                let root_max_k = parse(field(&mut lines, "root-maxk")?.first(), "root max k")?;
                let max_depth = parse(field(&mut lines, "max-depth")?.first(), "plan max depth")?;
                let deep: u8 = parse(field(&mut lines, "deep")?.first(), "plan deep flag")?;
                if deep > 1 {
                    return Err(bad("plan deep flag must be 0 or 1"));
                }
                // optional hybrid line (absent in pre-hybrid checkpoints):
                // peek on a clone so a miss rewinds to the saved cursor
                let save = lines.clone();
                let hybrid = match field(&mut lines, "hybrid") {
                    Ok(hf) => {
                        let flag: u8 = parse(hf.first(), "plan hybrid flag")?;
                        if flag > 1 {
                            return Err(bad("plan hybrid flag must be 0 or 1"));
                        }
                        flag == 1
                    }
                    Err(_) => {
                        lines = save;
                        false
                    }
                };
                let shape = parse_hex(field(&mut lines, "shape")?.first(), "plan shape")?;
                let share_count: usize =
                    parse(field(&mut lines, "shares")?.first(), "plan share count")?;
                let mut shares = Vec::with_capacity(share_count);
                for _ in 0..share_count {
                    let s = field(&mut lines, "sh")?;
                    shares.push(f64::from_bits(parse_hex(s.first(), "share entry")?));
                }
                let count: usize = parse(field(&mut lines, "leaves")?.first(), "plan leaf count")?;
                let mut leaves = Vec::with_capacity(count);
                for _ in 0..count {
                    let lf = field(&mut lines, "leaf")?;
                    match lf.first().copied() {
                        Some("fresh") => leaves.push(PlanLeafState::Fresh),
                        Some("done") => leaves.push(PlanLeafState::Done {
                            value: f64::from_bits(parse_hex(lf.get(1), "leaf value")?),
                        }),
                        Some("naive") => {
                            leaves.push(PlanLeafState::Naive(read_naive_body(&mut lines)?))
                        }
                        Some("cut") => {
                            let side_s = read_side(&mut lines, "s")?;
                            let side_t = read_side(&mut lines, "t")?;
                            leaves.push(PlanLeafState::Cut {
                                side_s: Box::new(side_s),
                                side_t: Box::new(side_t),
                            });
                        }
                        Some("side") => {
                            let side = read_side(&mut lines, "x")?;
                            leaves.push(PlanLeafState::Side(Box::new(side)));
                        }
                        Some("mc-done") => leaves.push(PlanLeafState::McDone {
                            mean: f64::from_bits(parse_hex(lf.get(1), "leaf mc mean")?),
                            lo: f64::from_bits(parse_hex(lf.get(2), "leaf mc lo")?),
                            hi: f64::from_bits(parse_hex(lf.get(3), "leaf mc hi")?),
                        }),
                        Some("mc") => {
                            let mc = read_mc(&mut lines)?;
                            leaves.push(PlanLeafState::MonteCarlo(Box::new(mc)));
                        }
                        _ => return Err(bad("unknown plan leaf state")),
                    }
                }
                CheckpointKind::Plan(PlanCheckpoint {
                    root_cut,
                    root_max_k,
                    max_depth,
                    recursive_cut_sides: deep == 1,
                    hybrid,
                    shape,
                    shares,
                    leaves,
                })
            }
            Some("factoring") => {
                let accum = read_f64_pair(&mut lines, "accum")?;
                let leaves = parse(
                    field(&mut lines, "leafcount")?.first(),
                    "factoring leaf count",
                )?;
                let pn: usize = parse(field(&mut lines, "pending")?.first(), "pending count")?;
                let mut pending = Vec::with_capacity(pn);
                for _ in 0..pn {
                    let fr = field(&mut lines, "frame")?;
                    let alive = parse_hex(fr.first(), "frame alive mask")?;
                    let undecided = parse_hex(fr.get(1), "frame undecided mask")?;
                    if alive & undecided != 0 {
                        return Err(bad("frame alive and undecided masks overlap"));
                    }
                    pending.push((alive, undecided));
                }
                CheckpointKind::Factoring(FactoringCheckpoint {
                    accum,
                    leaves,
                    pending,
                })
            }
            _ => return Err(bad("unknown checkpoint kind")),
        };
        Ok(Checkpoint {
            fingerprint,
            reduce_shape,
            radices,
            kind,
        })
    }
}

fn write_mc(out: &mut String, mc: &montecarlo::McCheckpoint) {
    let s = &mc.settings;
    out.push_str(&format!("mc-estimator {}\n", s.estimator.name()));
    out.push_str(&format!("mc-seed {}\n", s.seed));
    out.push_str(&format!("mc-batch {}\n", s.batch));
    out.push_str(&format!("mc-solver {}\n", s.solver.name()));
    out.push_str(&format!("mc-strata {}", s.strata.len()));
    for e in &s.strata {
        out.push_str(&format!(" {}", e.0));
    }
    out.push('\n');
    let opt_bits = |v: Option<f64>| match v {
        Some(x) => format!("{:016x}", x.to_bits()),
        None => "-".to_string(),
    };
    out.push_str(&format!(
        "mc-target {} {} {}\n",
        opt_bits(s.target.rel_err),
        opt_bits(s.target.ci_half),
        s.target.max_samples
    ));
    out.push_str(&format!(
        "mc-cursor {} {} {}\n",
        mc.next_batch, mc.samples, mc.flow_evals
    ));
    match &mc.accum {
        montecarlo::McAccum::Counts { successes } => {
            out.push_str(&format!("mc-accum counts {successes}\n"));
        }
        montecarlo::McAccum::Strata { counts } => {
            out.push_str(&format!("mc-accum strata {}\n", counts.len()));
            for &(succ, n) in counts {
                out.push_str(&format!("sc {succ} {n}\n"));
            }
        }
        montecarlo::McAccum::Perm { sum, sum_sq } => {
            out.push_str(&format!(
                "mc-accum perm {:016x} {:016x} {:016x} {:016x}\n",
                sum.0.to_bits(),
                sum.1.to_bits(),
                sum_sq.0.to_bits(),
                sum_sq.1.to_bits()
            ));
        }
    }
}

fn read_mc(lines: &mut std::str::Lines<'_>) -> Result<montecarlo::McCheckpoint, ReliabilityError> {
    use montecarlo::{EstimatorKind, McAccum, McCheckpoint, McSettings, StopTarget};
    let ef = field(lines, "mc-estimator")?;
    let estimator = ef
        .first()
        .and_then(|s| EstimatorKind::from_name(s))
        .ok_or_else(|| bad("unknown Monte-Carlo estimator"))?;
    let seed: u64 = parse(field(lines, "mc-seed")?.first(), "mc seed")?;
    let batch: u64 = parse(field(lines, "mc-batch")?.first(), "mc batch size")?;
    let sf = field(lines, "mc-solver")?;
    let solver = sf
        .first()
        .and_then(|s| maxflow::SolverKind::ALL.iter().find(|k| k.name() == *s))
        .copied()
        .ok_or_else(|| bad("unknown Monte-Carlo solver"))?;
    let stf = field(lines, "mc-strata")?;
    let n: usize = parse(stf.first(), "strata count")?;
    if stf.len() != n + 1 {
        return Err(bad("mc-strata line has the wrong arity"));
    }
    let strata = stf[1..]
        .iter()
        .map(|s| parse(Some(s), "stratum link id").map(EdgeId))
        .collect::<Result<Vec<_>, _>>()?;
    let tf = field(lines, "mc-target")?;
    let opt_bits = |s: Option<&&str>, what: &str| -> Result<Option<f64>, ReliabilityError> {
        match s {
            Some(&"-") => Ok(None),
            other => Ok(Some(f64::from_bits(parse_hex(other, what)?))),
        }
    };
    let target = StopTarget {
        rel_err: opt_bits(tf.first(), "mc rel-err target")?,
        ci_half: opt_bits(tf.get(1), "mc ci target")?,
        max_samples: parse(tf.get(2), "mc sample cap")?,
    };
    let cf = field(lines, "mc-cursor")?;
    let next_batch: u64 = parse(cf.first(), "mc cursor batch")?;
    let samples: u64 = parse(cf.get(1), "mc cursor samples")?;
    let flow_evals: u64 = parse(cf.get(2), "mc cursor flow evals")?;
    let af = field(lines, "mc-accum")?;
    let accum = match af.first().copied() {
        Some("counts") => McAccum::Counts {
            successes: parse(af.get(1), "mc success count")?,
        },
        Some("strata") => {
            let k: usize = parse(af.get(1), "mc stratum count")?;
            let mut counts = Vec::with_capacity(k);
            for _ in 0..k {
                let sc = field(lines, "sc")?;
                counts.push((
                    parse(sc.first(), "stratum successes")?,
                    parse(sc.get(1), "stratum samples")?,
                ));
            }
            McAccum::Strata { counts }
        }
        Some("perm") => McAccum::Perm {
            sum: (
                f64::from_bits(parse_hex(af.get(1), "perm sum")?),
                f64::from_bits(parse_hex(af.get(2), "perm sum compensation")?),
            ),
            sum_sq: (
                f64::from_bits(parse_hex(af.get(3), "perm sum of squares")?),
                f64::from_bits(parse_hex(af.get(4), "perm square compensation")?),
            ),
        },
        _ => return Err(bad("unknown Monte-Carlo accumulator kind")),
    };
    Ok(McCheckpoint {
        settings: McSettings {
            seed,
            estimator,
            strata,
            target,
            batch,
            solver,
        },
        next_batch,
        samples,
        flow_evals,
        accum,
    })
}

fn write_naive_body(out: &mut String, n: &NaiveCheckpoint) {
    write_cursor(out, &n.cursor);
    out.push_str(&format!(
        "feasible {:016x} {:016x}\n",
        n.feasible.0.to_bits(),
        n.feasible.1.to_bits()
    ));
    out.push_str(&format!(
        "explored {:016x} {:016x}\n",
        n.explored.0.to_bits(),
        n.explored.1.to_bits()
    ));
    write_certs(out, &n.certs);
}

fn read_naive_body(lines: &mut std::str::Lines<'_>) -> Result<NaiveCheckpoint, ReliabilityError> {
    let cursor = read_cursor(lines)?;
    let feasible = read_f64_pair(lines, "feasible")?;
    let explored = read_f64_pair(lines, "explored")?;
    let certs = read_certs(lines)?;
    Ok(NaiveCheckpoint {
        cursor,
        feasible,
        explored,
        certs,
    })
}

fn write_side(out: &mut String, label: &str, side: &SideCheckpoint) {
    out.push_str(&format!("side {label}\n"));
    write_cursor(out, &side.cursor);
    out.push_str(&format!("live {}", side.live.len()));
    for &j in &side.live {
        out.push_str(&format!(" {j}"));
    }
    out.push('\n');
    out.push_str(&format!("mass {}\n", side.mass.len()));
    for &m in &side.mass {
        out.push_str(&format!("m {:016x}\n", m.to_bits()));
    }
    out.push_str(&format!("certgroups {}\n", side.certs.len()));
    for group in &side.certs {
        write_certs(out, group);
    }
}

fn write_cursor(out: &mut String, cursor: &SweepCursor) {
    out.push_str(&format!(
        "cursor {:x} {}\n",
        cursor.total,
        cursor.remaining.len()
    ));
    for &(lo, hi) in &cursor.remaining {
        out.push_str(&format!("range {lo:x} {hi:x}\n"));
    }
}

fn write_certs(out: &mut String, certs: &[SolveCert]) {
    let count = certs
        .iter()
        .filter(|c| !matches!(c, SolveCert::None))
        .count();
    out.push_str(&format!("certs {count}\n"));
    for c in certs {
        match *c {
            SolveCert::Feasible { support } => out.push_str(&format!("F {support:x}\n")),
            SolveCert::Infeasible { crossing, needed } => {
                out.push_str(&format!("I {crossing:x} {needed}\n"))
            }
            SolveCert::None => {}
        }
    }
}

/// Reads the next non-empty line, checks its tag, and returns the fields
/// after the tag.
fn field<'a>(lines: &mut std::str::Lines<'a>, tag: &str) -> Result<Vec<&'a str>, ReliabilityError> {
    let line = lines
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| bad(format!("unexpected end of checkpoint, wanted `{tag}`")))?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(tag) {
        return Err(bad(format!("expected `{tag}` line, found `{line}`")));
    }
    Ok(parts.collect())
}

fn parse<T: std::str::FromStr>(s: Option<&&str>, what: &str) -> Result<T, ReliabilityError> {
    s.ok_or_else(|| bad(format!("missing {what}")))?
        .parse()
        .map_err(|_| bad(format!("unparseable {what}")))
}

fn parse_hex(s: Option<&&str>, what: &str) -> Result<u64, ReliabilityError> {
    u64::from_str_radix(s.ok_or_else(|| bad(format!("missing {what}")))?, 16)
        .map_err(|_| bad(format!("unparseable {what}")))
}

fn read_cursor(lines: &mut std::str::Lines<'_>) -> Result<SweepCursor, ReliabilityError> {
    let f = field(lines, "cursor")?;
    let total = parse_hex(f.first(), "cursor total")?;
    let n: usize = parse(f.get(1), "cursor range count")?;
    let mut remaining = Vec::with_capacity(n);
    for _ in 0..n {
        let r = field(lines, "range")?;
        let lo = parse_hex(r.first(), "range lo")?;
        let hi = parse_hex(r.get(1), "range hi")?;
        if lo >= hi || hi > total {
            return Err(bad("range out of bounds"));
        }
        remaining.push((lo, hi));
    }
    Ok(SweepCursor { total, remaining })
}

fn read_f64_pair(
    lines: &mut std::str::Lines<'_>,
    tag: &str,
) -> Result<(f64, f64), ReliabilityError> {
    let f = field(lines, tag)?;
    Ok((
        f64::from_bits(parse_hex(f.first(), tag)?),
        f64::from_bits(parse_hex(f.get(1), tag)?),
    ))
}

fn read_certs(lines: &mut std::str::Lines<'_>) -> Result<Vec<SolveCert>, ReliabilityError> {
    let f = field(lines, "certs")?;
    let n: usize = parse(f.first(), "certificate count")?;
    let mut certs = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| bad("unexpected end of checkpoint in certificate list"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("F") => certs.push(SolveCert::Feasible {
                support: parse_hex(parts.get(1), "certificate support")?,
            }),
            Some("I") => certs.push(SolveCert::Infeasible {
                crossing: parse_hex(parts.get(1), "certificate crossing set")?,
                needed: parse(parts.get(2), "certificate threshold")?,
            }),
            _ => return Err(bad(format!("unparseable certificate line `{line}`"))),
        }
    }
    Ok(certs)
}

fn read_side(
    lines: &mut std::str::Lines<'_>,
    label: &str,
) -> Result<SideCheckpoint, ReliabilityError> {
    let f = field(lines, "side")?;
    if f.first().copied() != Some(label) {
        return Err(bad(format!("expected side `{label}`")));
    }
    let cursor = read_cursor(lines)?;
    let lf = field(lines, "live")?;
    let n: usize = parse(lf.first(), "live count")?;
    if lf.len() != n + 1 {
        return Err(bad("live line has the wrong arity"));
    }
    let live = lf[1..]
        .iter()
        .map(|s| parse(Some(s), "live assignment index"))
        .collect::<Result<Vec<usize>, _>>()?;
    let mf = field(lines, "mass")?;
    let mn: usize = parse(mf.first(), "mass count")?;
    let mut mass = Vec::with_capacity(mn);
    for _ in 0..mn {
        let m = field(lines, "m")?;
        mass.push(f64::from_bits(parse_hex(m.first(), "mass entry")?));
    }
    let gf = field(lines, "certgroups")?;
    let groups: usize = parse(gf.first(), "certificate group count")?;
    let mut certs = Vec::with_capacity(groups);
    for _ in 0..groups {
        certs.push(read_certs(lines)?);
    }
    Ok(SideCheckpoint {
        cursor,
        live,
        mass,
        certs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_checkpoint() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef_0123_4567,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::Naive(NaiveCheckpoint {
                cursor: SweepCursor {
                    total: 1 << 12,
                    remaining: vec![(100, 512), (1024, 1 << 12)],
                },
                feasible: (0.123456789, -3.2e-17),
                explored: (0.5, 1.1e-18),
                certs: vec![
                    SolveCert::Feasible { support: 0b1011 },
                    SolveCert::Infeasible {
                        crossing: 0b0110,
                        needed: 3,
                    },
                ],
            }),
        }
    }

    fn bottleneck_checkpoint() -> Checkpoint {
        let side = |total: u64| SideCheckpoint {
            cursor: SweepCursor {
                total,
                remaining: vec![(7, total)],
            },
            live: vec![0, 2, 3],
            mass: vec![0.25, 0.0, 1e-300, 0.125],
            certs: vec![
                vec![SolveCert::Feasible { support: 1 }],
                vec![],
                vec![SolveCert::Infeasible {
                    crossing: 3,
                    needed: 2,
                }],
            ],
        };
        Checkpoint {
            fingerprint: 42,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::Bottleneck {
                cut: vec![EdgeId(2), EdgeId(5)],
                side_s: side(64),
                side_t: side(128),
            },
        }
    }

    #[test]
    fn naive_round_trip_is_exact() {
        let ck = naive_checkpoint();
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back, ck);
        // bit-exactness of the accumulator state, explicitly
        if let (CheckpointKind::Naive(a), CheckpointKind::Naive(b)) = (&ck.kind, &back.kind) {
            assert_eq!(a.feasible.0.to_bits(), b.feasible.0.to_bits());
            assert_eq!(a.feasible.1.to_bits(), b.feasible.1.to_bits());
        }
    }

    #[test]
    fn bottleneck_round_trip_is_exact() {
        let ck = bottleneck_checkpoint();
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back, ck);
    }

    fn mc_checkpoint(accum: montecarlo::McAccum) -> Checkpoint {
        Checkpoint {
            fingerprint: 7,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::MonteCarlo(montecarlo::McCheckpoint {
                settings: montecarlo::McSettings {
                    seed: 0x0123_4567_89ab_cdef,
                    estimator: montecarlo::EstimatorKind::Dagger,
                    strata: vec![EdgeId(3), EdgeId(0)],
                    target: montecarlo::StopTarget {
                        rel_err: Some(0.05),
                        ci_half: None,
                        max_samples: 1 << 20,
                    },
                    batch: 2048,
                    solver: maxflow::SolverKind::PushRelabel,
                },
                next_batch: 17,
                samples: 17 * 2048,
                flow_evals: 40_000,
                accum,
            }),
        }
    }

    #[test]
    fn montecarlo_round_trips_every_accumulator_bit_exactly() {
        use montecarlo::McAccum;
        let accums = [
            McAccum::Counts { successes: 12345 },
            McAccum::Strata {
                counts: vec![(10, 1024), (0, 512), (2048, 2048)],
            },
            McAccum::Perm {
                sum: (1.0e-8, -3.1e-25),
                sum_sq: (4.2e-16, 7.0e-33),
            },
        ];
        for accum in accums {
            let ck = mc_checkpoint(accum);
            let back = Checkpoint::from_text(&ck.to_text()).unwrap();
            assert_eq!(back, ck);
        }
        // PartialEq on f64 would accept -0.0 == 0.0; check the hex encoding
        // really is bit-exact for a negative-zero compensation term.
        let ck = mc_checkpoint(montecarlo::McAccum::Perm {
            sum: (0.1, -0.0),
            sum_sq: (0.01, 0.0),
        });
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        let CheckpointKind::MonteCarlo(mc) = &back.kind else {
            panic!("kind must survive the round trip");
        };
        let montecarlo::McAccum::Perm { sum, .. } = &mc.accum else {
            panic!("accumulator kind must survive the round trip");
        };
        assert_eq!(sum.1.to_bits(), (-0.0f64).to_bits());
    }

    fn plan_checkpoint() -> Checkpoint {
        let CheckpointKind::Naive(naive) = naive_checkpoint().kind else {
            panic!("naive fixture must be naive");
        };
        let CheckpointKind::Bottleneck { side_s, side_t, .. } = bottleneck_checkpoint().kind else {
            panic!("bottleneck fixture must be bottleneck");
        };
        let side_x = side_s.clone();
        Checkpoint {
            fingerprint: 0x1234_5678_9abc_def0,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::Plan(PlanCheckpoint {
                root_cut: vec![EdgeId(3), EdgeId(9)],
                root_max_k: 3,
                max_depth: 7,
                recursive_cut_sides: true,
                hybrid: false,
                shape: 0xfeed_face_cafe_beef,
                shares: vec![0.5, 0.25, 0.125, 0.0625, 0.0625],
                leaves: vec![
                    PlanLeafState::Done { value: 0.875 },
                    PlanLeafState::Naive(naive),
                    PlanLeafState::Fresh,
                    PlanLeafState::Cut {
                        side_s: Box::new(side_s),
                        side_t: Box::new(side_t),
                    },
                    PlanLeafState::Side(Box::new(side_x)),
                ],
            }),
        }
    }

    #[test]
    fn plan_round_trip_is_exact() {
        let ck = plan_checkpoint();
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn hybrid_plan_round_trip_is_exact() {
        let CheckpointKind::MonteCarlo(mc) =
            mc_checkpoint(montecarlo::McAccum::Counts { successes: 777 }).kind
        else {
            panic!("mc fixture must be montecarlo");
        };
        let mut ck = plan_checkpoint();
        let CheckpointKind::Plan(p) = &mut ck.kind else {
            panic!("plan fixture must be plan");
        };
        p.hybrid = true;
        p.leaves.push(PlanLeafState::McDone {
            mean: 0.9375,
            lo: 0.9,
            hi: 0.96875,
        });
        p.leaves.push(PlanLeafState::MonteCarlo(Box::new(mc)));
        p.shares.push(0.0);
        p.shares.push(0.0);
        let text = ck.to_text();
        assert!(text.contains("hybrid 1\n"), "hybrid runs record the knob");
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn legacy_plan_text_without_hybrid_line_stays_byte_stable() {
        // a pre-hybrid (PR 8-era) plan checkpoint has no `hybrid` line and
        // no mc leaves; it must parse as hybrid=false and re-serialize to
        // the identical bytes, so old checkpoints resume bit-identically
        // whether the resuming process runs with --hybrid on or off
        let legacy = "flowrel-checkpoint v1\n\
                      fingerprint 123456789abcdef0\n\
                      kind plan\n\
                      root-cut 2 3 9\n\
                      root-maxk 3\n\
                      max-depth 7\n\
                      deep 1\n\
                      shape feedfacecafebeef\n\
                      shares 2\n\
                      sh 3fe0000000000000\n\
                      sh 3fd0000000000000\n\
                      leaves 2\n\
                      leaf done 3fec000000000000\n\
                      leaf fresh\n";
        let ck = Checkpoint::from_text(legacy).unwrap();
        let CheckpointKind::Plan(p) = &ck.kind else {
            panic!("legacy text must parse as a plan checkpoint");
        };
        assert!(!p.hybrid, "missing hybrid line means hybrid off");
        assert_eq!(ck.to_text(), legacy, "MC-free round trip is byte-exact");
    }

    #[test]
    fn factoring_round_trip_is_exact() {
        let ck = Checkpoint {
            fingerprint: 99,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::Factoring(FactoringCheckpoint {
                accum: (0.98765, -0.0),
                leaves: 1234,
                pending: vec![(0b1010, 0b0101), (0, u64::MAX >> 1)],
            }),
        };
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back, ck);
        let CheckpointKind::Factoring(fc) = &back.kind else {
            panic!("kind must survive the round trip");
        };
        assert_eq!(fc.accum.1.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn factoring_rejects_overlapping_frame_masks() {
        let text = Checkpoint {
            fingerprint: 1,
            reduce_shape: None,
            radices: None,
            kind: CheckpointKind::Factoring(FactoringCheckpoint {
                accum: (0.0, 0.0),
                leaves: 0,
                pending: vec![(0b11, 0b100)],
            }),
        }
        .to_text()
        .replace("frame 3 4", "frame 3 7");
        assert!(Checkpoint::from_text(&text).is_err());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("not a checkpoint\n").is_err());
        let text = naive_checkpoint().to_text();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Checkpoint::from_text(&truncated).is_err());
        let corrupted = text.replace("kind naive", "kind cubist");
        assert!(Checkpoint::from_text(&corrupted).is_err());
    }

    #[test]
    fn reduce_shape_round_trips_and_stays_optional() {
        // with a shape: the line round-trips
        let mut ck = naive_checkpoint();
        ck.reduce_shape = Some(0x0123_4567_89ab_cdef);
        let text = ck.to_text();
        assert!(text.contains("reduce-shape 0123456789abcdef"));
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
        // without: the text form is byte-identical to the legacy format,
        // and legacy files (no reduce-shape line) parse to None
        let legacy = naive_checkpoint();
        assert!(!legacy.to_text().contains("reduce-shape"));
        let back = Checkpoint::from_text(&legacy.to_text()).unwrap();
        assert_eq!(back.reduce_shape, None);
        // a malformed shape value is an error, not a silent None
        let corrupt = text.replace("reduce-shape 0123456789abcdef", "reduce-shape zzz");
        assert!(Checkpoint::from_text(&corrupt).is_err());
    }

    #[test]
    fn radices_round_trip_and_stay_optional() {
        // with radices: the line round-trips
        let mut ck = naive_checkpoint();
        ck.radices = Some(vec![3, 2, 4]);
        let text = ck.to_text();
        assert!(text.contains("radices 3 3 2 4"));
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
        // without: the text form is byte-identical to the legacy format,
        // and legacy files (no radices line) parse to None
        let legacy = naive_checkpoint();
        assert!(!legacy.to_text().contains("radices"));
        let back = Checkpoint::from_text(&legacy.to_text()).unwrap();
        assert_eq!(back.radices, None);
        // wrong arity and sub-binary radices are errors, not silent Nones
        let corrupt = text.replace("radices 3 3 2 4", "radices 3 3 2");
        assert!(Checkpoint::from_text(&corrupt).is_err());
        let corrupt = text.replace("radices 3 3 2 4", "radices 3 3 1 4");
        assert!(Checkpoint::from_text(&corrupt).is_err());
    }

    #[test]
    fn fingerprint_covers_capacity_spectra() {
        use netgraph::{GraphKind, NetworkBuilder, NodeId};
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.25), (1, 0.25), (2, 0.5)])
            .unwrap();
        b.add_edge(n[1], n[2], 2, 0.2).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(2), 1);
        let opts = CalcOptions::default();
        let f0 = instance_fingerprint(&net, &d, &opts);
        assert_eq!(f0, instance_fingerprint(&net, &d, &opts), "deterministic");
        // perturbing a state probability perturbs the fingerprint
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.25), (1, 0.5), (2, 0.25)])
            .unwrap();
        b.add_edge(n[1], n[2], 2, 0.2).unwrap();
        let net2 = b.build();
        assert_ne!(f0, instance_fingerprint(&net2, &d, &opts));
    }

    #[test]
    fn cursor_progress_is_sensible() {
        let c = SweepCursor {
            total: 100,
            remaining: vec![(40, 60), (80, 100)],
        };
        assert_eq!(c.remaining_configs(), 40);
        assert!((c.progress() - 0.6).abs() < 1e-15);
        let done = SweepCursor {
            total: 100,
            remaining: vec![],
        };
        assert_eq!(done.progress(), 1.0);
    }

    #[test]
    fn fingerprint_distinguishes_instances() {
        use netgraph::{GraphKind, NetworkBuilder, NodeId};
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 2, 0.2).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(2), 1);
        let opts = CalcOptions::default();
        let f0 = instance_fingerprint(&net, &d, &opts);
        assert_eq!(f0, instance_fingerprint(&net, &d, &opts), "deterministic");
        let d2 = FlowDemand::new(NodeId(0), NodeId(2), 2);
        assert_ne!(f0, instance_fingerprint(&net, &d2, &opts));
        let opts2 = CalcOptions {
            factor_perfect_links: false,
            ..Default::default()
        };
        assert_ne!(f0, instance_fingerprint(&net, &d, &opts2));
        let mut b2 = NetworkBuilder::new(GraphKind::Directed);
        let n2 = b2.add_nodes(3);
        b2.add_edge(n2[0], n2[1], 1, 0.1).unwrap();
        b2.add_edge(n2[1], n2[2], 2, 0.25).unwrap();
        let net2 = b2.build();
        assert_ne!(f0, instance_fingerprint(&net2, &d, &opts));
    }
}
