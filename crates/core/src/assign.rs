//! Assignments of sub-streams to bottleneck links (Section III-B).
//!
//! An assignment is a `k`-tuple `(a_1, …, a_k)` distributing the `d` unit
//! sub-streams over the `k` bottleneck links, with `a_i` bounded by the
//! link's usable capacity. The paper's model ([`AssignmentModel::ForwardOnly`])
//! requires `a_i ≥ 0`: every sub-stream crosses the bottleneck exactly once,
//! in the source→sink direction — the natural semantics for P2P streaming.
//!
//! [`AssignmentModel::Net`] is a documented extension: `a_i` may be negative
//! on links that can carry flow back toward the source side (undirected
//! links, or directed links oriented sink-side → source-side), with
//! `Σ a_i = d` still. This captures max-flow routings that weave across the
//! cut, for which forward-only assignments *undercount* the reliability on
//! adversarial instances (see `tests/model_gap.rs` in the workspace root).

use netgraph::{EdgeId, GraphKind, Network};

/// How sub-streams may cross the bottleneck cut.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AssignmentModel {
    /// Paper-faithful: every bottleneck link carries `a_i ≥ 0` sub-streams
    /// from the source side to the sink side.
    #[default]
    ForwardOnly,
    /// Extension: links that admit reverse flow may carry a negative net
    /// amount; exactly matches the max-flow semantics.
    Net,
}

/// One assignment `(a_1, …, a_k)`; `a_i` is the net number of sub-streams
/// crossing bottleneck link `i` from the source side to the sink side.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Assignment {
    /// Net crossing per bottleneck link.
    pub amounts: Vec<i64>,
}

impl Assignment {
    /// The support mask: bit `i` set iff `a_i ≠ 0` (Definition 1 uses
    /// `a_i > 0`; with the net model, any nonzero usage needs the link up).
    pub fn support_mask(&self) -> u32 {
        let mut m = 0u32;
        for (i, &a) in self.amounts.iter().enumerate() {
            if a != 0 {
                m |= 1 << i;
            }
        }
        m
    }

    /// True when `links` (a bitmask over the `k` bottleneck links) supports
    /// this assignment: every used link is available (Definition 1).
    pub fn supported_by(&self, links: u32) -> bool {
        self.support_mask() & !links == 0
    }
}

/// The usable crossing range `[lo, hi]` of each bottleneck link for a demand
/// `d`: how many sub-streams it can carry source-side → sink-side (negative =
/// sink-side → source-side).
///
/// `forward_oriented[i]` must be true when the link is directed from the
/// source side to the sink side, false when directed the other way; it is
/// ignored for undirected networks.
pub fn crossing_ranges(
    net: &Network,
    cut: &[EdgeId],
    forward_oriented: &[bool],
    d: u64,
    model: AssignmentModel,
) -> Vec<(i64, i64)> {
    assert_eq!(cut.len(), forward_oriented.len());
    let d = d as i64;
    cut.iter()
        .zip(forward_oriented)
        .map(|(&e, &fwd)| {
            // Forward-only: every sub-stream crosses exactly once, so no link
            // carries more than d. Net: a weaving routing can push more than
            // d gross across one link (re-crossed flow), so the only sound
            // bound on the *net* crossing is the link capacity itself.
            let c_fwd = (net.edge(e).capacity as i64).min(d);
            let c_raw = net.edge(e).capacity as i64;
            match (net.kind(), model) {
                (GraphKind::Undirected, AssignmentModel::ForwardOnly) => (0, c_fwd),
                (GraphKind::Undirected, AssignmentModel::Net) => (-c_raw, c_raw),
                (GraphKind::Directed, AssignmentModel::ForwardOnly) => {
                    if fwd {
                        (0, c_fwd)
                    } else {
                        (0, 0)
                    }
                }
                (GraphKind::Directed, AssignmentModel::Net) => {
                    if fwd {
                        (0, c_raw)
                    } else {
                        (-c_raw, 0)
                    }
                }
            }
        })
        .collect()
}

/// Enumerates the assignment set `D`: all tuples with `a_i` in its range and
/// `Σ a_i = d`, in lexicographic order (matching Example 1 of the paper).
pub fn enumerate_assignments(d: u64, ranges: &[(i64, i64)]) -> Vec<Assignment> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(ranges.len());
    // suffix bounds for pruning: what the remaining links can still carry
    let mut suffix_lo = vec![0i64; ranges.len() + 1];
    let mut suffix_hi = vec![0i64; ranges.len() + 1];
    for i in (0..ranges.len()).rev() {
        suffix_lo[i] = suffix_lo[i + 1] + ranges[i].0;
        suffix_hi[i] = suffix_hi[i + 1] + ranges[i].1;
    }
    fn rec(
        ranges: &[(i64, i64)],
        suffix_lo: &[i64],
        suffix_hi: &[i64],
        remaining: i64,
        cur: &mut Vec<i64>,
        out: &mut Vec<Assignment>,
    ) {
        let i = cur.len();
        if i == ranges.len() {
            if remaining == 0 {
                out.push(Assignment {
                    amounts: cur.clone(),
                });
            }
            return;
        }
        let (lo, hi) = ranges[i];
        for a in lo..=hi {
            let rest = remaining - a;
            if rest < suffix_lo[i + 1] || rest > suffix_hi[i + 1] {
                continue;
            }
            cur.push(a);
            rec(ranges, suffix_lo, suffix_hi, rest, cur, out);
            cur.pop();
        }
    }
    rec(ranges, &suffix_lo, &suffix_hi, d as i64, &mut cur, &mut out);
    out
}

/// Classifies `assignments` by supporting subset: entry `S` (a bitmask over
/// the `k` bottleneck links) lists the indices of the assignments supported
/// by `S`, i.e. whose support is contained in `S` (Example 5). Returned as a
/// vector of `2^k` assignment-index masks.
pub fn supported_assignment_masks(assignments: &[Assignment], k: usize) -> Vec<u32> {
    assert!(
        k <= 16,
        "bottleneck sets larger than 16 links are not supported"
    );
    assert!(assignments.len() <= 31, "assignment masks are u32-backed");
    let mut out = vec![0u32; 1 << k];
    for (links, slot) in out.iter_mut().enumerate() {
        for (j, a) in assignments.iter().enumerate() {
            if a.supported_by(links as u32) {
                *slot |= 1 << j;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn fwd_ranges(caps: &[i64], d: i64) -> Vec<(i64, i64)> {
        caps.iter().map(|&c| (0, c.min(d))).collect()
    }

    /// Example 1 of the paper: d = 5, three links of capacity 3 ⇒ 12
    /// assignments, in this exact order.
    #[test]
    fn example_1_of_the_paper() {
        let d = enumerate_assignments(5, &fwd_ranges(&[3, 3, 3], 5));
        let expected: Vec<Vec<i64>> = vec![
            vec![0, 2, 3],
            vec![0, 3, 2],
            vec![1, 1, 3],
            vec![1, 2, 2],
            vec![1, 3, 1],
            vec![2, 0, 3],
            vec![2, 1, 2],
            vec![2, 2, 1],
            vec![2, 3, 0],
            vec![3, 0, 2],
            vec![3, 1, 1],
            vec![3, 2, 0],
        ];
        assert_eq!(d.len(), 12);
        assert_eq!(
            d.iter().map(|a| a.amounts.clone()).collect::<Vec<_>>(),
            expected
        );
    }

    /// Example 3: d = 2 over two links ⇒ {(2,0), (1,1), (0,2)}.
    #[test]
    fn example_3_assignments() {
        let d = enumerate_assignments(2, &fwd_ranges(&[2, 2], 2));
        let got: Vec<Vec<i64>> = d.iter().map(|a| a.amounts.clone()).collect();
        assert_eq!(got, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
    }

    #[test]
    fn capacity_bounds_respected() {
        let d = enumerate_assignments(3, &fwd_ranges(&[1, 5], 3));
        let got: Vec<Vec<i64>> = d.iter().map(|a| a.amounts.clone()).collect();
        assert_eq!(got, vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    fn infeasible_demand_gives_empty_set() {
        assert!(enumerate_assignments(7, &fwd_ranges(&[3, 3], 7)).is_empty());
        assert!(enumerate_assignments(1, &[]).is_empty());
        // zero demand over zero links: the empty assignment
        assert_eq!(enumerate_assignments(0, &[]).len(), 1);
    }

    #[test]
    fn net_model_allows_negative() {
        // two links cap 2 each, one reversible: net crossings summing to 2
        let d = enumerate_assignments(2, &[(0, 2), (-2, 2)]);
        let got: Vec<Vec<i64>> = d.iter().map(|a| a.amounts.clone()).collect();
        assert_eq!(got, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
        let d = enumerate_assignments(2, &[(-2, 2), (0, 4)]);
        let got: Vec<Vec<i64>> = d.iter().map(|a| a.amounts.clone()).collect();
        assert_eq!(
            got,
            vec![vec![-2, 4], vec![-1, 3], vec![0, 2], vec![1, 1], vec![2, 0]]
        );
    }

    /// Example 4: {e1, e3} supports (2,0,1) and (3,0,4) but not (1,1,0).
    #[test]
    fn example_4_support() {
        let a = Assignment {
            amounts: vec![2, 0, 1],
        };
        let b = Assignment {
            amounts: vec![3, 0, 4],
        };
        let c = Assignment {
            amounts: vec![1, 1, 0],
        };
        let e1_e3 = 0b101u32;
        assert!(a.supported_by(e1_e3));
        assert!(b.supported_by(e1_e3));
        assert!(!c.supported_by(e1_e3));
        // full set supports everything, empty set supports nothing (nonzero)
        assert!(c.supported_by(0b111));
        assert!(!c.supported_by(0));
    }

    /// Example 5: classification of five assignments over k = 3.
    #[test]
    fn example_5_classification() {
        let d: Vec<Assignment> = [
            vec![1, 2, 0],
            vec![2, 1, 0],
            vec![1, 1, 1],
            vec![0, 2, 1],
            vec![2, 0, 1],
        ]
        .into_iter()
        .map(|amounts| Assignment { amounts })
        .collect();
        let masks = supported_assignment_masks(&d, 3);
        // indices: 0:(1,2,0) 1:(2,1,0) 2:(1,1,1) 3:(0,2,1) 4:(2,0,1)
        assert_eq!(masks[0b111], 0b11111, "full set supports all of D");
        assert_eq!(masks[0b011], 0b00011, "{{e1,e2}} supports (1,2,0),(2,1,0)");
        assert_eq!(masks[0b110], 0b01000, "{{e2,e3}} supports (0,2,1)");
        assert_eq!(masks[0b101], 0b10000, "{{e1,e3}} supports (2,0,1)");
        for s in [0b000u32, 0b001, 0b010, 0b100] {
            assert_eq!(masks[s as usize], 0, "size <= 1 supports nothing");
        }
    }

    #[test]
    fn crossing_ranges_orientation() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        let e0 = b.add_edge(n[0], n[1], 3, 0.1).unwrap(); // forward
        let e1 = b.add_edge(n[2], n[3], 5, 0.1).unwrap(); // backward
        let net = b.build();
        let fwd = crossing_ranges(
            &net,
            &[e0, e1],
            &[true, false],
            2,
            AssignmentModel::ForwardOnly,
        );
        assert_eq!(fwd, vec![(0, 2), (0, 0)]);
        let net_model = crossing_ranges(&net, &[e0, e1], &[true, false], 2, AssignmentModel::Net);
        assert_eq!(
            net_model,
            vec![(0, 3), (-5, 0)],
            "net bounds are capacities"
        );
    }

    #[test]
    fn crossing_ranges_undirected() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        let e0 = b.add_edge(n[0], n[1], 4, 0.1).unwrap();
        let net = b.build();
        assert_eq!(
            crossing_ranges(&net, &[e0], &[true], 3, AssignmentModel::ForwardOnly),
            vec![(0, 3)]
        );
        assert_eq!(
            crossing_ranges(&net, &[e0], &[false], 3, AssignmentModel::Net),
            vec![(-4, 4)]
        );
    }
}
