//! Esary–Proschan reliability bounds for the unit-demand case.
//!
//! "Flow ≥ d" is a coherent (monotone) structure function of the link states,
//! so the classic Esary–Proschan bounds apply. For `d = 1` the minimal path
//! sets are the simple s–t paths over positive-capacity links and the minimal
//! cut sets are the minimal s–t edge cuts, both enumerable on the small
//! networks the exact algorithms target:
//!
//! * `R ≥ Π_{C ∈ mincuts} (1 − Π_{e ∈ C} p(e))` — every cut must be "broken"
//!   somewhere;
//! * `R ≤ 1 − Π_{P ∈ minpaths} (1 − Π_{e ∈ P} (1 − p(e)))` — some path must
//!   fully survive.
//!
//! The bounds are cheap (no `2^|E|` sweep) and bracket the exact value; the
//! property tests verify the sandwich on random graphs.

use netgraph::{Adjacency, BitSet, EdgeId, Network, NodeId};

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;

/// All simple s–t paths (as edge-id lists) using only links with
/// `capacity ≥ min_cap`. Paths are found by DFS; the count can be exponential,
/// so enumeration stops with an error after `max_paths`.
pub fn enumerate_simple_paths(
    net: &Network,
    s: NodeId,
    t: NodeId,
    min_cap: u64,
    max_paths: usize,
) -> Result<Vec<Vec<EdgeId>>, ReliabilityError> {
    net.check_node(s)?;
    net.check_node(t)?;
    struct Dfs<'a> {
        net: &'a Network,
        adj: &'a Adjacency,
        sink: NodeId,
        min_cap: u64,
        max_paths: usize,
        visited: BitSet,
        stack: Vec<EdgeId>,
        paths: Vec<Vec<EdgeId>>,
    }
    impl Dfs<'_> {
        /// Returns false once the path budget is exhausted.
        fn run(&mut self, u: NodeId) -> bool {
            if u == self.sink {
                self.paths.push(self.stack.clone());
                return self.paths.len() < self.max_paths;
            }
            self.visited.insert(u.index());
            for &(e, v) in self.adj.out_edges(u) {
                if self.visited.contains(v.index()) || self.net.edge(e).capacity < self.min_cap {
                    continue;
                }
                self.stack.push(e);
                let keep_going = self.run(v);
                self.stack.pop();
                if !keep_going {
                    self.visited.remove(u.index());
                    return false;
                }
            }
            self.visited.remove(u.index());
            true
        }
    }

    let adj = Adjacency::new(net);
    let mut dfs = Dfs {
        net,
        adj: &adj,
        sink: t,
        min_cap,
        max_paths,
        visited: BitSet::new(net.node_count()),
        stack: Vec::new(),
        paths: Vec::new(),
    };
    if !dfs.run(s) {
        return Err(ReliabilityError::TooManyEdges {
            count: max_paths,
            max: max_paths,
        });
    }
    Ok(dfs.paths)
}

/// All *minimal* s–t edge cut sets with at most `max_size` links
/// (exhaustive subset search over positive-capacity links, suitable for the
/// small networks the exact algorithms target).
pub fn enumerate_minimal_cuts(
    net: &Network,
    s: NodeId,
    t: NodeId,
    max_size: usize,
) -> Result<Vec<Vec<EdgeId>>, ReliabilityError> {
    net.check_node(s)?;
    net.check_node(t)?;
    // directed reachability with a subset of edges removed
    let adj = Adjacency::new(net);
    let connected =
        |removed: &[usize]| -> bool { reach_with_removed(&adj, s, removed).contains(t.index()) };
    if !connected(&[]) {
        return Ok(vec![vec![]]); // already cut: the empty set is the cut
    }
    let m = net.edge_count();
    let candidates: Vec<usize> = (0..m).filter(|&i| net.edges()[i].capacity > 0).collect();
    let mut cuts: Vec<Vec<usize>> = Vec::new();
    let mut combo: Vec<usize> = Vec::new();

    fn search(
        candidates: &[usize],
        start: usize,
        size: usize,
        combo: &mut Vec<usize>,
        cuts: &mut Vec<Vec<usize>>,
        connected: &dyn Fn(&[usize]) -> bool,
    ) {
        if combo.len() == size {
            if !connected(combo) {
                // minimality: no known smaller/equal cut is a subset
                let dominated = cuts.iter().any(|c| c.iter().all(|e| combo.contains(e)));
                if !dominated {
                    cuts.push(combo.clone());
                }
            }
            return;
        }
        for (i, &c) in candidates.iter().enumerate().skip(start) {
            combo.push(c);
            search(candidates, i + 1, size, combo, cuts, connected);
            combo.pop();
        }
    }

    for size in 1..=max_size.min(candidates.len()) {
        search(&candidates, 0, size, &mut combo, &mut cuts, &connected);
    }
    Ok(cuts
        .into_iter()
        .map(|c| c.into_iter().map(EdgeId::from).collect())
        .collect())
}

fn reach_with_removed(adj: &Adjacency, s: NodeId, removed: &[usize]) -> BitSet {
    netgraph::bfs_reachable(adj, s, |e| !removed.contains(&e))
}

/// The Esary–Proschan bounds `(lower, upper)` on the unit-demand reliability.
///
/// # Errors
/// Fails when path enumeration exceeds `max_structures`, or the demand is not
/// 1 (the minimal path/cut structures of higher demands are not simple paths
/// and cuts).
pub fn esary_proschan_bounds(
    net: &Network,
    demand: FlowDemand,
    max_structures: usize,
) -> Result<(f64, f64), ReliabilityError> {
    demand.validate(net)?;
    assert_eq!(
        demand.demand, 1,
        "Esary-Proschan bounds implemented for unit demand"
    );
    let paths = enumerate_simple_paths(net, demand.source, demand.sink, 1, max_structures)?;
    if paths.is_empty() {
        return Ok((0.0, 0.0));
    }
    // upper bound from min paths
    let mut miss_all_paths = 1.0f64;
    for p in &paths {
        let survive: f64 = p.iter().map(|&e| 1.0 - net.edge(e).fail_prob).product();
        miss_all_paths *= 1.0 - survive;
    }
    let upper = 1.0 - miss_all_paths;
    // lower bound from minimal cuts. The product must run over *all* minimal
    // cuts — omitting a factor (each < 1) would raise the product and void
    // the bound — so the enumeration is exhaustive. These bounds target the
    // same small networks as the exact algorithms; they are for analysis and
    // sandwich-testing, not asymptotic savings.
    let cuts = enumerate_minimal_cuts(net, demand.source, demand.sink, net.edge_count())?;
    let mut lower = 1.0f64;
    for c in &cuts {
        let all_fail: f64 = c.iter().map(|&e| net.edge(e).fail_prob).product();
        lower *= 1.0 - all_fail;
    }
    Ok((lower.min(upper), upper))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use crate::options::CalcOptions;
    use netgraph::{GraphKind, NetworkBuilder};

    fn diamond() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[3], 1, 0.15).unwrap();
        b.add_edge(n[2], n[3], 1, 0.25).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap();
        b.build()
    }

    #[test]
    fn paths_of_diamond() {
        let net = diamond();
        let paths = enumerate_simple_paths(&net, NodeId(0), NodeId(3), 1, 100).unwrap();
        // s-a-t, s-b-t, s-a-b-t
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() <= 3));
    }

    #[test]
    fn capacity_filter_prunes_paths() {
        let net = diamond();
        let paths = enumerate_simple_paths(&net, NodeId(0), NodeId(3), 2, 100).unwrap();
        assert!(paths.is_empty(), "no link has capacity 2");
    }

    #[test]
    fn path_budget_enforced() {
        let net = diamond();
        assert!(enumerate_simple_paths(&net, NodeId(0), NodeId(3), 1, 2).is_err());
    }

    #[test]
    fn minimal_cuts_of_diamond() {
        let net = diamond();
        let cuts = enumerate_minimal_cuts(&net, NodeId(0), NodeId(3), 4).unwrap();
        // {e0,e1} (out of s) and {e2,e3} (into t) are the 2-cuts; also
        // {e0,e3} (cuts s-a-t and both b-paths? no: s-b-t survives)...
        assert!(cuts.contains(&vec![EdgeId(0), EdgeId(1)]));
        assert!(cuts.contains(&vec![EdgeId(2), EdgeId(3)]));
        // every reported cut disconnects, and no strict subset of one is a cut
        for c in &cuts {
            let removed: Vec<usize> = c.iter().map(|e| e.index()).collect();
            let adj = Adjacency::new(&net);
            let reach = reach_with_removed(&adj, NodeId(0), &removed);
            assert!(!reach.contains(3), "cut {c:?} must disconnect");
        }
    }

    #[test]
    fn disconnected_graph_has_empty_cut() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        let net = b.build();
        let cuts = enumerate_minimal_cuts(&net, n[0], n[1], 3).unwrap();
        assert_eq!(cuts, vec![Vec::<EdgeId>::new()]);
    }

    #[test]
    fn bounds_bracket_exact_on_diamond() {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let exact = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let (lo, hi) = esary_proschan_bounds(&net, d, 1000).unwrap();
        assert!(lo <= exact + 1e-12, "lower {lo} vs exact {exact}");
        assert!(exact <= hi + 1e-12, "exact {exact} vs upper {hi}");
        assert!(lo > 0.5 && hi < 1.0, "bounds are informative: [{lo}, {hi}]");
    }

    #[test]
    fn bounds_tight_on_single_link() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.25).unwrap();
        let net = b.build();
        let d = FlowDemand::new(n[0], n[1], 1);
        let (lo, hi) = esary_proschan_bounds(&net, d, 10).unwrap();
        assert!((lo - 0.75).abs() < 1e-12);
        assert!((hi - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unreachable_sink_gives_zero_bounds() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let d = FlowDemand::new(n[0], n[2], 1);
        assert_eq!(esary_proschan_bounds(&net, d, 10).unwrap(), (0.0, 0.0));
    }
}
